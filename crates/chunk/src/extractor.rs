//! Extractor functions: raw chunk bytes → sub-tables.
//!
//! An extractor "reads a file segment (also called a chunk) and generates a
//! set of objects or a set of tuples (i.e., an object-relational
//! sub-table)". Extractors can be hand-written (implement [`Extractor`]) or
//! generated from a layout description ([`LayoutExtractor`]); the
//! [`ExtractorRegistry`] resolves the extractor names recorded in chunk
//! metadata.

use crate::subtable::SubTable;
use orv_layout::{CompiledLayout, LayoutDesc};
use orv_types::{Attribute, Error, Result, Schema, SubTableId};
use std::collections::HashMap;
use std::sync::Arc;

/// Maps chunk bytes to a sub-table.
pub trait Extractor: Send + Sync {
    /// This extractor's registered name.
    fn name(&self) -> &str;

    /// The schema of sub-tables this extractor produces.
    fn schema(&self) -> &Arc<Schema>;

    /// Parse `bytes` into the sub-table identified by `id`.
    fn extract(&self, id: SubTableId, bytes: &[u8]) -> Result<SubTable>;
}

/// An extractor generated from a layout description.
///
/// Attribute roles are not part of the on-disk layout; the caller names the
/// coordinate attributes when generating the extractor (everything else is a
/// scalar).
pub struct LayoutExtractor {
    layout: CompiledLayout,
    schema: Arc<Schema>,
}

impl LayoutExtractor {
    /// Generate from a layout description; `coords` names the coordinate
    /// attributes (must all exist in the layout).
    pub fn generate(desc: &LayoutDesc, coords: &[&str]) -> Result<Self> {
        let layout = CompiledLayout::compile(desc)?;
        for c in coords {
            if !layout.fields().iter().any(|(n, _)| n == c) {
                return Err(Error::Schema(format!(
                    "coordinate `{c}` is not a field of layout `{}`",
                    layout.name()
                )));
            }
        }
        let attrs = layout
            .fields()
            .iter()
            .map(|(n, t)| {
                if coords.contains(n) {
                    Attribute {
                        name: (*n).to_string(),
                        dtype: *t,
                        role: orv_types::AttrRole::Coordinate,
                    }
                } else {
                    Attribute::scalar(*n, *t)
                }
            })
            .collect();
        Ok(LayoutExtractor {
            schema: Arc::new(Schema::new(attrs)?),
            layout,
        })
    }

    /// The compiled layout (also usable to *write* chunks in this format).
    pub fn layout(&self) -> &CompiledLayout {
        &self.layout
    }
}

impl Extractor for LayoutExtractor {
    fn name(&self) -> &str {
        self.layout.name()
    }

    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn extract(&self, id: SubTableId, bytes: &[u8]) -> Result<SubTable> {
        let columns = self.layout.decode(bytes)?;
        SubTable::from_columns(id, Arc::clone(&self.schema), columns)
    }
}

/// Name → extractor lookup, shared by BDS instances.
#[derive(Default)]
pub struct ExtractorRegistry {
    by_name: HashMap<String, Arc<dyn Extractor>>,
}

impl ExtractorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an extractor under its own name. Re-registering a name
    /// replaces the previous extractor.
    pub fn register(&mut self, extractor: Arc<dyn Extractor>) {
        self.by_name.insert(extractor.name().to_string(), extractor);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Extractor>> {
        self.by_name
            .get(name)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("extractor `{name}`")))
    }

    /// First registered extractor among `names` — resolves a chunk's
    /// extractor preference list.
    pub fn resolve(&self, names: &[String]) -> Result<Arc<dyn Extractor>> {
        names
            .iter()
            .find_map(|n| self.by_name.get(n).cloned())
            .ok_or_else(|| Error::not_found(format!("any extractor among {names:?}")))
    }

    /// Number of registered extractors.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True if no extractors registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_layout::parse_layout;
    use orv_types::{AttrRole, Value};

    fn extractor() -> LayoutExtractor {
        let desc =
            parse_layout("layout res_v1 { header 4; field x: i32; field y: i32; field wp: f32; }")
                .unwrap();
        LayoutExtractor::generate(&desc, &["x", "y"]).unwrap()
    }

    #[test]
    fn generated_schema_has_roles() {
        let e = extractor();
        let s = e.schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attrs()[0].role, AttrRole::Coordinate);
        assert_eq!(s.attrs()[2].role, AttrRole::Scalar);
        assert_eq!(s.coordinate_indices(), vec![0, 1]);
    }

    #[test]
    fn unknown_coordinate_rejected() {
        let desc = parse_layout("layout t { field x: i32; }").unwrap();
        assert!(LayoutExtractor::generate(&desc, &["q"]).is_err());
    }

    #[test]
    fn extract_produces_subtable_with_bbox() {
        let e = extractor();
        let cols = vec![
            vec![Value::I32(0), Value::I32(4)],
            vec![Value::I32(1), Value::I32(5)],
            vec![Value::F32(0.25), Value::F32(0.75)],
        ];
        let bytes = e.layout().encode(&cols).unwrap();
        let st = e.extract(SubTableId::new(0u32, 7u32), &bytes).unwrap();
        assert_eq!(st.num_rows(), 2);
        assert_eq!(st.bbox().get("x"), orv_types::Interval::new(0.0, 4.0));
        assert_eq!(st.id(), SubTableId::new(0u32, 7u32));
    }

    #[test]
    fn extract_rejects_malformed_bytes() {
        let e = extractor();
        // 4-byte header + 5 bytes is not a whole number of 12-byte records.
        assert!(e.extract(SubTableId::new(0u32, 0u32), &[0u8; 9]).is_err());
    }

    #[test]
    fn registry_resolution() {
        let mut reg = ExtractorRegistry::new();
        assert!(reg.is_empty());
        reg.register(Arc::new(extractor()));
        assert_eq!(reg.len(), 1);
        assert!(reg.get("res_v1").is_ok());
        assert!(reg.get("other").is_err());
        let resolved = reg
            .resolve(&["missing".to_string(), "res_v1".to_string()])
            .unwrap();
        assert_eq!(resolved.name(), "res_v1");
        assert!(reg.resolve(&["nope".to_string()]).is_err());
    }
}
