//! Per-chunk metadata.
//!
//! The paper (Section 2): "Metadata information associated with each chunk
//! includes information about which table the chunk belongs to, the location
//! of the chunk in the storage system (i.e., offset in data file) and its
//! size, what attributes it contains, a list of extractors that can read and
//! parse this chunk, and the bounding box of the chunk."

use crate::format::ChunkLocation;
use orv_types::{BoundingBox, ChunkId, NodeId, TableId};
use serde::{Deserialize, Serialize};

/// Everything the MetaData service records about one chunk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// Which virtual table the chunk belongs to.
    pub table: TableId,
    /// Chunk id within the table.
    pub chunk: ChunkId,
    /// Storage node holding the chunk.
    pub node: NodeId,
    /// Where in that node's files the chunk bytes live.
    pub location: ChunkLocation,
    /// Attribute names the chunk contains, in layout order.
    pub attributes: Vec<String>,
    /// Names of extractors able to read this chunk (first is preferred).
    pub extractors: Vec<String>,
    /// Bounds on the chunk's attribute values.
    pub bbox: BoundingBox,
    /// Number of records (known at generation time for regular grids).
    pub num_records: u64,
    /// CRC32C of the chunk's raw bytes, computed when the chunk was
    /// written. `None` for chunks registered without one (hand-built test
    /// fixtures); reads of such chunks skip integrity verification.
    #[serde(default)]
    pub checksum: Option<u32>,
}

impl ChunkMeta {
    /// `(table, chunk)` identity as used in sub-table ids.
    pub fn subtable_id(&self) -> orv_types::SubTableId {
        orv_types::SubTableId {
            table: self.table,
            chunk: self.chunk,
        }
    }

    /// True if the chunk stores the named attribute.
    pub fn has_attribute(&self, name: &str) -> bool {
        self.attributes.iter().any(|a| a == name)
    }

    /// Chunk size in bytes (from its location record).
    pub fn size_bytes(&self) -> u64 {
        self.location.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_types::Interval;

    fn meta() -> ChunkMeta {
        ChunkMeta {
            table: TableId(1),
            chunk: ChunkId(3),
            node: NodeId(0),
            location: ChunkLocation {
                file: "t1.dat".into(),
                offset: 4096,
                len: 1024,
            },
            attributes: vec!["x".into(), "y".into(), "oilp".into()],
            extractors: vec!["reservoir_v1".into()],
            bbox: BoundingBox::from_dims([
                ("x", Interval::new(0.0, 63.0)),
                ("y", Interval::new(0.0, 63.0)),
            ]),
            num_records: 64,
            checksum: None,
        }
    }

    #[test]
    fn identity_and_attributes() {
        let m = meta();
        assert_eq!(m.subtable_id(), orv_types::SubTableId::new(1u32, 3u32));
        assert!(m.has_attribute("oilp"));
        assert!(!m.has_attribute("wp"));
        assert_eq!(m.size_bytes(), 1024);
    }
}
