//! The columnar sub-table container.

use orv_types::{
    BoundingBox, ColumnBatch, ColumnData, Error, Interval, Record, Result, Schema, SubTableId,
    Value,
};
use std::sync::Arc;

/// A partition of a virtual table: a subset of records and attributes, with
/// methods to iterate through records and attributes in a record, plus the
/// bounding box of its contents.
///
/// Sub-tables are immutable once built and cheaply cloneable (`Arc`ed
/// columns), which lets the caching service share them across join tasks
/// without copies.
#[derive(Clone, Debug)]
pub struct SubTable {
    id: SubTableId,
    schema: Arc<Schema>,
    columns: Arc<Vec<Vec<Value>>>,
    bbox: BoundingBox,
}

impl SubTable {
    /// Build from columns (one `Vec<Value>` per schema attribute, equal
    /// lengths, type-checked). The bounding box is computed from the data.
    pub fn from_columns(
        id: SubTableId,
        schema: Arc<Schema>,
        columns: Vec<Vec<Value>>,
    ) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(Error::Schema(format!(
                "sub-table {id}: {} columns for schema of arity {}",
                columns.len(),
                schema.arity()
            )));
        }
        let nrows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (i, (col, attr)) in columns.iter().zip(schema.attrs()).enumerate() {
            if col.len() != nrows {
                return Err(Error::Schema(format!(
                    "sub-table {id}: column {i} has {} rows, expected {nrows}",
                    col.len()
                )));
            }
            if let Some(v) = col.iter().find(|v| v.data_type() != attr.dtype) {
                return Err(Error::Schema(format!(
                    "sub-table {id}: column `{}` expects {} but holds {}",
                    attr.name,
                    attr.dtype,
                    v.data_type()
                )));
            }
        }
        let bbox = compute_bbox(&schema, &columns);
        Ok(SubTable {
            id,
            schema,
            columns: Arc::new(columns),
            bbox,
        })
    }

    /// Build from row records.
    pub fn from_records(id: SubTableId, schema: Arc<Schema>, records: &[Record]) -> Result<Self> {
        let mut columns: Vec<Vec<Value>> = schema
            .attrs()
            .iter()
            .map(|_| Vec::with_capacity(records.len()))
            .collect();
        for (ri, r) in records.iter().enumerate() {
            if !r.conforms_to(&schema) {
                return Err(Error::Schema(format!(
                    "sub-table {id}: record {ri} does not conform to {schema}"
                )));
            }
            for (ci, v) in r.values().iter().enumerate() {
                columns[ci].push(*v);
            }
        }
        SubTable::from_columns(id, schema, columns)
    }

    /// An empty sub-table of the given schema.
    pub fn empty(id: SubTableId, schema: Arc<Schema>) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        SubTable {
            id,
            schema,
            columns: Arc::new(columns),
            bbox: BoundingBox::unbounded(),
        }
    }

    /// This sub-table's `(table, chunk)` identity.
    #[inline]
    pub fn id(&self) -> SubTableId {
        self.id
    }

    /// The schema of the records held.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Bounds of the held data (explicit bounds for every attribute, unless
    /// the sub-table is empty, in which case the box is unbounded).
    #[inline]
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Number of records.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// True if no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// The column for attribute index `idx`.
    #[inline]
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// The column for the named attribute.
    pub fn column_by_name(&self, name: &str) -> Result<&[Value]> {
        Ok(self.column(self.schema.require(name)?))
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col][row]
    }

    /// Materialize row `row` as a [`Record`].
    pub fn record(&self, row: usize) -> Record {
        Record::new(self.columns.iter().map(|c| c[row]).collect())
    }

    /// Iterate over all rows as [`Record`]s.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.num_rows()).map(|r| self.record(r))
    }

    /// Serialized size in bytes under the packed encoding — the quantity
    /// the cost models charge for transfers (`rows × record_size`).
    pub fn encoded_size(&self) -> usize {
        self.num_rows() * self.schema.record_size()
    }

    /// Keep only rows whose attributes fall inside `range` (attributes the
    /// box does not bound are unconstrained). Keeps the same id/schema.
    pub fn filter_range(&self, range: &BoundingBox) -> Result<SubTable> {
        // Resolve bounded attribute names to column indices once.
        let mut checks: Vec<(usize, Interval)> = Vec::new();
        for (name, iv) in range.bounded_attrs() {
            if let Some(idx) = self.schema.index_of(name) {
                checks.push((idx, iv));
            }
            // Attributes absent from this sub-table are unbounded here
            // (treated as [-inf, +inf]) — they never exclude a row.
        }
        if checks.is_empty() {
            return Ok(self.clone());
        }
        let keep: Vec<usize> = (0..self.num_rows())
            .filter(|&r| {
                checks
                    .iter()
                    .all(|&(ci, iv)| iv.contains(self.columns[ci][r].as_f64()))
            })
            .collect();
        let columns: Vec<Vec<Value>> = self
            .columns
            .iter()
            .map(|col| keep.iter().map(|&r| col[r]).collect())
            .collect();
        SubTable::from_columns(self.id, Arc::clone(&self.schema), columns)
    }

    /// Project onto the named attributes (new schema, same rows).
    pub fn project(&self, names: &[&str]) -> Result<SubTable> {
        let schema = Arc::new(self.schema.project(names)?);
        let columns: Vec<Vec<Value>> = names
            .iter()
            .map(|n| {
                self.schema
                    .index_of(n)
                    .map(|i| self.columns[i].clone())
                    .ok_or_else(|| Error::Schema(format!("attribute `{n}` missing in projection")))
            })
            .collect::<Result<_>>()?;
        SubTable::from_columns(self.id, schema, columns)
    }

    /// This sub-table's rows as a typed [`ColumnBatch`] — the entry
    /// point of the columnar execution path. One pass per column turns
    /// the boxed `Value` storage into primitive arrays; downstream
    /// filter/project/join operators then run typed loops and convert
    /// back to [`Record`]s only at the service edge (bit-exact, since
    /// every supported type is fixed-width).
    pub fn to_batch(&self) -> ColumnBatch {
        let columns: Vec<ColumnData> = self
            .schema
            .attrs()
            .iter()
            .zip(self.columns.iter())
            .map(|(attr, col)| {
                let mut out = ColumnData::with_capacity(attr.dtype, col.len());
                for &v in col {
                    // from_columns type-checked every value on build, so
                    // a mismatch here is unreachable; skipping it keeps
                    // a typed value rather than silently dropping rows.
                    let _ = out.push(v);
                }
                out
            })
            .collect();
        // from_columns validated equal lengths when this sub-table was
        // built, so this cannot fail.
        ColumnBatch::from_columns(columns).unwrap_or_else(|_| {
            ColumnBatch::new(
                &self
                    .schema
                    .attrs()
                    .iter()
                    .map(|a| a.dtype)
                    .collect::<Vec<_>>(),
            )
        })
    }

    /// Rows' key values for the given attribute names, one `Vec<Value>` per
    /// row — used by join build/probe loops.
    pub fn keys(&self, names: &[&str]) -> Result<Vec<Vec<Value>>> {
        let idxs: Vec<usize> = names
            .iter()
            .map(|n| self.schema.require(n))
            .collect::<Result<_>>()?;
        Ok((0..self.num_rows())
            .map(|r| idxs.iter().map(|&i| self.columns[i][r]).collect())
            .collect())
    }
}

fn compute_bbox(schema: &Schema, columns: &[Vec<Value>]) -> BoundingBox {
    let mut bbox = BoundingBox::unbounded();
    for (attr, col) in schema.attrs().iter().zip(columns) {
        if col.is_empty() {
            continue;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in col {
            let x = v.as_f64();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        bbox.set(attr.name.clone(), Interval::new(lo, hi));
    }
    bbox
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap())
    }

    fn sample() -> SubTable {
        let cols = vec![
            vec![Value::I32(0), Value::I32(1), Value::I32(2)],
            vec![Value::I32(5), Value::I32(6), Value::I32(7)],
            vec![Value::F32(0.5), Value::F32(0.25), Value::F32(0.75)],
        ];
        SubTable::from_columns(SubTableId::new(0u32, 0u32), schema(), cols).unwrap()
    }

    #[test]
    fn bbox_covers_all_attributes() {
        let st = sample();
        assert_eq!(st.bbox().get("x"), Interval::new(0.0, 2.0));
        assert_eq!(st.bbox().get("y"), Interval::new(5.0, 7.0));
        assert_eq!(st.bbox().get("wp"), Interval::new(0.25, 0.75));
    }

    #[test]
    fn record_iteration_matches_columns() {
        let st = sample();
        let recs: Vec<Record> = st.records().collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs[1].values(),
            &[Value::I32(1), Value::I32(6), Value::F32(0.25)]
        );
    }

    #[test]
    fn from_records_roundtrip() {
        let st = sample();
        let recs: Vec<Record> = st.records().collect();
        let st2 = SubTable::from_records(st.id(), Arc::clone(st.schema()), &recs).unwrap();
        assert_eq!(st2.num_rows(), 3);
        assert_eq!(st2.bbox(), st.bbox());
        assert_eq!(st2.record(2), st.record(2));
    }

    #[test]
    fn type_and_shape_validation() {
        let s = schema();
        // Wrong arity.
        assert!(
            SubTable::from_columns(SubTableId::new(0u32, 0u32), s.clone(), vec![vec![]]).is_err()
        );
        // Ragged.
        let ragged = vec![vec![Value::I32(0)], vec![], vec![]];
        assert!(SubTable::from_columns(SubTableId::new(0u32, 0u32), s.clone(), ragged).is_err());
        // Wrong type in column.
        let wrong = vec![
            vec![Value::F32(0.0)],
            vec![Value::I32(0)],
            vec![Value::F32(0.0)],
        ];
        assert!(SubTable::from_columns(SubTableId::new(0u32, 0u32), s, wrong).is_err());
    }

    #[test]
    fn filter_range_keeps_matching_rows() {
        let st = sample();
        let range = BoundingBox::from_dims([("x", Interval::new(1.0, 2.0))]);
        let f = st.filter_range(&range).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(
            f.column_by_name("x").unwrap(),
            &[Value::I32(1), Value::I32(2)]
        );
        // Unknown attribute in range → unconstrained.
        let range2 = BoundingBox::from_dims([("zzz", Interval::new(0.0, 0.0))]);
        assert_eq!(st.filter_range(&range2).unwrap().num_rows(), 3);
        // Empty result.
        let range3 = BoundingBox::from_dims([("y", Interval::new(100.0, 200.0))]);
        assert_eq!(st.filter_range(&range3).unwrap().num_rows(), 0);
    }

    #[test]
    fn project_and_keys() {
        let st = sample();
        let p = st.project(&["wp", "x"]).unwrap();
        assert_eq!(p.schema().arity(), 2);
        assert_eq!(p.record(0).values(), &[Value::F32(0.5), Value::I32(0)]);
        let keys = st.keys(&["x", "y"]).unwrap();
        assert_eq!(keys[2], vec![Value::I32(2), Value::I32(7)]);
        assert!(st.keys(&["nope"]).is_err());
    }

    #[test]
    fn encoded_size_is_rows_times_record_size() {
        let st = sample();
        assert_eq!(st.encoded_size(), 3 * 12);
        let empty = SubTable::empty(SubTableId::new(0u32, 9u32), schema());
        assert_eq!(empty.encoded_size(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn to_batch_round_trips_rows() {
        let st = sample();
        let batch = st.to_batch();
        assert_eq!(batch.num_rows(), st.num_rows());
        assert_eq!(batch.num_columns(), st.schema().arity());
        let rows = batch.to_records().unwrap();
        let direct: Vec<Record> = st.records().collect();
        assert_eq!(rows, direct, "batch path must reproduce the row path");
        let empty = SubTable::empty(SubTableId::new(0u32, 9u32), schema());
        assert!(empty.to_batch().is_empty());
    }

    #[test]
    fn clone_shares_columns() {
        let st = sample();
        let c = st.clone();
        assert!(Arc::ptr_eq(&st.columns, &c.columns));
    }
}
