//! Chunk storage format helpers.
//!
//! Chunks are contiguous segments of larger data files, addressed by
//! `(file, offset, len)` — the paper's "offset in data file and its size".
//! [`ChunkStore`] packs chunk bytes into per-node data files and reads them
//! back; it is the lowest layer of the BDS service. An in-memory variant
//! backs tests and the threaded runtime's fast path.

use bytes::Bytes;
use orv_types::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Address of a chunk within a node's data files.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ChunkLocation {
    /// Data file name (relative to the node's data directory).
    pub file: String,
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

/// Where chunk bytes live on one storage node.
pub trait ChunkStore: Send + Sync {
    /// Append a chunk to the named data file, returning its location.
    fn append(&mut self, file: &str, data: &[u8]) -> Result<ChunkLocation>;

    /// Read a chunk's bytes.
    fn read(&self, loc: &ChunkLocation) -> Result<Bytes>;

    /// Total bytes stored.
    fn total_bytes(&self) -> u64;
}

/// Chunks held in process memory — used by tests and by simulator-backed
/// runs where the disk is modelled, not exercised.
#[derive(Default, Debug)]
pub struct MemChunkStore {
    files: HashMap<String, Vec<u8>>,
}

impl MemChunkStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ChunkStore for MemChunkStore {
    fn append(&mut self, file: &str, data: &[u8]) -> Result<ChunkLocation> {
        let buf = self.files.entry(file.to_string()).or_default();
        let offset = buf.len() as u64;
        buf.extend_from_slice(data);
        Ok(ChunkLocation {
            file: file.to_string(),
            offset,
            len: data.len() as u64,
        })
    }

    fn read(&self, loc: &ChunkLocation) -> Result<Bytes> {
        let buf = self
            .files
            .get(&loc.file)
            .ok_or_else(|| Error::not_found(format!("data file `{}`", loc.file)))?;
        let end = loc
            .offset
            .checked_add(loc.len)
            .filter(|&e| e <= buf.len() as u64)
            .ok_or_else(|| {
                Error::Format(format!(
                    "chunk at {}+{} overruns data file `{}` ({} bytes)",
                    loc.offset,
                    loc.len,
                    loc.file,
                    buf.len()
                ))
            })?;
        Ok(Bytes::copy_from_slice(
            &buf[loc.offset as usize..end as usize],
        ))
    }

    fn total_bytes(&self) -> u64 {
        self.files.values().map(|b| b.len() as u64).sum()
    }
}

/// Chunks stored in real files under a directory — one file per virtual
/// table per node, as the parallel simulation writers produce them.
#[derive(Debug)]
pub struct FileChunkStore {
    dir: PathBuf,
    written: u64,
}

impl FileChunkStore {
    /// Open (creating the directory if needed).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(FileChunkStore {
            dir: dir.as_ref().to_path_buf(),
            written: 0,
        })
    }

    fn path_of(&self, file: &str) -> Result<PathBuf> {
        if file.contains('/') || file.contains("..") {
            return Err(Error::Config(format!("invalid data file name `{file}`")));
        }
        Ok(self.dir.join(file))
    }
}

impl ChunkStore for FileChunkStore {
    fn append(&mut self, file: &str, data: &[u8]) -> Result<ChunkLocation> {
        let path = self.path_of(file)?;
        // orv-lint: allow(L004) -- chunk pages are sealed with ChunkMeta.checksum at generation and verified on every read
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let offset = f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        self.written += data.len() as u64;
        Ok(ChunkLocation {
            file: file.to_string(),
            offset,
            len: data.len() as u64,
        })
    }

    fn read(&self, loc: &ChunkLocation) -> Result<Bytes> {
        let path = self.path_of(&loc.file)?;
        let mut f = fs::File::open(path)
            .map_err(|e| Error::NotFound(format!("data file `{}`: {e}", loc.file)))?;
        f.seek(SeekFrom::Start(loc.offset))?;
        let mut buf = vec![0u8; loc.len as usize];
        f.read_exact(&mut buf).map_err(|e| {
            Error::Format(format!(
                "chunk at {}+{} in `{}`: {e}",
                loc.offset, loc.len, loc.file
            ))
        })?;
        Ok(Bytes::from(buf))
    }

    fn total_bytes(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn ChunkStore) {
        let a = store.append("t1.dat", b"hello").unwrap();
        let b = store.append("t1.dat", b"world!").unwrap();
        let c = store.append("t2.dat", b"xyz").unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 5);
        assert_eq!(store.read(&a).unwrap().as_ref(), b"hello");
        assert_eq!(store.read(&b).unwrap().as_ref(), b"world!");
        assert_eq!(store.read(&c).unwrap().as_ref(), b"xyz");
        assert_eq!(store.total_bytes(), 14);
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemChunkStore::new();
        exercise(&mut s);
        // Overrun detection.
        let bad = ChunkLocation {
            file: "t1.dat".into(),
            offset: 8,
            len: 100,
        };
        assert!(s.read(&bad).is_err());
        let missing = ChunkLocation {
            file: "nope".into(),
            offset: 0,
            len: 1,
        };
        assert!(s.read(&missing).is_err());
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("orv-chunkstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut s = FileChunkStore::open(&dir).unwrap();
        exercise(&mut s);
        // Re-open and read back.
        let s2 = FileChunkStore::open(&dir).unwrap();
        let loc = ChunkLocation {
            file: "t1.dat".into(),
            offset: 5,
            len: 6,
        };
        assert_eq!(s2.read(&loc).unwrap().as_ref(), b"world!");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_rejects_path_escape() {
        let dir = std::env::temp_dir().join(format!("orv-chunkstore-esc-{}", std::process::id()));
        let mut s = FileChunkStore::open(&dir).unwrap();
        assert!(s.append("../evil", b"x").is_err());
        assert!(s.append("a/b", b"x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
