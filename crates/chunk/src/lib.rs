//! Chunks, extractors, and columnar sub-tables.
//!
//! A *chunk* is a contiguous file segment in an application-specific binary
//! format — the smallest unit of retrieval from the storage system. An
//! *extractor* interprets chunk bytes and produces a [`SubTable`]: a
//! columnar partition of a virtual table carrying a subset of records along
//! with its bounding box.
//!
//! The pieces:
//!
//! * [`SubTable`] — the standard in-memory data structure all services
//!   exchange (the paper's "sub-table": records + attribute iteration +
//!   bounding box).
//! * [`ChunkMeta`] — per-chunk metadata (location, size, extractor name,
//!   bounding box) stored by the MetaData service.
//! * [`Extractor`] / [`LayoutExtractor`] / [`ExtractorRegistry`] — mapping
//!   raw bytes to sub-tables; `LayoutExtractor` is generated from a layout
//!   description (`orv-layout`).

pub mod extractor;
pub mod format;
pub mod meta;
pub mod subtable;

pub use extractor::{Extractor, ExtractorRegistry, LayoutExtractor};
pub use format::{ChunkLocation, ChunkStore, FileChunkStore, MemChunkStore};
pub use meta::ChunkMeta;
pub use subtable::SubTable;
