//! Recursive-descent parser for the layout DSL.
//!
//! Grammar:
//!
//! ```text
//! layout      := "layout" IDENT "{" stmt* "}"
//! stmt        := "endian" ("little" | "big") ";"
//!              | "order" ("row_major" | "column_major") ";"
//!              | "header" INT ";"
//!              | "field" IDENT ":" TYPE ";"
//!              | "pad" INT ";"
//! TYPE        := "i32" | "i64" | "f32" | "f64"
//! ```
//!
//! `endian`, `order` and `header` default to `little`, `row_major` and `0`
//! and may appear at most once each.

use crate::ast::{Endian, Item, LayoutDesc, RecordOrder};
use crate::lexer::{tokenize, Token, TokenKind};
use orv_types::{DataType, Error, Result};

/// Parse a single layout description from source text.
pub fn parse_layout(src: &str) -> Result<LayoutDesc> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let desc = p.layout()?;
    p.expect_eof()?;
    desc.validate()?;
    Ok(desc)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Result<&Token> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| Error::Parse("unexpected end of layout description".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        let line = self.line();
        let t = self.next()?;
        if &t.kind == kind {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "line {line}: expected {kind}, found {}",
                t.kind
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let line = self.line();
        let t = self.next()?;
        match &t.kind {
            TokenKind::Ident(s) => Ok(s.clone()),
            other => Err(Error::Parse(format!(
                "line {line}: expected identifier, found {other}"
            ))),
        }
    }

    fn int(&mut self) -> Result<u64> {
        let line = self.line();
        let t = self.next()?;
        match &t.kind {
            TokenKind::Int(n) => Ok(*n),
            other => Err(Error::Parse(format!(
                "line {line}: expected integer, found {other}"
            ))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let line = self.line();
        let got = self.ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "line {line}: expected keyword `{kw}`, found `{got}`"
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "line {}: trailing input after layout description",
                self.line()
            )))
        }
    }

    fn layout(&mut self) -> Result<LayoutDesc> {
        self.keyword("layout")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;

        let mut endian: Option<Endian> = None;
        let mut order: Option<RecordOrder> = None;
        let mut header: Option<u64> = None;
        let mut items = Vec::new();

        loop {
            let line = self.line();
            match self.peek() {
                Some(TokenKind::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(TokenKind::Ident(kw)) => {
                    let kw = kw.clone();
                    self.pos += 1;
                    match kw.as_str() {
                        "endian" => {
                            let v = self.ident()?;
                            let e = match v.as_str() {
                                "little" => Endian::Little,
                                "big" => Endian::Big,
                                other => {
                                    return Err(Error::Parse(format!(
                                        "line {line}: unknown endianness `{other}`"
                                    )))
                                }
                            };
                            set_once(&mut endian, e, "endian", line)?;
                        }
                        "order" => {
                            let v = self.ident()?;
                            let o = match v.as_str() {
                                "row_major" => RecordOrder::RowMajor,
                                "column_major" => RecordOrder::ColumnMajor,
                                other => {
                                    return Err(Error::Parse(format!(
                                        "line {line}: unknown record order `{other}`"
                                    )))
                                }
                            };
                            set_once(&mut order, o, "order", line)?;
                        }
                        "header" => {
                            let n = self.int()?;
                            set_once(&mut header, n, "header", line)?;
                        }
                        "field" => {
                            let fname = self.ident()?;
                            self.expect(&TokenKind::Colon)?;
                            let tyname = self.ident()?;
                            let dtype = DataType::parse(&tyname).ok_or_else(|| {
                                Error::Parse(format!("line {line}: unknown type `{tyname}`"))
                            })?;
                            items.push(Item::Field { name: fname, dtype });
                        }
                        "pad" => {
                            let n = self.int()?;
                            items.push(Item::Pad(n as usize));
                        }
                        other => {
                            return Err(Error::Parse(format!(
                                "line {line}: unknown statement `{other}`"
                            )))
                        }
                    }
                    self.expect(&TokenKind::Semi)?;
                }
                Some(other) => {
                    return Err(Error::Parse(format!(
                        "line {line}: expected statement or `}}`, found {other}"
                    )))
                }
                None => return Err(Error::Parse("unclosed layout body (missing `}`)".into())),
            }
        }

        Ok(LayoutDesc {
            name,
            endian: endian.unwrap_or(Endian::Little),
            order: order.unwrap_or(RecordOrder::RowMajor),
            header_len: header.unwrap_or(0) as usize,
            items,
        })
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, what: &str, line: usize) -> Result<()> {
    if slot.is_some() {
        return Err(Error::Parse(format!(
            "line {line}: `{what}` specified twice"
        )));
    }
    *slot = Some(value);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_layout() {
        let d = parse_layout(
            r#"
            # Oil reservoir chunk format, version 1
            layout reservoir_v1 {
                endian big;
                order column_major;
                header 32;
                field x: i32;
                field y: i32;
                pad 8;
                field wp: f64;
            }
            "#,
        )
        .unwrap();
        assert_eq!(d.name, "reservoir_v1");
        assert_eq!(d.endian, Endian::Big);
        assert_eq!(d.order, RecordOrder::ColumnMajor);
        assert_eq!(d.header_len, 32);
        assert_eq!(d.items.len(), 4);
        assert_eq!(d.record_stride(), 4 + 4 + 8 + 8);
    }

    #[test]
    fn defaults_apply() {
        let d = parse_layout("layout t { field x: i32; }").unwrap();
        assert_eq!(d.endian, Endian::Little);
        assert_eq!(d.order, RecordOrder::RowMajor);
        assert_eq!(d.header_len, 0);
    }

    #[test]
    fn rejects_duplicate_directives() {
        let e = parse_layout("layout t { endian little; endian big; field x: i32; }").unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn rejects_unknown_type_and_statement() {
        assert!(parse_layout("layout t { field x: u8; }").is_err());
        assert!(parse_layout("layout t { wibble 3; }").is_err());
    }

    #[test]
    fn rejects_missing_semicolon_and_unclosed_body() {
        assert!(parse_layout("layout t { field x: i32 }").is_err());
        assert!(parse_layout("layout t { field x: i32;").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_layout("layout t { field x: i32; } extra").unwrap_err();
        assert!(e.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_duplicate_field_names_via_validate() {
        let e = parse_layout("layout t { field x: i32; field x: f32; }").unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = parse_layout("layout t {\n  field x: i32;\n  field y i32;\n}").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
    }
}
