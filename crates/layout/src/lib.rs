//! Layout-description language for application-specific chunk formats.
//!
//! Scientific datasets are written by simulations in ad-hoc binary formats.
//! Rather than hand-coding an extractor per format, the paper (following
//! Weng et al., HPDC'04 — its reference \[17\]) generates extractors from a
//! *layout description*. This crate implements that idea:
//!
//! * a small textual DSL ([`parse_layout`]) describing endianness, record
//!   order (row- vs column-major), header bytes, fields and padding;
//! * a compiler ([`CompiledLayout`]) that turns a description into an
//!   executable extractor: `raw chunk bytes → typed columns`;
//! * the inverse encoder, used by the dataset generator to *write* chunks in
//!   any described format (and by round-trip tests).
//!
//! # Example
//!
//! ```
//! use orv_layout::{parse_layout, CompiledLayout};
//! use orv_types::Value;
//!
//! let desc = parse_layout(r#"
//!     layout reservoir_v1 {
//!         endian little;
//!         order row_major;
//!         header 8;
//!         field x: i32;
//!         field y: i32;
//!         pad 4;
//!         field wp: f32;
//!     }
//! "#).unwrap();
//! let compiled = CompiledLayout::compile(&desc).unwrap();
//! assert_eq!(compiled.record_stride(), 16);
//!
//! let columns = vec![
//!     vec![Value::I32(1), Value::I32(2)],
//!     vec![Value::I32(10), Value::I32(20)],
//!     vec![Value::F32(0.5), Value::F32(0.25)],
//! ];
//! let bytes = compiled.encode(&columns).unwrap();
//! assert_eq!(bytes.len(), 8 + 2 * 16);
//! assert_eq!(compiled.decode(&bytes).unwrap(), columns);
//! ```

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;

pub use ast::{Endian, Item, LayoutDesc, RecordOrder};
pub use compile::CompiledLayout;
pub use parser::parse_layout;
