//! Abstract syntax of layout descriptions.

use orv_types::{DataType, Error, Result};

/// Byte order of multi-byte fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Endian {
    /// Least-significant byte first.
    Little,
    /// Most-significant byte first.
    Big,
}

/// How records are laid out within a chunk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecordOrder {
    /// Records are packed one after another (array of structs).
    RowMajor,
    /// Each field's values are stored contiguously (struct of arrays);
    /// `pad` items become per-record gaps within each column block.
    ColumnMajor,
}

/// One item in a layout body, in declaration order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// A named, typed field.
    Field {
        /// Field name (becomes the attribute name).
        name: String,
        /// Scalar type.
        dtype: DataType,
    },
    /// `n` bytes of padding after the previous item (per record).
    Pad(usize),
}

/// A parsed layout description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LayoutDesc {
    /// Layout name (identifies the extractor in the metadata service).
    pub name: String,
    /// Byte order.
    pub endian: Endian,
    /// Record order.
    pub order: RecordOrder,
    /// Bytes to skip at the start of every chunk.
    pub header_len: usize,
    /// Fields and padding, in on-disk order.
    pub items: Vec<Item>,
}

impl LayoutDesc {
    /// Field `(name, dtype)` pairs in on-disk order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, DataType)> {
        self.items.iter().filter_map(|it| match it {
            Item::Field { name, dtype } => Some((name.as_str(), *dtype)),
            Item::Pad(_) => None,
        })
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields().count()
    }

    /// Bytes occupied by one record, padding included.
    pub fn record_stride(&self) -> usize {
        self.items
            .iter()
            .map(|it| match it {
                Item::Field { dtype, .. } => dtype.width(),
                Item::Pad(n) => *n,
            })
            .sum()
    }

    /// Check structural invariants: at least one field, unique names.
    pub fn validate(&self) -> Result<()> {
        if self.num_fields() == 0 {
            return Err(Error::Format(format!(
                "layout `{}` declares no fields",
                self.name
            )));
        }
        let mut seen: Vec<&str> = Vec::new();
        for (name, _) in self.fields() {
            if seen.contains(&name) {
                return Err(Error::Format(format!(
                    "layout `{}` declares field `{name}` twice",
                    self.name
                )));
            }
            seen.push(name);
        }
        Ok(())
    }

    /// Render back to DSL source text; `parse_layout(desc.to_source())`
    /// reproduces the description exactly.
    pub fn to_source(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "layout {} {{", self.name);
        let endian = match self.endian {
            Endian::Little => "little",
            Endian::Big => "big",
        };
        let _ = writeln!(out, "    endian {endian};");
        let order = match self.order {
            RecordOrder::RowMajor => "row_major",
            RecordOrder::ColumnMajor => "column_major",
        };
        let _ = writeln!(out, "    order {order};");
        let _ = writeln!(out, "    header {};", self.header_len);
        for item in &self.items {
            match item {
                Item::Field { name, dtype } => {
                    let _ = writeln!(out, "    field {name}: {dtype};");
                }
                Item::Pad(n) => {
                    let _ = writeln!(out, "    pad {n};");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// The canonical packed little-endian row-major layout for a list of
    /// fields — what the oil-reservoir generator uses by default.
    pub fn packed(name: impl Into<String>, fields: &[(&str, DataType)]) -> Self {
        LayoutDesc {
            name: name.into(),
            endian: Endian::Little,
            order: RecordOrder::RowMajor,
            header_len: 0,
            items: fields
                .iter()
                .map(|(n, t)| Item::Field {
                    name: (*n).to_string(),
                    dtype: *t,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_counts_fields_and_padding() {
        let d = LayoutDesc {
            name: "t".into(),
            endian: Endian::Little,
            order: RecordOrder::RowMajor,
            header_len: 0,
            items: vec![
                Item::Field {
                    name: "x".into(),
                    dtype: DataType::I32,
                },
                Item::Pad(4),
                Item::Field {
                    name: "p".into(),
                    dtype: DataType::F64,
                },
            ],
        };
        assert_eq!(d.record_stride(), 16);
        assert_eq!(d.num_fields(), 2);
    }

    #[test]
    fn validate_rejects_duplicates_and_empty() {
        let mut d = LayoutDesc::packed("t", &[("x", DataType::I32), ("x", DataType::F32)]);
        assert!(d.validate().is_err());
        d.items.clear();
        assert!(d.validate().is_err());
        let ok = LayoutDesc::packed("t", &[("x", DataType::I32)]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn to_source_roundtrips_through_parser() {
        let d = LayoutDesc {
            name: "roundtrip".into(),
            endian: Endian::Big,
            order: RecordOrder::ColumnMajor,
            header_len: 24,
            items: vec![
                Item::Field {
                    name: "x".into(),
                    dtype: DataType::I64,
                },
                Item::Pad(3),
                Item::Field {
                    name: "wp".into(),
                    dtype: DataType::F32,
                },
            ],
        };
        let src = d.to_source();
        assert!(src.contains("endian big;"));
        assert!(src.contains("pad 3;"));
        let back = crate::parser::parse_layout(&src).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn packed_layout_is_tight() {
        let d = LayoutDesc::packed("t", &[("x", DataType::I32), ("wp", DataType::F32)]);
        assert_eq!(d.record_stride(), 8);
        assert_eq!(d.header_len, 0);
        assert_eq!(d.endian, Endian::Little);
    }
}
