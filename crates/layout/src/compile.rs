//! Compiling layout descriptions into executable extractors/encoders.
//!
//! A [`CompiledLayout`] resolves field offsets once, so extraction is a
//! tight loop over the chunk bytes. The encoder is the exact inverse; the
//! dataset generator uses it to write chunks in arbitrary described formats,
//! and round-trip tests rely on `decode(encode(x)) == x`.

use crate::ast::{Endian, Item, LayoutDesc, RecordOrder};
use orv_types::{DataType, Error, Result, Value};

/// One field with its resolved byte offset within a record (row-major) or
/// its column block (column-major).
#[derive(Clone, Debug)]
struct FieldSlot {
    name: String,
    dtype: DataType,
    /// Byte offset of this field within one record (row-major view).
    offset: usize,
}

/// An executable extractor/encoder for one layout.
#[derive(Clone, Debug)]
pub struct CompiledLayout {
    name: String,
    endian: Endian,
    order: RecordOrder,
    header_len: usize,
    stride: usize,
    fields: Vec<FieldSlot>,
    /// Item-order walk of (offset, size, field_index-or-pad) used by the
    /// column-major codec: (byte offset of the item within a record, width,
    /// Some(field idx) or None for padding).
    walk: Vec<(usize, usize, Option<usize>)>,
}

impl CompiledLayout {
    /// Resolve offsets for `desc`.
    pub fn compile(desc: &LayoutDesc) -> Result<Self> {
        desc.validate()?;
        let mut fields = Vec::new();
        let mut walk = Vec::new();
        let mut off = 0usize;
        for item in &desc.items {
            match item {
                Item::Field { name, dtype } => {
                    walk.push((off, dtype.width(), Some(fields.len())));
                    fields.push(FieldSlot {
                        name: name.clone(),
                        dtype: *dtype,
                        offset: off,
                    });
                    off += dtype.width();
                }
                Item::Pad(n) => {
                    walk.push((off, *n, None));
                    off += n;
                }
            }
        }
        Ok(CompiledLayout {
            name: desc.name.clone(),
            endian: desc.endian,
            order: desc.order,
            header_len: desc.header_len,
            stride: off,
            fields,
            walk,
        })
    }

    /// Layout name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes per record, padding included.
    pub fn record_stride(&self) -> usize {
        self.stride
    }

    /// Header bytes skipped at the start of each chunk.
    pub fn header_len(&self) -> usize {
        self.header_len
    }

    /// Field `(name, dtype)` pairs in on-disk order.
    pub fn fields(&self) -> Vec<(&str, DataType)> {
        self.fields
            .iter()
            .map(|f| (f.name.as_str(), f.dtype))
            .collect()
    }

    /// Number of records a chunk of `len` bytes holds, or an error if the
    /// byte count is inconsistent with the layout.
    pub fn row_count(&self, len: usize) -> Result<usize> {
        let body = len.checked_sub(self.header_len).ok_or_else(|| {
            Error::Format(format!(
                "chunk of {len} bytes shorter than `{}` header ({} bytes)",
                self.name, self.header_len
            ))
        })?;
        if self.stride == 0 {
            return Err(Error::Format(format!(
                "layout `{}` has zero stride",
                self.name
            )));
        }
        if body % self.stride != 0 {
            return Err(Error::Format(format!(
                "chunk body of {body} bytes is not a whole number of `{}` records (stride {})",
                self.name, self.stride
            )));
        }
        Ok(body / self.stride)
    }

    /// Extract typed columns (in field order) from raw chunk bytes.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<Vec<Value>>> {
        let nrows = self.row_count(bytes.len())?;
        let body = &bytes[self.header_len..];
        let mut cols: Vec<Vec<Value>> = self
            .fields
            .iter()
            .map(|_| Vec::with_capacity(nrows))
            .collect();
        match self.order {
            RecordOrder::RowMajor => {
                for r in 0..nrows {
                    let rec = &body[r * self.stride..(r + 1) * self.stride];
                    for (ci, f) in self.fields.iter().enumerate() {
                        cols[ci].push(read_value(&rec[f.offset..], f.dtype, self.endian)?);
                    }
                }
            }
            RecordOrder::ColumnMajor => {
                let mut block_start = 0usize;
                for &(_, size, field) in &self.walk {
                    if let Some(ci) = field {
                        let dtype = self.fields[ci].dtype;
                        for r in 0..nrows {
                            let at = block_start + r * size;
                            cols[ci].push(read_value(&body[at..], dtype, self.endian)?);
                        }
                    }
                    block_start += size * nrows;
                }
            }
        }
        Ok(cols)
    }

    /// Encode typed columns into chunk bytes (header zero-filled, padding
    /// zero-filled). Columns must be in field order, equal length, and
    /// type-correct.
    #[allow(clippy::needless_range_loop)] // row index drives several columns
    pub fn encode(&self, cols: &[Vec<Value>]) -> Result<Vec<u8>> {
        if cols.len() != self.fields.len() {
            return Err(Error::Schema(format!(
                "layout `{}` has {} fields but {} columns given",
                self.name,
                self.fields.len(),
                cols.len()
            )));
        }
        let nrows = cols.first().map(|c| c.len()).unwrap_or(0);
        for (ci, (col, f)) in cols.iter().zip(&self.fields).enumerate() {
            if col.len() != nrows {
                return Err(Error::Schema(format!(
                    "column {ci} has {} rows, expected {nrows}",
                    col.len()
                )));
            }
            if let Some(v) = col.iter().find(|v| v.data_type() != f.dtype) {
                return Err(Error::Schema(format!(
                    "column `{}` expects {} but contains {}",
                    f.name,
                    f.dtype,
                    v.data_type()
                )));
            }
        }
        let mut out = vec![0u8; self.header_len + nrows * self.stride];
        let body_start = self.header_len;
        match self.order {
            RecordOrder::RowMajor => {
                for r in 0..nrows {
                    let rec_start = body_start + r * self.stride;
                    for (ci, f) in self.fields.iter().enumerate() {
                        write_value(cols[ci][r], &mut out[rec_start + f.offset..], self.endian);
                    }
                }
            }
            RecordOrder::ColumnMajor => {
                let mut block_start = body_start;
                for &(_, size, field) in &self.walk {
                    if let Some(ci) = field {
                        for r in 0..nrows {
                            let at = block_start + r * size;
                            write_value(cols[ci][r], &mut out[at..], self.endian);
                        }
                    }
                    block_start += size * nrows;
                }
            }
        }
        Ok(out)
    }
}

fn read_value(bytes: &[u8], dtype: DataType, endian: Endian) -> Result<Value> {
    // Fixed-width prefix of the record, as a typed format error rather
    // than a slice panic when the chunk body is shorter than the layout
    // promised.
    fn arr<const N: usize>(bytes: &[u8], dtype: DataType) -> Result<[u8; N]> {
        bytes
            .get(..N)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| {
                Error::Format(format!(
                    "record truncated: need {N} bytes for a {dtype:?} value, have {}",
                    bytes.len()
                ))
            })
    }
    Ok(match (dtype, endian) {
        (DataType::I32, Endian::Little) => Value::I32(i32::from_le_bytes(arr(bytes, dtype)?)),
        (DataType::I32, Endian::Big) => Value::I32(i32::from_be_bytes(arr(bytes, dtype)?)),
        (DataType::I64, Endian::Little) => Value::I64(i64::from_le_bytes(arr(bytes, dtype)?)),
        (DataType::I64, Endian::Big) => Value::I64(i64::from_be_bytes(arr(bytes, dtype)?)),
        (DataType::F32, Endian::Little) => Value::F32(f32::from_le_bytes(arr(bytes, dtype)?)),
        (DataType::F32, Endian::Big) => Value::F32(f32::from_be_bytes(arr(bytes, dtype)?)),
        (DataType::F64, Endian::Little) => Value::F64(f64::from_le_bytes(arr(bytes, dtype)?)),
        (DataType::F64, Endian::Big) => Value::F64(f64::from_be_bytes(arr(bytes, dtype)?)),
    })
}

fn write_value(v: Value, out: &mut [u8], endian: Endian) {
    match (v, endian) {
        (Value::I32(x), Endian::Little) => out[..4].copy_from_slice(&x.to_le_bytes()),
        (Value::I32(x), Endian::Big) => out[..4].copy_from_slice(&x.to_be_bytes()),
        (Value::I64(x), Endian::Little) => out[..8].copy_from_slice(&x.to_le_bytes()),
        (Value::I64(x), Endian::Big) => out[..8].copy_from_slice(&x.to_be_bytes()),
        (Value::F32(x), Endian::Little) => out[..4].copy_from_slice(&x.to_le_bytes()),
        (Value::F32(x), Endian::Big) => out[..4].copy_from_slice(&x.to_be_bytes()),
        (Value::F64(x), Endian::Little) => out[..8].copy_from_slice(&x.to_le_bytes()),
        (Value::F64(x), Endian::Big) => out[..8].copy_from_slice(&x.to_be_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_layout;

    fn compile(src: &str) -> CompiledLayout {
        CompiledLayout::compile(&parse_layout(src).unwrap()).unwrap()
    }

    fn sample_cols() -> Vec<Vec<Value>> {
        vec![
            vec![Value::I32(1), Value::I32(-2), Value::I32(3)],
            vec![Value::F32(0.5), Value::F32(1.5), Value::F32(-2.5)],
        ]
    }

    #[test]
    fn row_major_roundtrip_with_header_and_pad() {
        let c = compile("layout t { header 16; field x: i32; pad 4; field wp: f32; }");
        assert_eq!(c.record_stride(), 12);
        let bytes = c.encode(&sample_cols()).unwrap();
        assert_eq!(bytes.len(), 16 + 3 * 12);
        assert_eq!(c.decode(&bytes).unwrap(), sample_cols());
    }

    #[test]
    fn column_major_roundtrip() {
        let c = compile("layout t { order column_major; field x: i32; field wp: f32; }");
        let bytes = c.encode(&sample_cols()).unwrap();
        // First 12 bytes are the x column.
        assert_eq!(&bytes[..4], &1i32.to_le_bytes());
        assert_eq!(&bytes[4..8], &(-2i32).to_le_bytes());
        assert_eq!(c.decode(&bytes).unwrap(), sample_cols());
    }

    #[test]
    fn big_endian_roundtrip_and_bytes() {
        let c = compile("layout t { endian big; field x: i32; field wp: f32; }");
        let cols = sample_cols();
        let bytes = c.encode(&cols).unwrap();
        assert_eq!(&bytes[..4], &1i32.to_be_bytes());
        assert_eq!(c.decode(&bytes).unwrap(), cols);
    }

    #[test]
    fn row_count_validation() {
        let c = compile("layout t { field x: i32; }");
        assert_eq!(c.row_count(12).unwrap(), 3);
        assert!(c.row_count(13).is_err());
        let h = compile("layout t { header 8; field x: i32; }");
        assert!(h.row_count(4).is_err()); // shorter than header
        assert_eq!(h.row_count(8).unwrap(), 0);
    }

    #[test]
    fn encode_validates_columns() {
        let c = compile("layout t { field x: i32; field wp: f32; }");
        // Wrong column count.
        assert!(c.encode(&sample_cols()[..1]).is_err());
        // Ragged columns.
        let ragged = vec![vec![Value::I32(1)], vec![Value::F32(0.5), Value::F32(1.0)]];
        assert!(c.encode(&ragged).is_err());
        // Wrong type.
        let wrong = vec![vec![Value::F32(1.0)], vec![Value::F32(0.5)]];
        assert!(c.encode(&wrong).is_err());
    }

    #[test]
    fn empty_chunk_roundtrip() {
        let c = compile("layout t { field x: i32; }");
        let bytes = c.encode(&[vec![]]).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(c.decode(&bytes).unwrap(), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn decode_is_order_insensitive_to_declaration_gaps() {
        // Interleaved pads in column-major create gaps between column blocks.
        let c = compile("layout t { order column_major; field x: i32; pad 2; field y: i32; }");
        let cols = vec![
            vec![Value::I32(7), Value::I32(8)],
            vec![Value::I32(70), Value::I32(80)],
        ];
        let bytes = c.encode(&cols).unwrap();
        assert_eq!(bytes.len(), 2 * (4 + 2 + 4));
        assert_eq!(c.decode(&bytes).unwrap(), cols);
    }
}
