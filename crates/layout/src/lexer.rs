//! Tokenizer for the layout DSL.
//!
//! The language is tiny: identifiers, unsigned integers, and the punctuation
//! `{ } : ;`. `#` starts a comment running to end of line.

use orv_types::{Error, Result};
use std::fmt;

/// A lexical token with its source line (for error messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semi,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semi => write!(f, "`;`"),
        }
    }
}

/// Tokenize a layout source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
            }
            ':' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
            }
            ';' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(digit as u64))
                            .ok_or_else(|| {
                                Error::Parse(format!("line {line}: integer literal overflows u64"))
                            })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Int(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            other => {
                return Err(Error::Parse(format!(
                    "line {line}: unexpected character `{other}` in layout description"
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_all_kinds() {
        let toks = kinds("layout t { field x: i32; }");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("layout".into()),
                TokenKind::Ident("t".into()),
                TokenKind::LBrace,
                TokenKind::Ident("field".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::Ident("i32".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let toks = kinds("# a comment\n\n  pad 16; # trailing\n");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("pad".into()),
                TokenKind::Int(16),
                TokenKind::Semi
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = tokenize("a\nb\n  c").unwrap();
        assert_eq!(
            toks.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn bad_character_reports_line() {
        let err = tokenize("ok\n$").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn big_integer_overflow_detected() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
