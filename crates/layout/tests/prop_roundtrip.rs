//! Property tests: encode→decode is the identity for arbitrary layouts and
//! arbitrary column data.

use orv_layout::{CompiledLayout, Endian, Item, LayoutDesc, RecordOrder};
use orv_types::{DataType, Value};
use proptest::prelude::*;

fn dtype_strategy() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::I32),
        Just(DataType::I64),
        Just(DataType::F32),
        Just(DataType::F64),
    ]
}

fn layout_strategy() -> impl Strategy<Value = LayoutDesc> {
    let endian = prop_oneof![Just(Endian::Little), Just(Endian::Big)];
    let order = prop_oneof![Just(RecordOrder::RowMajor), Just(RecordOrder::ColumnMajor)];
    let item = prop_oneof![
        3 => dtype_strategy().prop_map(|d| (Some(d), 0usize)),
        1 => (1usize..8).prop_map(|n| (None, n)),
    ];
    (
        endian,
        order,
        0usize..32,
        proptest::collection::vec(item, 1..8),
    )
        .prop_map(|(endian, order, header_len, raw_items)| {
            let mut items = Vec::new();
            let mut fidx = 0;
            for (field, pad) in raw_items {
                match field {
                    Some(dtype) => {
                        items.push(Item::Field {
                            name: format!("f{fidx}"),
                            dtype,
                        });
                        fidx += 1;
                    }
                    None => items.push(Item::Pad(pad)),
                }
            }
            if fidx == 0 {
                items.push(Item::Field {
                    name: "f0".into(),
                    dtype: DataType::I32,
                });
            }
            LayoutDesc {
                name: "prop".into(),
                endian,
                order,
                header_len,
                items,
            }
        })
}

fn value_for(dtype: DataType, seed: i64) -> Value {
    match dtype {
        DataType::I32 => Value::I32(seed as i32),
        DataType::I64 => Value::I64(seed.wrapping_mul(1 << 33)),
        DataType::F32 => Value::F32(seed as f32 * 0.37),
        DataType::F64 => Value::F64(seed as f64 * -1.0e6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_identity(desc in layout_strategy(), nrows in 0usize..40, seed in any::<i64>()) {
        let compiled = CompiledLayout::compile(&desc).unwrap();
        let cols: Vec<Vec<Value>> = compiled
            .fields()
            .iter()
            .enumerate()
            .map(|(ci, (_, dtype))| {
                (0..nrows)
                    .map(|r| value_for(*dtype, seed.wrapping_add((ci * 1000 + r) as i64)))
                    .collect()
            })
            .collect();
        let bytes = compiled.encode(&cols).unwrap();
        prop_assert_eq!(bytes.len(), desc.header_len + nrows * desc.record_stride());
        let back = compiled.decode(&bytes).unwrap();
        prop_assert_eq!(back, cols);
    }

    #[test]
    fn source_roundtrip_identity(desc in layout_strategy()) {
        let src = desc.to_source();
        let back = orv_layout::parse_layout(&src).unwrap();
        prop_assert_eq!(back, desc);
    }

    #[test]
    fn row_count_agrees_with_encode(desc in layout_strategy(), nrows in 0usize..40) {
        let compiled = CompiledLayout::compile(&desc).unwrap();
        let cols: Vec<Vec<Value>> = compiled
            .fields()
            .iter()
            .map(|(_, dtype)| (0..nrows).map(|r| value_for(*dtype, r as i64)).collect())
            .collect();
        let bytes = compiled.encode(&cols).unwrap();
        prop_assert_eq!(compiled.row_count(bytes.len()).unwrap(), nrows);
    }
}
