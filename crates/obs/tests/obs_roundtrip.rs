//! Integration coverage for the metrics layer: bucket boundaries,
//! concurrency, span ordering and JSON round-trips.

use orv_obs::{EventLog, JsonValue, MetricsRegistry, MetricsSnapshot, Obs, SpanRecord, Spans};

#[test]
fn histogram_bucketing_boundaries() {
    let r = MetricsRegistry::new();
    let h = r.histogram("lat", &[1.0, 10.0, 100.0]).unwrap();
    // A sample exactly on a bound lands in that bound's bucket.
    h.record(0.0);
    h.record(1.0);
    h.record(1.0000001);
    h.record(10.0);
    h.record(99.9);
    h.record(100.0);
    h.record(100.1); // overflow
    h.record(1e12); // overflow
    assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
    assert_eq!(h.count(), 8);
    let snap = r.snapshot();
    assert_eq!(snap.histograms["lat"].buckets, vec![2, 2, 2, 2]);
    let want_sum = 0.0 + 1.0 + 1.0000001 + 10.0 + 99.9 + 100.0 + 100.1 + 1e12;
    assert!((snap.histograms["lat"].sum - want_sum).abs() < 1e-3);
}

#[test]
fn concurrent_counter_increments_from_scoped_threads() {
    let r = MetricsRegistry::new();
    let h = r.histogram("h", &[0.5]).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let r = r.clone();
            let h = h.clone();
            s.spawn(move || {
                let c = r.counter("shared");
                for i in 0..10_000u64 {
                    c.inc();
                    if i % 100 == 0 {
                        h.record((t as f64) / 8.0);
                    }
                }
                r.gauge("peak").raise(t);
            });
        }
    });
    let snap = r.snapshot();
    assert_eq!(snap.counters["shared"], 80_000);
    assert_eq!(snap.gauges["peak"], 7);
    assert_eq!(snap.histograms["h"].count, 800);
    // 5 threads with t/8 <= 0.5 (t = 0..4), 3 above.
    assert_eq!(snap.histograms["h"].buckets, vec![500, 300]);
}

#[test]
fn span_nesting_and_ordering() {
    let s = Spans::enabled();
    {
        let outer = s.span("n0/transfer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let inner = outer.child("decode");
        std::thread::sleep(std::time::Duration::from_millis(2));
        inner.finish();
    }
    s.span("n0/build").finish();
    let recs = s.records();
    assert_eq!(recs.len(), 3);
    // Start order, not completion order: the outer span completed after
    // its child but sorts first.
    assert_eq!(recs[0].path, "n0/transfer");
    assert_eq!(recs[1].path, "n0/transfer/decode");
    assert_eq!(recs[2].path, "n0/build");
    assert!(recs[0].dur_secs >= recs[1].dur_secs);
    assert!(recs[0].start_secs <= recs[1].start_secs);
    // JSON round-trip of span records.
    for r in &recs {
        let back = SpanRecord::from_json_value(&r.to_json_value()).unwrap();
        assert_eq!(&back, r);
    }
}

#[test]
fn metrics_snapshot_json_round_trip() {
    let r = MetricsRegistry::new();
    r.counter("bytes_transferred").add(4096);
    r.gauge("workers").set(3);
    r.histogram("probe_us", &[10.0, 100.0])
        .unwrap()
        .record(42.5);
    let snap = r.snapshot();
    let text = snap.to_json_value().to_string();
    let back = MetricsSnapshot::from_json_value(&JsonValue::parse(&text).unwrap()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn event_log_json_round_trip_through_obs() {
    let obs = Obs::enabled();
    obs.events.emit("fault_injected", || {
        vec![
            ("kind", "read".into()),
            ("site", "chunk_read".into()),
            ("draw", 7u64.into()),
        ]
    });
    let text = obs.events.to_json_lines();
    let parsed = EventLog::from_json_lines(&text).unwrap();
    assert_eq!(parsed, obs.events.events());
    assert_eq!(parsed[0].fields["draw"].as_u64(), Some(7));
}
