//! `orv-obs` — the observability spine of the reproduction.
//!
//! Three primitives, bundled into one cloneable [`Obs`] handle:
//!
//! * [`MetricsRegistry`] — named atomic counters/gauges/histograms with
//!   uniform snapshot-merge semantics (counters add, gauges max,
//!   histograms add bucketwise);
//! * [`Spans`] — hierarchical wall-clock span timers whose `/`-separated
//!   paths (`n0/transfer`, `c2/scratch_read`, …) aggregate into per-phase
//!   critical-path times;
//! * [`EventLog`] — a structured JSON-lines event stream (QES choices,
//!   injected faults) that makes runs replayable from logs alone.
//!
//! `Obs::disabled()` is the default everywhere in the runtime configs:
//! disabled spans and events cost one branch, so the instrumented join
//! path stays within the <5% overhead budget when observability is off.

mod event;
mod json;
mod metrics;
pub mod names;
mod report;
mod span;
mod trace;

pub use event::{Event, EventLog};
pub use json::{obj, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use report::{
    required_phases, LatencyRow, ObsReport, PhaseRow, RunReport, ServingReport, GH_PHASES,
    IJ_PHASES,
};
pub use span::{SpanRecord, SpanTimer, Spans};
pub use trace::{FlightRecorder, QueryTrace, Stopwatch, TraceId, TraceOutcome};

/// One handle carrying all three observability primitives; clone it into
/// each service/config. The metrics registry is always live (atomic
/// increments are cheap and only touched at merge points); spans and
/// events honour the enabled/disabled mode.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Named instruments.
    pub metrics: MetricsRegistry,
    /// Span timers.
    pub spans: Spans,
    /// Structured events.
    pub events: EventLog,
}

impl Obs {
    /// Fully enabled observability.
    pub fn enabled() -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            spans: Spans::enabled(),
            events: EventLog::enabled(),
        }
    }

    /// Disabled spans/events (the default); the registry still works.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Whether span/event collection is on.
    pub fn is_enabled(&self) -> bool {
        self.spans.is_enabled() || self.events.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        assert!(!obs.spans.is_enabled());
        assert!(!obs.events.is_enabled());
        // Registry still functions in disabled mode.
        obs.metrics.counter("x").inc();
        assert_eq!(obs.metrics.snapshot().counters["x"], 1);
    }

    #[test]
    fn enabled_collects_everything() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        obs.spans.span("g/leaf").finish();
        obs.events.emit("e", Vec::new);
        assert_eq!(obs.spans.records().len(), 1);
        assert_eq!(obs.events.events().len(), 1);
    }
}
