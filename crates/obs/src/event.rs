//! Structured event log: what *happened*, as replayable JSON lines.
//!
//! Events carry a kind, a global sequence number and arbitrary key/value
//! fields. The fault injector uses them to make chaos runs replayable from
//! logs alone (kind, site and draw index of every injected fault); the
//! query engine logs its QES choice with the model evidence.

use crate::json::JsonValue;
use orv_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One logged event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global emission order.
    pub seq: u64,
    /// Event kind, e.g. `fault_injected`, `qes_choice`.
    pub kind: String,
    /// Structured payload.
    pub fields: BTreeMap<String, JsonValue>,
}

impl Event {
    /// Serialize as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        crate::json::obj([
            ("seq", self.seq.into()),
            ("kind", self.kind.as_str().into()),
            ("fields", JsonValue::Object(self.fields.clone())),
        ])
    }

    /// Parse back from [`Event::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        Ok(Event {
            seq: v.req_u64("seq")?,
            kind: v.req_str("kind")?.to_string(),
            fields: v
                .req("fields")?
                .as_object()
                .ok_or_else(|| Error::Config("`fields` is not an object".into()))?
                .clone(),
        })
    }
}

struct EventInner {
    seq: AtomicU64,
    events: Mutex<Vec<Event>>,
}

/// A shared event sink; clone it into every service that should log.
#[derive(Clone, Default)]
pub struct EventLog {
    inner: Option<Arc<EventInner>>,
}

impl EventLog {
    /// An enabled log.
    pub fn enabled() -> Self {
        EventLog {
            inner: Some(Arc::new(EventInner {
                seq: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disabled log: `emit` is a single branch, payloads never built.
    pub fn disabled() -> Self {
        EventLog { inner: None }
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event; the payload closure only runs when enabled.
    pub fn emit(&self, kind: &str, fields: impl FnOnce() -> Vec<(&'static str, JsonValue)>) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            kind: kind.to_string(),
            fields: fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        };
        inner.events.lock().push(event);
    }

    /// All events so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = inner.events.lock().clone();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events of one kind, in emission order.
    pub fn events_of_kind(&self, kind: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// Serialize every event as one JSON object per line.
    pub fn to_json_lines(&self) -> String {
        self.events()
            .iter()
            .map(|e| e.to_json_value().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse events back from [`EventLog::to_json_lines`] output.
    pub fn from_json_lines(text: &str) -> Result<Vec<Event>> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| Event::from_json_value(&JsonValue::parse(l)?))
            .collect()
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("EventLog(disabled)"),
            Some(i) => write!(f, "EventLog({} events)", i.events.lock().len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_skips_payload() {
        let log = EventLog::disabled();
        log.emit("x", || panic!("payload must not be built"));
        assert!(log.events().is_empty());
    }

    #[test]
    fn events_round_trip_json_lines() {
        let log = EventLog::enabled();
        log.emit("fault_injected", || {
            vec![("kind", "read".into()), ("draw", 3u64.into())]
        });
        log.emit("qes_choice", || vec![("algorithm", "indexed_join".into())]);
        let text = log.to_json_lines();
        let parsed = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(parsed, log.events());
        assert_eq!(parsed[0].seq, 0);
        assert_eq!(parsed[1].kind, "qes_choice");
        assert!(EventLog::from_json_lines("{not json").is_err());
    }

    #[test]
    fn filter_by_kind() {
        let log = EventLog::enabled();
        log.emit("a", Vec::new);
        log.emit("b", Vec::new);
        log.emit("a", Vec::new);
        assert_eq!(log.events_of_kind("a").len(), 2);
        assert_eq!(log.events_of_kind("c").len(), 0);
    }
}
