//! A minimal JSON value with serializer and parser.
//!
//! The observability layer promises a structured JSON export format while
//! staying dependency-free, so it carries its own ~200-line JSON
//! implementation instead of pulling in `serde_json`. Numbers are `f64`
//! (exact for integers below 2^53 — far beyond any counter this repo
//! produces); non-finite numbers serialize as `null`, which `validate`
//! rejects upstream anyway.

use orv_types::{Error, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys sorted, so output is deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::Config(format!(
                "trailing JSON content at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Member `key` of an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Required object member, as an error otherwise.
    pub fn req(&self, key: &str) -> Result<&JsonValue> {
        self.get(key)
            .ok_or_else(|| Error::Config(format!("missing JSON field `{key}`")))
    }

    /// Required numeric member.
    pub fn req_f64(&self, key: &str) -> Result<f64> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| Error::Config(format!("JSON field `{key}` is not a number")))
    }

    /// Required non-negative integer member.
    pub fn req_u64(&self, key: &str) -> Result<u64> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| Error::Config(format!("JSON field `{key}` is not a u64")))
    }

    /// Required string member.
    pub fn req_str(&self, key: &str) -> Result<&str> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| Error::Config(format!("JSON field `{key}` is not a string")))
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Number(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}
impl From<BTreeMap<String, JsonValue>> for JsonValue {
    fn from(v: BTreeMap<String, JsonValue>) -> Self {
        JsonValue::Object(v)
    }
}

/// Build a [`JsonValue::Object`] from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    // Rust's shortest round-trip float formatting.
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::Config(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", JsonValue::Null),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected `{}`", c as char))),
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 bytes in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(self.err(&format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Number(1000.0));
    }

    #[test]
    fn nested_round_trip() {
        let v = obj([
            ("name", "grace_hash".into()),
            ("phases", JsonValue::Array(vec![1.5.into(), 2u64.into()])),
            (
                "nested",
                obj([("quote\"", "line\nbreak\ttab \u{1}".into())]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_and_pretty_input_accepted() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] ,\n \"b\" : { } } ").unwrap();
        assert_eq!(v.req("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.req_u64("a").is_err());
        assert!(v.get("b").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn errors_reported() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = obj([("n", 7u64.into()), ("s", "x".into())]);
        assert_eq!(v.req_u64("n").unwrap(), 7);
        assert_eq!(v.req_f64("n").unwrap(), 7.0);
        assert_eq!(v.req_str("s").unwrap(), "x");
        assert!(v.req("missing").is_err());
        assert!(v.req_str("n").is_err());
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            JsonValue::parse("\"a\\u0041\\u00e9\"").unwrap(),
            JsonValue::String("aAé".into())
        );
    }
}
