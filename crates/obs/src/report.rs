//! Predicted-vs-measured phase breakdowns.
//!
//! The report layer is numbers-only: it knows the canonical phase names
//! for each QES and how to render/validate a breakdown, but nothing about
//! the cost models themselves — the glue that evaluates `orv-costmodel`
//! and fills in `predicted_secs` lives above both crates (`orv::obs_report`),
//! keeping the dependency graph acyclic.

use orv_types::{Error, Result};
use std::collections::BTreeMap;

use crate::json::{obj, JsonValue};
use crate::metrics::MetricsSnapshot;
use crate::names;
use crate::trace::{FlightRecorder, QueryTrace};

/// Canonical phase names for the Indexed Join, in report order. They map
/// one-to-one onto the Section 5 IJ cost terms: `transfer` ↔ Transfer_IJ,
/// `build` ↔ BuildHT_IJ, `probe` ↔ Lookup_IJ.
pub const IJ_PHASES: &[&str] = &[
    names::PHASE_TRANSFER,
    names::PHASE_BUILD,
    names::PHASE_PROBE,
];

/// Canonical phase names for Grace Hash, in report order:
/// `transfer` ↔ Transfer_GH, `scratch_write` ↔ Write_GH,
/// `scratch_read` ↔ Read_GH, `cpu` ↔ Cpu_GH.
pub const GH_PHASES: &[&str] = &[
    names::PHASE_TRANSFER,
    names::PHASE_SCRATCH_WRITE,
    names::PHASE_SCRATCH_READ,
    names::PHASE_CPU,
];

/// The required phase list for an algorithm name, if known.
pub fn required_phases(algorithm: &str) -> Option<&'static [&'static str]> {
    match algorithm {
        "indexed_join" => Some(IJ_PHASES),
        "grace_hash" => Some(GH_PHASES),
        _ => None,
    }
}

/// One phase of one run: model prediction next to the measured time.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Canonical phase name.
    pub phase: String,
    /// Cost-model prediction, seconds.
    pub predicted_secs: f64,
    /// Measured critical-path time, seconds.
    pub measured_secs: f64,
}

impl PhaseRow {
    /// `measured / predicted`, or `NaN` when the prediction is zero.
    pub fn ratio(&self) -> f64 {
        self.measured_secs / self.predicted_secs
    }
}

/// Predicted-vs-measured breakdown of one join execution.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// `indexed_join` or `grace_hash`.
    pub algorithm: String,
    /// Per-phase rows, in canonical order.
    pub phases: Vec<PhaseRow>,
    /// Model total, seconds.
    pub predicted_total_secs: f64,
    /// End-to-end measured wall time, seconds.
    pub measured_wall_secs: f64,
    /// Measured span time that maps to no cost-model term
    /// (e.g. `partition`, `bds` internals), by leaf name.
    pub extra_measured_secs: BTreeMap<String, f64>,
}

impl RunReport {
    /// Sum of measured phase times.
    pub fn measured_phase_total(&self) -> f64 {
        self.phases.iter().map(|p| p.measured_secs).sum()
    }

    /// Check the report is well-formed: known algorithm, every required
    /// phase present exactly once, all numbers finite and non-negative.
    pub fn validate(&self) -> Result<()> {
        let required = required_phases(&self.algorithm).ok_or_else(|| {
            Error::Config(format!("unknown algorithm `{}` in report", self.algorithm))
        })?;
        for want in required {
            let n = self.phases.iter().filter(|p| p.phase == *want).count();
            if n != 1 {
                return Err(Error::Config(format!(
                    "phase `{want}` appears {n} times in {} report (want exactly 1)",
                    self.algorithm
                )));
            }
        }
        for p in &self.phases {
            if !p.predicted_secs.is_finite()
                || !p.measured_secs.is_finite()
                || p.predicted_secs < 0.0
                || p.measured_secs < 0.0
            {
                return Err(Error::Config(format!(
                    "phase `{}` has non-finite or negative times: predicted={}, measured={}",
                    p.phase, p.predicted_secs, p.measured_secs
                )));
            }
        }
        if !self.predicted_total_secs.is_finite() || !self.measured_wall_secs.is_finite() {
            return Err(Error::Config("non-finite totals in report".into()));
        }
        Ok(())
    }

    /// Render the breakdown as a fixed-width text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — predicted vs measured\n", self.algorithm));
        out.push_str(&format!(
            "  {:<14} {:>12} {:>12} {:>8}\n",
            "phase", "predicted", "measured", "ratio"
        ));
        for p in &self.phases {
            let ratio = if p.predicted_secs > 0.0 {
                format!("{:.2}x", p.ratio())
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "  {:<14} {:>11.4}s {:>11.4}s {:>8}\n",
                p.phase, p.predicted_secs, p.measured_secs, ratio
            ));
        }
        out.push_str(&format!(
            "  {:<14} {:>11.4}s {:>11.4}s\n",
            "total(model)",
            self.predicted_total_secs,
            self.measured_phase_total()
        ));
        out.push_str(&format!(
            "  {:<14} {:>12} {:>11.4}s\n",
            "wall", "", self.measured_wall_secs
        ));
        for (name, secs) in &self.extra_measured_secs {
            out.push_str(&format!(
                "  {:<14} {:>12} {:>11.4}s (unmodeled)\n",
                name, "", secs
            ));
        }
        out
    }

    /// Serialize as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        obj([
            ("algorithm", self.algorithm.as_str().into()),
            (
                "phases",
                JsonValue::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            obj([
                                ("phase", p.phase.as_str().into()),
                                ("predicted_secs", p.predicted_secs.into()),
                                ("measured_secs", p.measured_secs.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("predicted_total_secs", self.predicted_total_secs.into()),
            ("measured_wall_secs", self.measured_wall_secs.into()),
            (
                "extra_measured_secs",
                JsonValue::Object(
                    self.extra_measured_secs
                        .iter()
                        .map(|(k, v)| (k.clone(), (*v).into()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse back from [`RunReport::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        let phases = v
            .req("phases")?
            .as_array()
            .ok_or_else(|| Error::Config("`phases` is not an array".into()))?
            .iter()
            .map(|p| {
                Ok(PhaseRow {
                    phase: p.req_str("phase")?.to_string(),
                    predicted_secs: p.req_f64("predicted_secs")?,
                    measured_secs: p.req_f64("measured_secs")?,
                })
            })
            .collect::<Result<_>>()?;
        let extra = v
            .req("extra_measured_secs")?
            .as_object()
            .ok_or_else(|| Error::Config("`extra_measured_secs` is not an object".into()))?
            .iter()
            .map(|(k, x)| {
                x.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| Error::Config(format!("extra `{k}` is not a number")))
            })
            .collect::<Result<_>>()?;
        Ok(RunReport {
            algorithm: v.req_str("algorithm")?.to_string(),
            phases,
            predicted_total_secs: v.req_f64("predicted_total_secs")?,
            measured_wall_secs: v.req_f64("measured_wall_secs")?,
            extra_measured_secs: extra,
        })
    }
}

/// The full export: every run's breakdown plus the merged metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// Per-run predicted-vs-measured breakdowns.
    pub runs: Vec<RunReport>,
    /// Merged registry snapshot across all runs.
    pub metrics: MetricsSnapshot,
    /// Free-form context (dataset shape, calibration, host).
    pub notes: BTreeMap<String, JsonValue>,
}

impl ObsReport {
    /// Validate every run report.
    pub fn validate(&self) -> Result<()> {
        if self.runs.is_empty() {
            return Err(Error::Config("report contains no runs".into()));
        }
        for r in &self.runs {
            r.validate()?;
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        obj([
            (
                "runs",
                JsonValue::Array(self.runs.iter().map(|r| r.to_json_value()).collect()),
            ),
            ("metrics", self.metrics.to_json_value()),
            ("notes", JsonValue::Object(self.notes.clone())),
        ])
        .to_string()
    }

    /// Parse back from [`ObsReport::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self> {
        let v = JsonValue::parse(text)?;
        let runs = v
            .req("runs")?
            .as_array()
            .ok_or_else(|| Error::Config("`runs` is not an array".into()))?
            .iter()
            .map(RunReport::from_json_value)
            .collect::<Result<_>>()?;
        Ok(ObsReport {
            runs,
            metrics: MetricsSnapshot::from_json_value(v.req("metrics")?)?,
            notes: v
                .req("notes")?
                .as_object()
                .ok_or_else(|| Error::Config("`notes` is not an object".into()))?
                .clone(),
        })
    }
}

/// Percentile summary of one `lat/*` histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyRow {
    /// Full histogram name (`lat/exec_secs`, …).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Interpolated median, seconds.
    pub p50: f64,
    /// Interpolated 95th percentile, seconds.
    pub p95: f64,
    /// Interpolated 99th percentile, seconds.
    pub p99: f64,
    /// Exact mean, seconds.
    pub mean: f64,
}

impl LatencyRow {
    fn to_json_value(&self) -> JsonValue {
        obj([
            ("name", self.name.as_str().into()),
            ("count", self.count.into()),
            ("p50", self.p50.into()),
            ("p95", self.p95.into()),
            ("p99", self.p99.into()),
            ("mean", self.mean.into()),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<Self> {
        Ok(LatencyRow {
            name: v.req_str("name")?.to_string(),
            count: v.req_u64("count")?,
            p50: v.req_f64("p50")?,
            p95: v.req_f64("p95")?,
            p99: v.req_f64("p99")?,
            mean: v.req_f64("mean")?,
        })
    }
}

/// The serving-path export: per-phase latency percentiles, the full
/// metrics registry, and the flight recorder's retained traces. This is
/// what the throughput bench serializes to `BENCH_latency.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServingReport {
    /// One row per `lat/*` histogram with samples, in
    /// [`names::LAT_ALL`] order.
    pub latencies: Vec<LatencyRow>,
    /// Merged registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Flight recorder: the K slowest clean queries, slowest first.
    pub slowest: Vec<QueryTrace>,
    /// Flight recorder: retained failed/partial/cancelled queries.
    pub anomalies: Vec<QueryTrace>,
    /// Free-form context (client counts, dataset shape, host).
    pub notes: BTreeMap<String, JsonValue>,
}

impl ServingReport {
    /// Assemble a report from a metrics snapshot and a flight recorder:
    /// every registry-listed latency histogram with samples becomes a
    /// percentile row, and the recorder contributes its retained traces.
    pub fn build(metrics: MetricsSnapshot, recorder: &FlightRecorder) -> Self {
        let mut latencies = Vec::new();
        for name in names::LAT_ALL {
            let Some(h) = metrics.histograms.get(*name) else {
                continue;
            };
            let (Some(p50), Some(p95), Some(p99), Some(mean)) =
                (h.p50(), h.p95(), h.p99(), h.mean())
            else {
                continue;
            };
            latencies.push(LatencyRow {
                name: (*name).to_string(),
                count: h.count,
                p50,
                p95,
                p99,
                mean,
            });
        }
        ServingReport {
            latencies,
            metrics,
            slowest: recorder.slowest(),
            anomalies: recorder.anomalies(),
            notes: BTreeMap::new(),
        }
    }

    /// The row for one latency histogram, if it has samples.
    pub fn latency(&self, name: &str) -> Option<&LatencyRow> {
        self.latencies.iter().find(|r| r.name == name)
    }

    /// Check the report is well-formed: rows only for registry-listed
    /// names, with samples, finite non-negative ordered percentiles.
    pub fn validate(&self) -> Result<()> {
        for r in &self.latencies {
            if !names::LAT_ALL.contains(&r.name.as_str()) {
                return Err(Error::Config(format!(
                    "latency row `{}` is not a registry-listed lat/* name",
                    r.name
                )));
            }
            if r.count == 0 {
                return Err(Error::Config(format!(
                    "latency row `{}` has zero samples",
                    r.name
                )));
            }
            let nums = [r.p50, r.p95, r.p99, r.mean];
            if nums.iter().any(|n| !n.is_finite() || *n < 0.0) {
                return Err(Error::Config(format!(
                    "latency row `{}` has non-finite or negative values",
                    r.name
                )));
            }
            if r.p50 > r.p95 || r.p95 > r.p99 {
                return Err(Error::Config(format!(
                    "latency row `{}` percentiles are not ordered: p50={} p95={} p99={}",
                    r.name, r.p50, r.p95, r.p99
                )));
            }
        }
        Ok(())
    }

    /// Render the percentile rows as a fixed-width text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("serving-path latency percentiles\n");
        out.push_str(&format!(
            "  {:<24} {:>8} {:>10} {:>10} {:>10}\n",
            "phase", "count", "p50", "p95", "p99"
        ));
        for r in &self.latencies {
            out.push_str(&format!(
                "  {:<24} {:>8} {:>9.4}s {:>9.4}s {:>9.4}s\n",
                r.name, r.count, r.p50, r.p95, r.p99
            ));
        }
        out.push_str(&format!(
            "  flight recorder: {} slow, {} anomalous traces retained\n",
            self.slowest.len(),
            self.anomalies.len()
        ));
        out
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        obj([
            (
                "latencies",
                JsonValue::Array(self.latencies.iter().map(|r| r.to_json_value()).collect()),
            ),
            ("metrics", self.metrics.to_json_value()),
            (
                "slowest",
                JsonValue::Array(self.slowest.iter().map(|t| t.to_json_value()).collect()),
            ),
            (
                "anomalies",
                JsonValue::Array(self.anomalies.iter().map(|t| t.to_json_value()).collect()),
            ),
            ("notes", JsonValue::Object(self.notes.clone())),
        ])
        .to_string()
    }

    /// Parse back from [`ServingReport::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self> {
        let v = JsonValue::parse(text)?;
        let arr = |key: &str| -> Result<&[JsonValue]> {
            v.req(key)?
                .as_array()
                .ok_or_else(|| Error::Config(format!("`{key}` is not an array")))
        };
        Ok(ServingReport {
            latencies: arr("latencies")?
                .iter()
                .map(LatencyRow::from_json_value)
                .collect::<Result<_>>()?,
            metrics: MetricsSnapshot::from_json_value(v.req("metrics")?)?,
            slowest: arr("slowest")?
                .iter()
                .map(QueryTrace::from_json_value)
                .collect::<Result<_>>()?,
            anomalies: arr("anomalies")?
                .iter()
                .map(QueryTrace::from_json_value)
                .collect::<Result<_>>()?,
            notes: v
                .req("notes")?
                .as_object()
                .ok_or_else(|| Error::Config("`notes` is not an object".into()))?
                .clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(phase: &str, p: f64, m: f64) -> PhaseRow {
        PhaseRow {
            phase: phase.into(),
            predicted_secs: p,
            measured_secs: m,
        }
    }

    fn ij_report() -> RunReport {
        RunReport {
            algorithm: "indexed_join".into(),
            phases: vec![
                row("transfer", 0.5, 0.6),
                row("build", 0.2, 0.25),
                row("probe", 0.1, 0.12),
            ],
            predicted_total_secs: 0.8,
            measured_wall_secs: 1.0,
            extra_measured_secs: BTreeMap::new(),
        }
    }

    #[test]
    fn valid_report_passes_and_renders() {
        let r = ij_report();
        r.validate().unwrap();
        let table = r.render_table();
        assert!(table.contains("transfer"));
        assert!(table.contains("1.20x"));
    }

    #[test]
    fn missing_phase_rejected() {
        let mut r = ij_report();
        r.phases.retain(|p| p.phase != "build");
        assert!(r.validate().is_err());
        let mut dup = ij_report();
        dup.phases.push(row("build", 0.1, 0.1));
        assert!(dup.validate().is_err());
    }

    #[test]
    fn bad_numbers_rejected() {
        let mut r = ij_report();
        r.phases[0].measured_secs = f64::NAN;
        assert!(r.validate().is_err());
        let mut r = ij_report();
        r.phases[0].predicted_secs = -1.0;
        assert!(r.validate().is_err());
        assert!(RunReport {
            algorithm: "bogus".into(),
            ..ij_report()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn obs_report_round_trips() {
        let report = ObsReport {
            runs: vec![ij_report()],
            metrics: MetricsSnapshot::default(),
            notes: BTreeMap::new(),
        };
        report.validate().unwrap();
        let parsed = ObsReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert!(ObsReport::default().validate().is_err());
    }

    use crate::metrics::MetricsRegistry;
    use crate::trace::{TraceId, TraceOutcome};

    fn serving_fixture() -> ServingReport {
        let reg = MetricsRegistry::new();
        for v in [0.001, 0.004, 0.009, 0.3] {
            reg.record_latency(names::LAT_EXEC, v);
            reg.record_latency(names::LAT_QUEUE_WAIT, v / 2.0);
        }
        let rec = FlightRecorder::new(2, 4);
        rec.record(QueryTrace {
            trace: TraceId::from_raw(7),
            parent: None,
            group: "service".into(),
            detail: "SELECT * FROM t".into(),
            outcome: TraceOutcome::Ok,
            total_secs: 0.3,
            phases: vec![("exec".into(), 0.29)],
            children: Vec::new(),
        });
        rec.record(QueryTrace {
            trace: TraceId::from_raw(8),
            parent: None,
            group: "fed".into(),
            detail: "SELECT * FROM t".into(),
            outcome: TraceOutcome::Error,
            total_secs: 0.01,
            phases: Vec::new(),
            children: Vec::new(),
        });
        ServingReport::build(reg.snapshot(), &rec)
    }

    #[test]
    fn serving_report_builds_rows_in_registry_order() {
        let r = serving_fixture();
        r.validate().unwrap();
        assert_eq!(
            r.latencies
                .iter()
                .map(|l| l.name.as_str())
                .collect::<Vec<_>>(),
            vec![names::LAT_QUEUE_WAIT, names::LAT_EXEC],
            "rows follow LAT_ALL order and skip unsampled histograms"
        );
        let exec = r.latency(names::LAT_EXEC).unwrap();
        assert_eq!(exec.count, 4);
        assert!(exec.p50 <= exec.p95 && exec.p95 <= exec.p99);
        assert_eq!(r.slowest.len(), 1);
        assert_eq!(r.anomalies.len(), 1);
        let table = r.render_table();
        assert!(table.contains(names::LAT_EXEC));
        assert!(table.contains("1 slow, 1 anomalous"));
    }

    #[test]
    fn serving_report_round_trips_json() {
        let r = serving_fixture();
        let parsed = ServingReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        parsed.validate().unwrap();
    }

    #[test]
    fn serving_report_validation_rejects_malformed_rows() {
        let mut r = serving_fixture();
        r.latencies[0].p95 = r.latencies[0].p99 + 1.0;
        assert!(r.validate().is_err());
        let mut r = serving_fixture();
        r.latencies[0].name = "lat/bogus_secs".into();
        assert!(r.validate().is_err());
        let mut r = serving_fixture();
        r.latencies[0].count = 0;
        assert!(r.validate().is_err());
        let mut r = serving_fixture();
        r.latencies[0].mean = f64::NAN;
        assert!(r.validate().is_err());
        // Empty report (no samples yet) is fine.
        ServingReport::default().validate().unwrap();
    }
}
