//! The canonical registry of event and span names.
//!
//! Replay-from-log (PR 2) and the predicted-vs-measured phase mapping
//! (`report.rs`) both match on *strings*: a typo'd inline literal at an
//! emit site doesn't fail — it silently produces events no replay or
//! report ever finds. Every runtime emit/span site therefore takes its
//! name from here (`orv-lint` rule L005 enforces it); tests and examples
//! are encouraged to do the same so assertions can't drift either.
//!
//! Span paths are `group/phase`: the group identifies a node's role
//! (`n3`, `s0`, `c2`, `bds1`) and the phase must be one of the
//! cost-model phase constants below for the §5 mapping to see it.

/// Event: the engine picked a query-execution strategy.
pub const QES_CHOICE: &str = "qes_choice";
/// Event: plan-level failover re-ran the join on the alternate QES.
pub const QES_FAILOVER: &str = "qes_failover";
/// Event: a seeded fault plan was armed (one per chaos run).
pub const FAULT_PLAN: &str = "fault_plan";
/// Event: the injector fired one fault (kind/site/draw payload).
pub const FAULT_INJECTED: &str = "fault_injected";
/// Event: a checksum boundary caught corrupted bytes.
pub const CORRUPTION_DETECTED: &str = "corruption_detected";
/// Event: a trace ID was minted for a newly submitted query.
pub const TRACE_BEGIN: &str = "trace_begin";
/// Event: a traced query resolved (outcome + total latency payload).
pub const TRACE_END: &str = "trace_end";
/// Event: the brownout controller changed state (from/to/tick/reason
/// payload) — the replayable transition log of a chaos run.
pub const BROWNOUT_TRANSITION: &str = "brownout_transition";

/// Histogram: time a query sat in the admission queue before a worker
/// claimed it.
pub const LAT_QUEUE_WAIT: &str = "lat/queue_wait_secs";
/// Histogram: time spent inside admission control (submit → queued).
pub const LAT_ADMISSION: &str = "lat/admission_secs";
/// Histogram: engine planning time per query.
pub const LAT_PLAN: &str = "lat/plan_secs";
/// Histogram: single-flight block time — how long a cache lookup waited
/// for a peer's in-flight build.
pub const LAT_CACHE_WAIT: &str = "lat/cache_wait_secs";
/// Histogram: worker execution time (claim → resolve).
pub const LAT_EXEC: &str = "lat/exec_secs";
/// Histogram: how long a federated flight had been outstanding when its
/// hedge was issued — the latency the hedge mechanism absorbed.
pub const LAT_HEDGE: &str = "lat/hedge_overhead_secs";
/// Histogram: federated merge/assembly time per query.
pub const LAT_MERGE: &str = "lat/merge_secs";
/// Histogram: end-to-end latency of root queries (no parent trace).
pub const LAT_TOTAL: &str = "lat/total_secs";

/// Every serving-path latency histogram, in report order.
pub const LAT_ALL: &[&str] = &[
    LAT_QUEUE_WAIT,
    LAT_ADMISSION,
    LAT_PLAN,
    LAT_CACHE_WAIT,
    LAT_EXEC,
    LAT_HEDGE,
    LAT_MERGE,
    LAT_TOTAL,
];

/// The one canonical bucket layout for every `lat/*` histogram
/// (~50µs … 10s, roughly ×3–4 per step). A single shared layout keeps
/// registry bounds-conflicts impossible and snapshots mergeable.
pub const LAT_BOUNDS: &[f64] = &[
    50e-6, 200e-6, 500e-6, 2e-3, 5e-3, 20e-3, 50e-3, 200e-3, 500e-3, 2.0, 10.0,
];

/// The `lat/<leaf>_secs` leaf of a latency histogram name — the phase
/// label used in [`QueryTrace`](crate::QueryTrace) attribution rows.
pub fn lat_phase(name: &str) -> &str {
    name.strip_prefix("lat/")
        .and_then(|s| s.strip_suffix("_secs"))
        .unwrap_or(name)
}

/// Counter: shared-cache lookups answered from the cache.
pub const CACHE_HITS: &str = "cache/hits";
/// Counter: shared-cache lookups that had to fetch/build.
pub const CACHE_MISSES: &str = "cache/misses";
/// Counter: shared-cache entries displaced to stay within capacity.
pub const CACHE_EVICTIONS: &str = "cache/evictions";
/// Counter: total shared-cache lookups (hits + misses must equal this).
pub const CACHE_LOOKUPS: &str = "cache/lookups";

/// Counter: queries handed to the service (admitted + rejected).
pub const SERVICE_SUBMITTED: &str = "service/submitted";
/// Counter: queries accepted past admission control.
pub const SERVICE_ADMITTED: &str = "service/admitted";
/// Counter: queries rejected with `Error::Overloaded` at the queue cap.
pub const SERVICE_REJECTED: &str = "service/rejected";
/// Counter: admitted queries that ran to a result (ok or error).
pub const SERVICE_COMPLETED: &str = "service/completed";
/// Counter: admitted queries that ended in `Cancelled`/`DeadlineExceeded`.
pub const SERVICE_CANCELLED: &str = "service/cancelled";
/// Counter: admitted queries shed before touching a worker (deadline
/// budget expired in the queue, or dropped by the brownout shedder).
pub const SERVICE_SHED: &str = "service/shed";

/// Counter: queries shed because their deadline budget expired while
/// still queued — they never reached a worker.
pub const OVERLOAD_SHED_EXPIRED: &str = "overload/shed_expired";
/// Counter: expensive-class queries rejected by the cost-aware shedder
/// while the service was under pressure.
pub const OVERLOAD_SHED_EXPENSIVE: &str = "overload/shed_expensive";
/// Counter: cheap-class queries admitted through the fast lane, ahead
/// of the FIFO.
pub const OVERLOAD_FAST_LANE: &str = "overload/fast_lane_admits";
/// Counter: brownout controller state transitions (any direction).
pub const OVERLOAD_TRANSITIONS: &str = "overload/brownout_transitions";
/// Counter: retry/hedge issues denied because the shard's retry budget
/// was exhausted (the query degrades to a partial result instead).
pub const OVERLOAD_RETRY_DENIED: &str = "overload/retries_denied";
/// Counter: retry/hedge issues granted by a retry budget draw.
pub const OVERLOAD_RETRY_GRANTED: &str = "overload/retries_granted";
/// Counter: overload rejections whose callers honored the
/// `retry_after` hint with a bounded backoff instead of re-issuing.
pub const OVERLOAD_BACKOFFS: &str = "overload/backoffs";
/// Gauge: current brownout state (0 = Normal, 1 = Brownout, 2 = Shed).
pub const OVERLOAD_STATE: &str = "overload/state";
/// Gauge: retry-budget tokens currently available (milli-tokens).
pub const OVERLOAD_RETRY_TOKENS: &str = "overload/retry_tokens";

/// Counter: sub-queries fanned out by the federated router.
pub const FED_SUBQUERIES: &str = "fed/subqueries";
/// Counter: hedge flights issued after the hedge delay expired.
pub const FED_HEDGES: &str = "fed/hedges";
/// Counter: hedge flights whose answer filled at least one chunk first.
pub const FED_HEDGE_WINS: &str = "fed/hedge_wins";
/// Counter: sub-queries re-routed to a replica after a shard error.
pub const FED_FAILOVERS: &str = "fed/failovers";
/// Counter: circuit-breaker trips (a shard went Open).
pub const FED_TRIPS: &str = "fed/breaker_trips";
/// Counter: shard-level sub-query failures observed by the router.
pub const FED_SHARD_ERRORS: &str = "fed/shard_errors";
/// Counter: federated queries that returned a `PartialResult`.
pub const FED_PARTIAL: &str = "fed/partial_results";
/// Counter: chunks reported missing across all partial results.
pub const FED_MISSING_CHUNKS: &str = "fed/missing_chunks";

/// Span: query planning inside the engine.
pub const ENGINE_PLAN: &str = "engine/plan";
/// Span: end-to-end plan execution inside the engine.
pub const ENGINE_EXEC: &str = "engine/exec";

/// Phase: storage→compute sub-table transfer (IJ cost-model term).
pub const PHASE_TRANSFER: &str = "transfer";
/// Phase: hash-table build.
pub const PHASE_BUILD: &str = "build";
/// Phase: hash-table probe.
pub const PHASE_PROBE: &str = "probe";
/// Phase: Grace Hash bucket write to scratch.
pub const PHASE_SCRATCH_WRITE: &str = "scratch_write";
/// Phase: Grace Hash bucket read back from scratch.
pub const PHASE_SCRATCH_READ: &str = "scratch_read";
/// Phase: storage-node chunk read.
pub const PHASE_READ: &str = "read";
/// Phase: storage-node bucket partitioning (GH senders).
pub const PHASE_PARTITION: &str = "partition";
/// Phase: interconnect send (GH senders).
pub const PHASE_SEND: &str = "send";
/// Phase: sub-table extraction on a storage node.
pub const PHASE_EXTRACT: &str = "extract";
/// Phase: aggregate CPU time (build + probe) in the GH cost model.
pub const PHASE_CPU: &str = "cpu";
/// Phase: one shard serving a federated sub-query.
pub const PHASE_SUBQUERY: &str = "subquery";

/// `bds{node}/read` — BDS chunk read on a storage node.
pub fn span_bds_read(node: u32) -> String {
    format!("bds{node}/{PHASE_READ}")
}

/// `bds{node}/extract` — sub-table extraction on a storage node.
pub fn span_bds_extract(node: u32) -> String {
    format!("bds{node}/{PHASE_EXTRACT}")
}

/// `n{idx}/{phase}` — an Indexed-Join compute node phase.
pub fn span_ij(node_idx: usize, phase: &str) -> String {
    format!("n{node_idx}/{phase}")
}

/// `s{idx}/{phase}` — a Grace Hash storage-side sender phase.
pub fn span_gh_sender(node_idx: usize, phase: &str) -> String {
    format!("s{node_idx}/{phase}")
}

/// `c{idx}` — the span group tag of a Grace Hash consumer node; join
/// phases under it are `{tag}/{phase}` via [`span_tagged`].
pub fn gh_consumer_tag(node_idx: usize) -> String {
    format!("c{node_idx}")
}

/// `{tag}/{phase}` — a phase under an existing group tag.
pub fn span_tagged(tag: &str, phase: &str) -> String {
    format!("{tag}/{phase}")
}

/// `fed{shard}/{phase}` — a federation shard-side phase.
pub fn span_fed_shard(shard: usize, phase: &str) -> String {
    format!("fed{shard}/{phase}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose_group_and_phase() {
        assert_eq!(span_bds_read(3), "bds3/read");
        assert_eq!(span_bds_extract(0), "bds0/extract");
        assert_eq!(span_ij(7, PHASE_TRANSFER), "n7/transfer");
        assert_eq!(span_gh_sender(2, PHASE_PARTITION), "s2/partition");
        assert_eq!(
            span_tagged(&gh_consumer_tag(4), PHASE_SCRATCH_READ),
            "c4/scratch_read"
        );
        assert_eq!(span_fed_shard(1, PHASE_SUBQUERY), "fed1/subquery");
    }

    #[test]
    fn fed_counters_live_under_one_prefix() {
        for c in [
            FED_SUBQUERIES,
            FED_HEDGES,
            FED_HEDGE_WINS,
            FED_FAILOVERS,
            FED_TRIPS,
            FED_SHARD_ERRORS,
            FED_PARTIAL,
            FED_MISSING_CHUNKS,
        ] {
            assert!(c.starts_with("fed/"), "{c} escaped the fed/ namespace");
        }
    }

    #[test]
    fn overload_names_live_under_one_prefix() {
        for c in [
            OVERLOAD_SHED_EXPIRED,
            OVERLOAD_SHED_EXPENSIVE,
            OVERLOAD_FAST_LANE,
            OVERLOAD_TRANSITIONS,
            OVERLOAD_RETRY_DENIED,
            OVERLOAD_RETRY_GRANTED,
            OVERLOAD_BACKOFFS,
            OVERLOAD_STATE,
            OVERLOAD_RETRY_TOKENS,
        ] {
            assert!(
                c.starts_with("overload/"),
                "{c} escaped the overload/ namespace"
            );
        }
        assert!(SERVICE_SHED.starts_with("service/"));
    }

    #[test]
    fn lat_histograms_live_under_one_prefix_with_shared_bounds() {
        for name in LAT_ALL {
            assert!(
                name.starts_with("lat/"),
                "{name} escaped the lat/ namespace"
            );
            assert!(name.ends_with("_secs"), "{name} must carry the _secs unit");
            assert_ne!(lat_phase(name), *name, "{name} has no derivable phase leaf");
        }
        assert_eq!(lat_phase(LAT_QUEUE_WAIT), "queue_wait");
        assert_eq!(lat_phase(LAT_TOTAL), "total");
        // Shared bounds: finite, strictly increasing, covering µs to 10s.
        assert!(LAT_BOUNDS.windows(2).all(|w| w[0] < w[1]));
        assert!(LAT_BOUNDS.iter().all(|b| b.is_finite() && *b > 0.0));
        assert!(*LAT_BOUNDS.first().unwrap() <= 1e-4);
        assert!(*LAT_BOUNDS.last().unwrap() >= 10.0);
    }

    #[test]
    fn phases_match_the_cost_model_registry() {
        // The report's required-phase lists must be expressible from the
        // constants here, so the §5 mapping and the emit sites cannot
        // drift apart.
        for p in crate::IJ_PHASES {
            assert!(
                [PHASE_TRANSFER, PHASE_BUILD, PHASE_PROBE].contains(p),
                "IJ phase {p} missing from names registry"
            );
        }
        for p in crate::GH_PHASES {
            assert!(
                [
                    PHASE_TRANSFER,
                    PHASE_SCRATCH_WRITE,
                    PHASE_SCRATCH_READ,
                    PHASE_CPU
                ]
                .contains(p),
                "GH phase {p} missing from names registry"
            );
        }
    }
}
