//! Serving-path tracing: propagated query IDs, per-query phase
//! attribution and the slow-query flight recorder.
//!
//! A [`TraceId`] is minted once per client query (at `QueryService::submit`
//! or the federated router) and carried through admission, the worker
//! pool, plan/exec and every federated sub-query, so the events and spans
//! of one query — across all shards it touched — stitch into a single
//! tree keyed by the ID. When a query resolves, the service folds its
//! phase attributions into a [`QueryTrace`] and hands it to the
//! [`FlightRecorder`], which retains the K slowest plus every
//! failed/partial/cancelled query for post-hoc debugging.

use crate::json::{obj, JsonValue};
use orv_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-wide trace-ID source; IDs are unique across every service in
/// the process, which is what lets federated sub-queries reference their
/// root unambiguously.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// The identity of one client query, propagated end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Mint a fresh process-unique ID.
    pub fn mint() -> Self {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Rebuild from a raw value (e.g. parsed back out of an event log).
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }

    /// The raw numeric value, as it appears in event payloads.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<TraceId> for JsonValue {
    fn from(id: TraceId) -> Self {
        JsonValue::Number(id.0 as f64)
    }
}

/// A wall-clock stopwatch for serving-path phase attribution.
///
/// Lives here because `crates/obs` is the one sanctioned home for ambient
/// clock reads (lint rule L006): services measure queue-wait/exec/merge
/// times through this instead of touching `Instant` directly.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// How one traced query ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Resolved with a complete result.
    Ok,
    /// Resolved with a `PartialResult` (federated degradation).
    Partial,
    /// Resolved with a non-cancellation error.
    Error,
    /// Resolved as `Cancelled`/`DeadlineExceeded`.
    Cancelled,
    /// Bounced at admission control (`Error::Overloaded`).
    Rejected,
    /// Admitted, but shed before touching a worker: the deadline budget
    /// expired in the queue, or the brownout shedder dropped it.
    Shed,
}

impl TraceOutcome {
    /// The stable string form used in JSON dumps and `trace_end` events.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Partial => "partial",
            TraceOutcome::Error => "error",
            TraceOutcome::Cancelled => "cancelled",
            TraceOutcome::Rejected => "rejected",
            TraceOutcome::Shed => "shed",
        }
    }

    /// Parse the string form back.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "ok" => Ok(TraceOutcome::Ok),
            "partial" => Ok(TraceOutcome::Partial),
            "error" => Ok(TraceOutcome::Error),
            "cancelled" => Ok(TraceOutcome::Cancelled),
            "rejected" => Ok(TraceOutcome::Rejected),
            "shed" => Ok(TraceOutcome::Shed),
            other => Err(Error::Config(format!("unknown trace outcome `{other}`"))),
        }
    }

    /// Anything other than a clean completion belongs in the anomaly ring.
    pub fn is_anomaly(self) -> bool {
        !matches!(self, TraceOutcome::Ok)
    }
}

/// The completed trace of one query: identity, phase attribution and the
/// sub-query traces it fanned out (one child per shard flight).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryTrace {
    /// This query's trace ID.
    pub trace: TraceId,
    /// The root query's trace ID, when this is a federated sub-query.
    pub parent: Option<TraceId>,
    /// Where the query ran (`service`, `fed`, `fed3`, …).
    pub group: String,
    /// What the query was (SQL text or a scan description).
    pub detail: String,
    /// How it ended.
    pub outcome: TraceOutcome,
    /// End-to-end latency, submit to resolve, seconds.
    pub total_secs: f64,
    /// `(phase, seconds)` attribution rows, in serving order. Phases are
    /// the `lat/*` leaf names (`queue_wait`, `exec`, `merge`, …).
    pub phases: Vec<(String, f64)>,
    /// Sub-query traces, one per federated flight that resolved.
    pub children: Vec<QueryTrace>,
}

impl QueryTrace {
    /// Sum of the phase attributions (children not included).
    pub fn phase_total_secs(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Seconds attributed to `phase`, or zero.
    pub fn phase_secs(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .filter(|(p, _)| p == phase)
            .map(|(_, s)| s)
            .sum()
    }

    /// This trace plus all descendants, depth-first.
    pub fn tree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(QueryTrace::tree_size)
            .sum::<usize>()
    }

    /// Serialize as a JSON value (recursively, children included).
    pub fn to_json_value(&self) -> JsonValue {
        obj([
            ("trace", self.trace.into()),
            (
                "parent",
                match self.parent {
                    Some(p) => p.into(),
                    None => JsonValue::Null,
                },
            ),
            ("group", self.group.as_str().into()),
            ("detail", self.detail.as_str().into()),
            ("outcome", self.outcome.as_str().into()),
            ("total_secs", self.total_secs.into()),
            (
                "phases",
                JsonValue::Array(
                    self.phases
                        .iter()
                        .map(|(p, s)| obj([("phase", p.as_str().into()), ("secs", (*s).into())]))
                        .collect(),
                ),
            ),
            (
                "children",
                JsonValue::Array(self.children.iter().map(|c| c.to_json_value()).collect()),
            ),
        ])
    }

    /// Parse back from [`QueryTrace::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        let parent = match v.req("parent")? {
            JsonValue::Null => None,
            p => {
                Some(TraceId::from_raw(p.as_u64().ok_or_else(|| {
                    Error::Config("`parent` is not a u64".into())
                })?))
            }
        };
        let phases = v
            .req("phases")?
            .as_array()
            .ok_or_else(|| Error::Config("`phases` is not an array".into()))?
            .iter()
            .map(|p| Ok((p.req_str("phase")?.to_string(), p.req_f64("secs")?)))
            .collect::<Result<_>>()?;
        let children = v
            .req("children")?
            .as_array()
            .ok_or_else(|| Error::Config("`children` is not an array".into()))?
            .iter()
            .map(QueryTrace::from_json_value)
            .collect::<Result<_>>()?;
        Ok(QueryTrace {
            trace: TraceId::from_raw(v.req_u64("trace")?),
            parent,
            group: v.req_str("group")?.to_string(),
            detail: v.req_str("detail")?.to_string(),
            outcome: TraceOutcome::parse(v.req_str("outcome")?)?,
            total_secs: v.req_f64("total_secs")?,
            phases,
            children,
        })
    }

    /// Render the span tree as an indented text block (for README dumps
    /// and debugging).
    pub fn render_tree(&self) -> String {
        fn walk(t: &QueryTrace, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            out.push_str(&format!(
                "{pad}{} [{}] {} {:.4}s",
                t.trace,
                t.group,
                t.outcome.as_str(),
                t.total_secs
            ));
            for (p, s) in &t.phases {
                out.push_str(&format!(" {p}={s:.4}s"));
            }
            out.push('\n');
            for c in &t.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

struct RecorderState {
    /// The K slowest cleanly-completed traces, slowest first.
    slowest: Vec<QueryTrace>,
    /// Every anomalous trace (failed/partial/cancelled/rejected), oldest
    /// evicted first once the ring is full.
    anomalies: VecDeque<QueryTrace>,
    recorded: u64,
}

/// A bounded ring of completed query traces: the K slowest plus all
/// anomalies, dumpable as JSON lines for post-hoc debugging.
pub struct FlightRecorder {
    keep_slowest: usize,
    anomaly_cap: usize,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// Retain the `keep_slowest` slowest clean queries and up to
    /// `anomaly_cap` most-recent anomalous ones.
    pub fn new(keep_slowest: usize, anomaly_cap: usize) -> Self {
        FlightRecorder {
            keep_slowest,
            anomaly_cap,
            state: Mutex::new(RecorderState {
                slowest: Vec::new(),
                anomalies: VecDeque::new(),
                recorded: 0,
            }),
        }
    }

    /// Record one completed trace.
    pub fn record(&self, trace: QueryTrace) {
        let mut st = self.state.lock();
        st.recorded += 1;
        if trace.outcome.is_anomaly() {
            if st.anomalies.len() == self.anomaly_cap {
                st.anomalies.pop_front();
            }
            if self.anomaly_cap > 0 {
                st.anomalies.push_back(trace);
            }
        } else {
            // Insertion keeps the pool sorted slowest-first; ties keep the
            // earlier arrival, so recording order stays deterministic.
            let at = st
                .slowest
                .partition_point(|t| t.total_secs >= trace.total_secs);
            st.slowest.insert(at, trace);
            st.slowest.truncate(self.keep_slowest);
        }
    }

    /// Total traces ever offered to the recorder (retained or not).
    pub fn recorded(&self) -> u64 {
        self.state.lock().recorded
    }

    /// The retained slow queries, slowest first.
    pub fn slowest(&self) -> Vec<QueryTrace> {
        self.state.lock().slowest.clone()
    }

    /// The retained anomalies, oldest first.
    pub fn anomalies(&self) -> Vec<QueryTrace> {
        self.state.lock().anomalies.iter().cloned().collect()
    }

    /// Every retained trace — slowest pool then anomalies — as one JSON
    /// object per line.
    pub fn to_json_lines(&self) -> String {
        let st = self.state.lock();
        st.slowest
            .iter()
            .chain(st.anomalies.iter())
            .map(|t| t.to_json_value().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse traces back from [`FlightRecorder::to_json_lines`] output.
    pub fn from_json_lines(text: &str) -> Result<Vec<QueryTrace>> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| QueryTrace::from_json_value(&JsonValue::parse(l)?))
            .collect()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FlightRecorder")
            .field("slowest", &st.slowest.len())
            .field("anomalies", &st.anomalies.len())
            .field("recorded", &st.recorded)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(raw: u64, outcome: TraceOutcome, total: f64) -> QueryTrace {
        QueryTrace {
            trace: TraceId::from_raw(raw),
            parent: None,
            group: "service".into(),
            detail: "SELECT 1".into(),
            outcome,
            total_secs: total,
            phases: vec![
                ("queue_wait".into(), total / 4.0),
                ("exec".into(), total / 2.0),
            ],
            children: Vec::new(),
        }
    }

    #[test]
    fn minted_ids_are_unique_and_increasing() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert!(b.raw() > a.raw());
        assert_eq!(TraceId::from_raw(a.raw()), a);
        assert_eq!(format!("{a}"), format!("t{}", a.raw()));
    }

    #[test]
    fn trace_json_round_trips_with_children() {
        let mut root = trace(10, TraceOutcome::Partial, 1.0);
        root.group = "fed".into();
        let mut child = trace(11, TraceOutcome::Ok, 0.4);
        child.parent = Some(root.trace);
        child.group = "fed2".into();
        root.children.push(child);
        let parsed = QueryTrace::from_json_value(&root.to_json_value()).unwrap();
        assert_eq!(parsed, root);
        assert_eq!(parsed.tree_size(), 2);
        assert_eq!(parsed.children[0].parent, Some(root.trace));
        let tree = root.render_tree();
        assert!(tree.contains("[fed]"));
        assert!(tree.contains("  t11 [fed2]"));
    }

    #[test]
    fn phase_accessors_sum() {
        let t = trace(1, TraceOutcome::Ok, 1.0);
        assert!((t.phase_secs("exec") - 0.5).abs() < 1e-12);
        assert_eq!(t.phase_secs("nope"), 0.0);
        assert!((t.phase_total_secs() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recorder_keeps_k_slowest() {
        let rec = FlightRecorder::new(2, 8);
        for (id, total) in [(1, 0.1), (2, 0.5), (3, 0.3), (4, 0.2)] {
            rec.record(trace(id, TraceOutcome::Ok, total));
        }
        let slow = rec.slowest();
        assert_eq!(
            slow.iter().map(|t| t.trace.raw()).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(rec.recorded(), 4);
        assert!(rec.anomalies().is_empty());
    }

    #[test]
    fn recorder_retains_all_anomalies_up_to_cap() {
        let rec = FlightRecorder::new(1, 2);
        rec.record(trace(1, TraceOutcome::Error, 0.01));
        rec.record(trace(2, TraceOutcome::Cancelled, 0.02));
        rec.record(trace(3, TraceOutcome::Partial, 0.03));
        // Ring of 2: oldest anomaly evicted.
        assert_eq!(
            rec.anomalies()
                .iter()
                .map(|t| t.trace.raw())
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        rec.record(trace(4, TraceOutcome::Ok, 9.0));
        assert_eq!(rec.slowest().len(), 1);
        assert_eq!(rec.recorded(), 4);
    }

    #[test]
    fn json_lines_round_trip() {
        let rec = FlightRecorder::new(4, 4);
        rec.record(trace(1, TraceOutcome::Ok, 0.5));
        rec.record(trace(2, TraceOutcome::Rejected, 0.0));
        let lines = rec.to_json_lines();
        let parsed = FlightRecorder::from_json_lines(&lines).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].outcome, TraceOutcome::Ok);
        assert_eq!(parsed[1].outcome, TraceOutcome::Rejected);
        assert!(FlightRecorder::from_json_lines("{bad").is_err());
    }

    #[test]
    fn outcome_strings_round_trip() {
        for o in [
            TraceOutcome::Ok,
            TraceOutcome::Partial,
            TraceOutcome::Error,
            TraceOutcome::Cancelled,
            TraceOutcome::Rejected,
            TraceOutcome::Shed,
        ] {
            assert_eq!(TraceOutcome::parse(o.as_str()).unwrap(), o);
        }
        assert!(TraceOutcome::parse("??").is_err());
        assert!(!TraceOutcome::Ok.is_anomaly());
        assert!(TraceOutcome::Rejected.is_anomaly());
        assert!(TraceOutcome::Shed.is_anomaly());
    }
}
