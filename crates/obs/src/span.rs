//! Hierarchical wall-clock span timers.
//!
//! A [`SpanTimer`] measures one phase of work; dropping it records the
//! span. Paths are `/`-separated — by convention the first segment names
//! the executing node (`n0`, `s1`, `c2`) and the last segment names the
//! phase (`transfer`, `build`, `probe`, …), which is what the report layer
//! aggregates on. Child spans nest by extending the parent path.
//!
//! A disabled [`Spans`] handle (the default in all runtime configs) makes
//! every operation a single branch on `None` — no allocation, no clock
//! read — which is how instrumentation stays off the microbench profile.

use crate::json::JsonValue;
use orv_types::Result;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Start-order sequence number (children have higher seq than their
    /// parent, earlier siblings lower than later ones).
    pub seq: u64,
    /// `/`-separated hierarchical path.
    pub path: String,
    /// Start offset from the collector's epoch, seconds.
    pub start_secs: f64,
    /// Duration, seconds.
    pub dur_secs: f64,
}

impl SpanRecord {
    /// The last path segment — the phase name.
    pub fn leaf(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// The first path segment — the node/group name.
    pub fn group(&self) -> &str {
        self.path.split('/').next().unwrap_or(&self.path)
    }

    /// Serialize as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        crate::json::obj([
            ("seq", self.seq.into()),
            ("path", self.path.as_str().into()),
            ("start_secs", self.start_secs.into()),
            ("dur_secs", self.dur_secs.into()),
        ])
    }

    /// Parse back from [`SpanRecord::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        Ok(SpanRecord {
            seq: v.req_u64("seq")?,
            path: v.req_str("path")?.to_string(),
            start_secs: v.req_f64("start_secs")?,
            dur_secs: v.req_f64("dur_secs")?,
        })
    }
}

struct SpanInner {
    epoch: Instant,
    seq: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

/// A span collector; clone it into every thread that should report spans.
#[derive(Clone, Default)]
pub struct Spans {
    inner: Option<Arc<SpanInner>>,
}

impl Spans {
    /// An enabled collector.
    pub fn enabled() -> Self {
        Spans {
            inner: Some(Arc::new(SpanInner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disabled collector: every operation is a no-op.
    pub fn disabled() -> Self {
        Spans { inner: None }
    }

    /// Whether spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a span at `path`. Records when the returned timer drops.
    pub fn span(&self, path: &str) -> SpanTimer {
        self.start(|| path.to_string())
    }

    /// Start a span whose path is only formatted if collection is enabled
    /// — use for `format!`-built paths on warm paths.
    pub fn span_with(&self, path: impl FnOnce() -> String) -> SpanTimer {
        self.start(path)
    }

    fn start(&self, path: impl FnOnce() -> String) -> SpanTimer {
        SpanTimer {
            state: self.inner.as_ref().map(|inner| TimerState {
                inner: Arc::clone(inner),
                path: path(),
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
            }),
        }
    }

    /// All completed spans, in start order.
    pub fn records(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = inner.records.lock().clone();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Total seconds per leaf (phase) name, summed over all groups.
    pub fn total_secs_by_leaf(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for r in self.records() {
            *out.entry(r.leaf().to_string()).or_insert(0.0) += r.dur_secs;
        }
        out
    }

    /// Per-group totals per leaf: `group → leaf → seconds`.
    pub fn group_leaf_totals(&self) -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        for r in self.records() {
            *out.entry(r.group().to_string())
                .or_default()
                .entry(r.leaf().to_string())
                .or_insert(0.0) += r.dur_secs;
        }
        out
    }

    /// For each leaf (phase), the *maximum* per-group total — the
    /// critical-path approximation of parallel elapsed time, matching how
    /// the Section 5 cost models charge each phase once at `1/n` speed
    /// rather than summing work across nodes.
    pub fn max_group_secs_by_leaf(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for totals in self.group_leaf_totals().values() {
            for (leaf, secs) in totals {
                let e = out.entry(leaf.clone()).or_insert(0.0);
                *e = e.max(*secs);
            }
        }
        out
    }
}

impl std::fmt::Debug for Spans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Spans(disabled)"),
            Some(i) => write!(f, "Spans({} records)", i.records.lock().len()),
        }
    }
}

struct TimerState {
    inner: Arc<SpanInner>,
    path: String,
    seq: u64,
    start: Instant,
}

/// Live timer for one span; records on drop. No-op when spans are
/// disabled.
pub struct SpanTimer {
    state: Option<TimerState>,
}

impl SpanTimer {
    /// A timer that records nothing (for plumbing through optional paths).
    pub fn noop() -> Self {
        SpanTimer { state: None }
    }

    /// Start a child span `name` under this span's path.
    pub fn child(&self, name: &str) -> SpanTimer {
        SpanTimer {
            state: self.state.as_ref().map(|s| TimerState {
                inner: Arc::clone(&s.inner),
                path: format!("{}/{name}", s.path),
                seq: s.inner.seq.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
            }),
        }
    }

    /// Finish now instead of at scope end.
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let dur_secs = s.start.elapsed().as_secs_f64();
            let start_secs = s.start.duration_since(s.inner.epoch).as_secs_f64();
            s.inner.records.lock().push(SpanRecord {
                seq: s.seq,
                path: s.path,
                start_secs,
                dur_secs,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let s = Spans::disabled();
        assert!(!s.is_enabled());
        {
            let t = s.span("a");
            let _c = t.child("b");
        }
        assert!(s.records().is_empty());
    }

    #[test]
    fn disabled_span_with_never_formats_the_path() {
        // The disabled-overhead guarantee: a span on a warm path costs one
        // branch, not a `format!` allocation.
        let s = Spans::disabled();
        let _t = s.span_with(|| panic!("path closure must not run when disabled"));
    }

    #[test]
    fn paths_nest_and_order_by_start() {
        let s = Spans::enabled();
        {
            let t = s.span("n0/transfer");
            let c = t.child("decode");
            c.finish();
            t.child("route").finish();
        }
        s.span("n1/build").finish();
        let recs = s.records();
        let paths: Vec<_> = recs.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "n0/transfer",
                "n0/transfer/decode",
                "n0/transfer/route",
                "n1/build"
            ]
        );
        assert_eq!(recs[1].leaf(), "decode");
        assert_eq!(recs[1].group(), "n0");
    }

    #[test]
    fn group_and_leaf_aggregation() {
        let s = Spans::enabled();
        s.span("n0/build").finish();
        s.span("n0/probe").finish();
        s.span("n1/build").finish();
        let groups = s.group_leaf_totals();
        assert_eq!(groups.len(), 2);
        assert!(groups["n0"].contains_key("build"));
        assert!(groups["n0"].contains_key("probe"));
        let by_leaf = s.max_group_secs_by_leaf();
        assert!(by_leaf.contains_key("build"));
        assert!(by_leaf["build"] >= 0.0);
    }
}
