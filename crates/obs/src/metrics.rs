//! The metrics registry: named atomic counters, gauges and histograms.
//!
//! Instruments are cheap `Arc`-backed handles — a service looks its
//! instrument up once (get-or-create) and then increments a lock-free
//! atomic on the hot path. Snapshots are plain serde values with uniform
//! merge semantics: counters and histogram buckets *add*, gauges *max* —
//! the same rules [`RunStats::merge`](https://docs.rs) applies per node,
//! so per-node registries can be folded into a cluster-wide view.

use crate::json::JsonValue;
use orv_types::{Error, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Default, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value instrument (e.g. workers alive, queue depth).
///
/// Merging two snapshots takes the max — the convention that makes a
/// per-node "peak" meaningful cluster-wide.
#[derive(Clone, Default, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, caller-supplied bucket bounds.
///
/// A sample `v` lands in the first bucket with `v <= bound`; samples above
/// every bound land in the implicit overflow bucket, so `buckets.len() ==
/// bounds.len() + 1` and no sample is ever dropped.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    buckets: Arc<Vec<AtomicU64>>,
    count: Arc<AtomicU64>,
    /// Sum of samples, stored as `f64` bits for lock-free accumulation.
    sum_bits: Arc<AtomicU64>,
}

impl Histogram {
    /// Build a histogram; bounds must be finite and strictly increasing.
    pub fn new(bounds: &[f64]) -> Result<Self> {
        validate_bounds(bounds)?;
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Ok(Histogram {
            bounds: Arc::new(bounds.to_vec()),
            buckets: Arc::new(buckets),
            count: Arc::new(AtomicU64::new(0)),
            sum_bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        })
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Atomic f64 add via CAS on the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples recorded.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

fn validate_bounds(bounds: &[f64]) -> Result<()> {
    if bounds.is_empty() {
        return Err(Error::Config("histogram needs at least one bound".into()));
    }
    if bounds.iter().any(|b| !b.is_finite()) {
        return Err(Error::Config(format!(
            "histogram bounds must be finite, got {bounds:?}"
        )));
    }
    for w in bounds.windows(2) {
        if w[0] >= w[1] {
            return Err(Error::Config(format!(
                "histogram bounds must be strictly increasing, got {bounds:?}"
            )));
        }
    }
    Ok(())
}

/// Frozen state of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `bounds.len() + 1` entries, overflow last.
    pub buckets: Vec<u64>,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Interpolated quantile estimate, `q` in `[0, 1]` (clamped).
    ///
    /// Samples are assumed uniform within their bucket, so the estimate
    /// interpolates linearly between the bucket's edges (the first bucket
    /// starts at 0 — latencies are non-negative). Samples in the overflow
    /// bucket have no upper edge and clamp to the last bound. Returns
    /// `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || self.bounds.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                below += n;
                continue;
            }
            let upto = below + n;
            if (upto as f64) >= target {
                let last = self.bounds.len() - 1;
                if i > last {
                    // Overflow bucket: unbounded above, clamp to the edge.
                    return Some(self.bounds[last]);
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((target - below as f64) / n as f64).clamp(0.0, 1.0);
                return Some(lo + frac * (hi - lo));
            }
            below = upto;
        }
        // Unreachable when buckets sum to count; stay total regardless.
        Some(*self.bounds.last().unwrap_or(&0.0))
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean of the recorded samples (exact — from the tracked sum).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    fn to_json_value(&self) -> JsonValue {
        crate::json::obj([
            (
                "bounds",
                JsonValue::Array(self.bounds.iter().map(|b| (*b).into()).collect()),
            ),
            (
                "buckets",
                JsonValue::Array(self.buckets.iter().map(|b| (*b).into()).collect()),
            ),
            ("count", self.count.into()),
            ("sum", self.sum.into()),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<Self> {
        let nums = |key: &str| -> Result<Vec<f64>> {
            v.req(key)?
                .as_array()
                .ok_or_else(|| Error::Config(format!("`{key}` is not an array")))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| Error::Config(format!("`{key}` holds a non-number")))
                })
                .collect()
        };
        Ok(HistogramSnapshot {
            bounds: nums("bounds")?,
            buckets: nums("buckets")?.into_iter().map(|b| b as u64).collect(),
            count: v.req_u64("count")?,
            sum: v.req_f64("sum")?,
        })
    }
}

/// Frozen, serializable state of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge another snapshot into this one: counters add, gauges max,
    /// histograms add bucketwise. Histograms with the same name must have
    /// identical bounds.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<()> {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    if mine.bounds != h.bounds {
                        return Err(Error::Config(format!(
                            "histogram `{k}` bounds differ: {:?} vs {:?}",
                            mine.bounds, h.bounds
                        )));
                    }
                    for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
            }
        }
        Ok(())
    }

    /// Serialize as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        crate::json::obj([
            (
                "counters",
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), (*v).into()))
                        .collect(),
                ),
            ),
            (
                "gauges",
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), (*v).into()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse back from [`MetricsSnapshot::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        let u64_map = |key: &str| -> Result<BTreeMap<String, u64>> {
            v.req(key)?
                .as_object()
                .ok_or_else(|| Error::Config(format!("`{key}` is not an object")))?
                .iter()
                .map(|(k, x)| {
                    x.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| Error::Config(format!("`{key}.{k}` is not a u64")))
                })
                .collect()
        };
        let histograms = v
            .req("histograms")?
            .as_object()
            .ok_or_else(|| Error::Config("`histograms` is not an object".into()))?
            .iter()
            .map(|(k, h)| HistogramSnapshot::from_json_value(h).map(|h| (k.clone(), h)))
            .collect::<Result<_>>()?;
        Ok(MetricsSnapshot {
            counters: u64_map("counters")?,
            gauges: u64_map("gauges")?,
            histograms,
        })
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

/// A shared registry of named instruments.
///
/// Handles returned by the `counter`/`gauge`/`histogram` accessors stay
/// live after the registry is snapshotted; lookups take a read lock, so
/// callers on hot paths should look up once and increment the handle.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name` with the given bucket bounds.
    /// Fails if the name exists with different bounds, or the bounds are
    /// not finite and strictly increasing.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Result<Histogram> {
        if let Some(h) = self.inner.histograms.read().get(name) {
            if h.bounds() != bounds {
                return Err(Error::Config(format!(
                    "histogram `{name}` already registered with bounds {:?}",
                    h.bounds()
                )));
            }
            return Ok(h.clone());
        }
        let mut map = self.inner.histograms.write();
        if let Some(h) = map.get(name) {
            if h.bounds() != bounds {
                return Err(Error::Config(format!(
                    "histogram `{name}` already registered with bounds {:?}",
                    h.bounds()
                )));
            }
            return Ok(h.clone());
        }
        let h = Histogram::new(bounds)?;
        map.insert(name.to_string(), h.clone());
        Ok(h)
    }

    /// Record one serving-path latency sample into histogram `name`,
    /// creating it with the canonical [`names::LAT_BOUNDS`](crate::names::LAT_BOUNDS)
    /// layout on first use. All `lat/*` histograms share that layout, so
    /// for registry-listed names the bounds conflict arm is unreachable;
    /// a conflicting ad-hoc name drops the sample rather than panicking
    /// on the serving path.
    pub fn record_latency(&self, name: &str, secs: f64) {
        if let Ok(h) = self.histogram(name, crate::names::LAT_BOUNDS) {
            h.record(secs);
        }
    }

    /// Freeze the current state of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds().to_vec(),
                            buckets: h.bucket_counts(),
                            count: h.count(),
                            sum: h.sum(),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.read().len())
            .field("gauges", &self.inner.gauges.read().len())
            .field("histograms", &self.inner.histograms.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_is_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(r.counter("x").get(), 4);
        assert_eq!(r.snapshot().counters["x"], 4);
    }

    #[test]
    fn gauge_set_and_raise() {
        let g = Gauge::new();
        g.set(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.raise(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_bounds_validated() {
        assert!(Histogram::new(&[]).is_err());
        assert!(Histogram::new(&[1.0, 1.0]).is_err());
        assert!(Histogram::new(&[2.0, 1.0]).is_err());
        assert!(Histogram::new(&[1.0, f64::INFINITY]).is_err());
        assert!(Histogram::new(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn histogram_bound_mismatch_rejected() {
        let r = MetricsRegistry::new();
        r.histogram("h", &[1.0, 2.0]).unwrap();
        assert!(r.histogram("h", &[1.0, 3.0]).is_err());
        assert!(r.histogram("h", &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn snapshot_merge_semantics() {
        let r1 = MetricsRegistry::new();
        r1.counter("c").add(2);
        r1.gauge("g").set(7);
        r1.histogram("h", &[1.0]).unwrap().record(0.5);
        let r2 = MetricsRegistry::new();
        r2.counter("c").add(3);
        r2.gauge("g").set(4);
        r2.histogram("h", &[1.0]).unwrap().record(2.0);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot()).unwrap();
        assert_eq!(s.counters["c"], 5);
        assert_eq!(s.gauges["g"], 7);
        assert_eq!(s.histograms["h"].buckets, vec![1, 1]);
        assert_eq!(s.histograms["h"].count, 2);
        assert_eq!(s.histograms["h"].sum, 2.5);
    }

    fn snap(bounds: &[f64], buckets: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            buckets: buckets.to_vec(),
            count: buckets.iter().sum(),
            sum: 0.0,
        }
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let s = snap(&[1.0, 2.0], &[0, 0, 0]);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        // 10 samples in (0, 1]: uniform assumption puts the median at 0.5.
        let s = snap(&[1.0, 2.0], &[10, 0, 0]);
        assert!((s.p50().unwrap() - 0.5).abs() < 1e-12);
        assert!((s.quantile(0.0).unwrap() - 0.0).abs() < 1e-12);
        assert!((s.quantile(1.0).unwrap() - 1.0).abs() < 1e-12);
        // q is clamped, not rejected.
        assert_eq!(s.quantile(-3.0), s.quantile(0.0));
        assert_eq!(s.quantile(7.0), s.quantile(1.0));
    }

    #[test]
    fn quantile_spans_buckets() {
        // 4 in (0,1], 4 in (1,2]: p50 at the shared edge, p75 mid-second.
        let s = snap(&[1.0, 2.0], &[4, 4, 0]);
        assert!((s.p50().unwrap() - 1.0).abs() < 1e-12);
        assert!((s.quantile(0.75).unwrap() - 1.5).abs() < 1e-12);
        assert!((s.quantile(0.25).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_overflow_bucket_clamps_to_last_bound() {
        let s = snap(&[1.0, 2.0], &[1, 0, 9]);
        assert!((s.p99().unwrap() - 2.0).abs() < 1e-12);
        assert!((s.quantile(1.0).unwrap() - 2.0).abs() < 1e-12);
        // All samples above every bound: every quantile clamps.
        let s = snap(&[1.0], &[0, 5]);
        assert_eq!(s.quantile(0.5), Some(1.0));
    }

    #[test]
    fn record_latency_uses_canonical_bounds_and_survives_conflicts() {
        let r = MetricsRegistry::new();
        r.record_latency(crate::names::LAT_EXEC, 0.001);
        r.record_latency(crate::names::LAT_EXEC, 99.0);
        let s = r.snapshot();
        let h = &s.histograms[crate::names::LAT_EXEC];
        assert_eq!(h.bounds, crate::names::LAT_BOUNDS.to_vec());
        assert_eq!(h.count, 2);
        assert_eq!(*h.buckets.last().unwrap(), 1, "99s lands in overflow");
        // A name already registered with foreign bounds drops the sample
        // instead of panicking.
        r.histogram("other", &[1.0]).unwrap();
        // orv-lint: allow(L005) -- test exercises a name outside LAT_ALL on purpose
        r.record_latency("other", 0.5);
        assert_eq!(r.snapshot().histograms["other"].count, 0);
    }

    #[test]
    fn merge_rejects_bound_mismatch() {
        let r1 = MetricsRegistry::new();
        r1.histogram("h", &[1.0]).unwrap();
        let r2 = MetricsRegistry::new();
        r2.histogram("h", &[2.0]).unwrap();
        let mut s = r1.snapshot();
        assert!(s.merge(&r2.snapshot()).is_err());
    }
}
