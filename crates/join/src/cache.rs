//! The Caching Service.
//!
//! "The Caching Service can be used by the QES to store and access
//! frequently accessed objects." One [`CacheService`] instance outlives
//! individual query executions: each compute node owns an LRU shard
//! holding left sub-tables *with their built hash tables* and right
//! sub-tables, so a repeated or overlapping view query finds its working
//! set warm.

use crate::hash_join::HashJoiner;
use crate::lru::LruCache;
use orv_chunk::SubTable;
use orv_types::{Error, Result, SubTableId};
use parking_lot::Mutex;

/// What a compute node caches per sub-table.
pub enum CachedEntry {
    /// A left sub-table with its built hash table (built once per left
    /// sub-table, as §5.1 requires).
    Left(HashJoiner),
    /// A right sub-table.
    Right(SubTable),
}

/// Per-compute-node LRU shards, shared across join executions.
pub struct CacheService {
    shards: Vec<Mutex<LruCache<SubTableId, CachedEntry>>>,
}

impl CacheService {
    /// One shard per compute node, each `capacity_bytes` big.
    pub fn new(n_compute: usize, capacity_bytes: u64) -> Self {
        CacheService {
            shards: (0..n_compute)
                .map(|_| Mutex::new(LruCache::new(capacity_bytes)))
                .collect(),
        }
    }

    /// Number of compute-node shards.
    pub fn n_compute(&self) -> usize {
        self.shards.len()
    }

    /// The shard of compute node `j`.
    pub fn shard(&self, j: usize) -> Result<&Mutex<LruCache<SubTableId, CachedEntry>>> {
        self.shards
            .get(j)
            .ok_or_else(|| Error::Config(format!("cache service has no shard {j}")))
    }

    /// Aggregate `(hits, misses, evictions)` across shards (cumulative
    /// over the service's lifetime).
    pub fn stats(&self) -> (u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0), |acc, s| {
            let (h, m, e) = s.lock().stats();
            (acc.0 + h, acc.1 + m, acc.2 + e)
        })
    }

    /// Total bytes currently cached across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_types::{Schema, Value};
    use std::sync::Arc;

    fn st(rows: usize) -> SubTable {
        let schema = Arc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let cols = vec![
            (0..rows).map(|i| Value::I32(i as i32)).collect(),
            (0..rows).map(|i| Value::F32(i as f32)).collect(),
        ];
        SubTable::from_columns(SubTableId::new(0u32, 0u32), schema, cols).unwrap()
    }

    #[test]
    fn shards_are_independent() {
        let svc = CacheService::new(2, 1024);
        svc.shard(0).unwrap().lock().put(
            SubTableId::new(0u32, 0u32),
            CachedEntry::Right(st(4)),
            32,
        );
        assert!(svc
            .shard(1)
            .unwrap()
            .lock()
            .peek(&SubTableId::new(0u32, 0u32))
            .is_none());
        assert_eq!(svc.used_bytes(), 32);
        assert!(svc.shard(2).is_err());
        assert_eq!(svc.n_compute(), 2);
    }

    #[test]
    fn aggregate_stats() {
        let svc = CacheService::new(2, 1024);
        let id = SubTableId::new(0u32, 1u32);
        assert!(svc.shard(0).unwrap().lock().get(&id).is_none()); // miss
        svc.shard(0)
            .unwrap()
            .lock()
            .put(id, CachedEntry::Right(st(1)), 16);
        assert!(svc.shard(0).unwrap().lock().get(&id).is_some()); // hit
        let (h, m, _) = svc.stats();
        assert_eq!((h, m), (1, 1));
    }
}
