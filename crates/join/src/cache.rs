//! The Caching Service.
//!
//! "The Caching Service can be used by the QES to store and access
//! frequently accessed objects." One [`CacheService`] instance outlives
//! individual query executions — and, since the `QueryService` layer,
//! individual *clients*: each compute node owns an LRU shard holding left
//! sub-tables *with their built hash tables* and right sub-tables, so a
//! repeated or overlapping view query finds its working set warm whether
//! it comes from the same client or a concurrent one.
//!
//! ## Cross-query sharing
//!
//! Entries are keyed by [`CacheKey`]: the sub-table id plus the *role* the
//! entry plays (left-with-hash-table vs right) plus, for left entries, a
//! fingerprint of the join attributes and work factor the hash table was
//! built with. Two views joining the same tables on different attributes
//! therefore never alias each other's hash tables.
//!
//! ## Single-flight fetches
//!
//! [`CacheService::get_or_build`] deduplicates concurrent misses: the
//! first requester of a key becomes its *builder* (fetch + hash-table
//! build run with the shard lock released), every concurrent requester
//! waits on the shard's condvar and is answered from the cache when the
//! builder publishes. This is what preserves the §5.1 zero-refetch bound
//! (`cache_misses == N_C·(a+b)`) under concurrency: N simultaneous
//! queries over the same view still fetch each sub-table exactly once.
//! Waits are sliced at [`SLEEP_SLICE`] and observe the caller's
//! [`CancelToken`], so a cancelled query stops waiting promptly even if
//! the builder is slow.

use crate::hash_join::HashJoiner;
use crate::lru::{CacheStats, LruCache};
use orv_chunk::SubTable;
use orv_cluster::{CancelToken, SLEEP_SLICE};
use orv_obs::{names, Stopwatch};
use orv_types::{Error, Result, SubTableId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// What a compute node caches per sub-table. Both variants are behind an
/// `Arc`, so handing a cached value to a worker is a pointer clone — the
/// shard lock is never held across a build or a probe.
#[derive(Clone)]
pub enum CachedEntry {
    /// A left sub-table with its built hash table (built once per left
    /// sub-table, as §5.1 requires).
    Left(Arc<HashJoiner>),
    /// A right sub-table.
    Right(Arc<SubTable>),
}

impl std::fmt::Debug for CachedEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CachedEntry::Left(j) => write!(f, "Left(hash table, {} rows)", j.num_rows()),
            CachedEntry::Right(st) => write!(f, "Right({} rows)", st.num_rows()),
        }
    }
}

/// Cache key: sub-table id + the role of the cached value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// Left sub-table: the hash table depends on the join attributes and
    /// work factor, so those are part of the key (as a fingerprint).
    Left(SubTableId, u64),
    /// Right sub-table: raw post-filter rows, attribute-independent.
    Right(SubTableId),
}

/// Fingerprint of the parameters a left-side hash table was built with.
/// FNV-1a over the attribute names plus the work factor — collisions are
/// astronomically unlikely for the handful of attribute sets one
/// deployment ever joins on.
pub fn left_key_tag(join_attrs: &[&str], work_factor: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for attr in join_attrs {
        eat(attr.as_bytes());
        eat(&[0xff]); // separator so ["ab","c"] != ["a","bc"]
    }
    eat(&work_factor.to_le_bytes());
    h
}

/// How many hash-bucketed shards each compute node's cache splits into.
///
/// A single per-node mutex serializes every warm hit on that node —
/// under high client concurrency the hit path itself becomes the
/// bottleneck. Bucketing by key hash lets hits on different keys take
/// different locks; the single-flight protocol is untouched because a
/// given key always maps to the same bucket.
pub const BUCKETS_PER_NODE: usize = 8;

/// One cache shard: a hash bucket of one compute node's cache. Holds
/// its slice of the LRU, the in-flight key set of the single-flight
/// protocol, and its own hit/miss counters (bucket counters sum to the
/// node totals the un-sharded cache reported).
struct Shard {
    state: Mutex<ShardState>,
    cond: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct ShardState {
    lru: LruCache<CacheKey, CachedEntry>,
    in_flight: HashSet<CacheKey>,
}

fn relock<T>(r: std::result::Result<T, PoisonError<T>>) -> T {
    // A builder panic unwinds with the shard lock released (build runs
    // outside it), so poisoning can only come from a panic inside the
    // LRU itself; the map stays structurally valid either way.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Per-compute-node caches, each hash-bucketed into
/// [`BUCKETS_PER_NODE`] independently locked shards, shared across join
/// executions *and* across concurrent queries.
pub struct CacheService {
    /// `n_compute × BUCKETS_PER_NODE` shards; node `j`'s buckets are the
    /// contiguous run `j*B .. (j+1)*B`.
    shards: Vec<Shard>,
    /// Watermark of counters already published into a metrics registry,
    /// so repeated [`CacheService::publish_into`] calls add only deltas.
    published: Mutex<CacheStats>,
    /// Seconds each single-flight waiter blocked on a peer's build,
    /// drained into the `lat/cache_wait_secs` histogram on publish.
    wait_samples: Mutex<Vec<f64>>,
}

/// FNV-1a over the key's identity fields, used to pick a bucket. Stable
/// (not `RandomState`): the same key must hit the same bucket for the
/// lifetime of the service, or single-flight dedup would break.
fn key_bucket(key: &CacheKey) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match key {
        CacheKey::Left(id, tag) => {
            eat(&[0]);
            eat(&id.table.0.to_le_bytes());
            eat(&id.chunk.0.to_le_bytes());
            eat(&tag.to_le_bytes());
        }
        CacheKey::Right(id) => {
            eat(&[1]);
            eat(&id.table.0.to_le_bytes());
            eat(&id.chunk.0.to_le_bytes());
        }
    }
    h as usize % BUCKETS_PER_NODE
}

impl CacheService {
    /// [`BUCKETS_PER_NODE`] shards per compute node, splitting each
    /// node's `capacity_bytes` evenly (rounded up) across its buckets.
    pub fn new(n_compute: usize, capacity_bytes: u64) -> Self {
        let per_bucket = capacity_bytes.div_ceil(BUCKETS_PER_NODE as u64);
        CacheService {
            shards: (0..n_compute * BUCKETS_PER_NODE)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        lru: LruCache::new(per_bucket),
                        in_flight: HashSet::new(),
                    }),
                    cond: Condvar::new(),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
                .collect(),
            published: Mutex::new(CacheStats::default()),
            wait_samples: Mutex::new(Vec::new()),
        }
    }

    /// Number of compute nodes served (not the shard count).
    pub fn n_compute(&self) -> usize {
        self.shards.len() / BUCKETS_PER_NODE
    }

    /// The shard of `key` on compute node `j`.
    fn shard(&self, j: usize, key: &CacheKey) -> Result<&Shard> {
        if j >= self.n_compute() {
            return Err(Error::Config(format!("cache service has no shard {j}")));
        }
        Ok(&self.shards[j * BUCKETS_PER_NODE + key_bucket(key)])
    }

    fn lock(shard: &Shard) -> MutexGuard<'_, ShardState> {
        relock(shard.state.lock())
    }

    /// Look up `key` in node `j`'s cache, counting a hit or miss.
    pub fn lookup(&self, j: usize, key: &CacheKey) -> Result<Option<CachedEntry>> {
        let shard = self.shard(j, key)?;
        let mut state = Self::lock(shard);
        let found = state.lru.touch(key).cloned();
        match found {
            Some(entry) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(entry))
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    /// Insert `key → entry` of `size` bytes into node `j`'s cache.
    pub fn insert(&self, j: usize, key: CacheKey, entry: CachedEntry, size: u64) -> Result<()> {
        let shard = self.shard(j, &key)?;
        Self::lock(shard).lru.put(key, entry, size);
        Ok(())
    }

    /// Fetch `key` from shard `j`, building it with `build` on a miss.
    ///
    /// Returns the entry plus `true` when it came from the cache. Misses
    /// are single-flight: exactly one concurrent caller runs `build` (with
    /// the shard lock *released*); the rest wait, cancellably, and are
    /// answered from the cache — counted as hits, because they caused no
    /// fetch. If the builder fails, its error propagates to it alone and
    /// one waiter takes over as the next builder.
    pub fn get_or_build(
        &self,
        j: usize,
        key: CacheKey,
        cancel: &CancelToken,
        build: impl FnOnce() -> Result<(CachedEntry, u64)>,
    ) -> Result<(CachedEntry, bool)> {
        let shard = self.shard(j, &key)?;
        let mut state = Self::lock(shard);
        // Single-flight block time: armed on the first wait, sampled once
        // the waiter unblocks (answered from the cache, promoted to
        // builder, or cancelled).
        let mut waited: Option<Stopwatch> = None;
        let sample_wait = |w: &Option<Stopwatch>| {
            if let Some(sw) = w {
                relock(self.wait_samples.lock()).push(sw.elapsed_secs());
            }
        };
        loop {
            if let Some(entry) = state.lru.touch(&key) {
                let entry = entry.clone();
                shard.hits.fetch_add(1, Ordering::Relaxed);
                drop(state);
                sample_wait(&waited);
                return Ok((entry, true));
            }
            if state.in_flight.insert(key.clone()) {
                break; // we are the builder for this key
            }
            // A peer is fetching this key: wait a slice, then re-check.
            waited.get_or_insert_with(Stopwatch::start);
            let (guard, _) = relock(shard.cond.wait_timeout(state, SLEEP_SLICE));
            state = guard;
            if let Err(e) = cancel.check() {
                drop(state);
                sample_wait(&waited);
                return Err(e);
            }
        }
        drop(state);
        sample_wait(&waited);
        // Build with the lock released: the fetch may retry, back off,
        // sleep, or take a while hashing — none of which may stall peers
        // on this shard. The guard unregisters the key even if `build`
        // panics, so waiters never wedge on a dead builder.
        let mut in_flight = InFlightGuard {
            shard,
            key: Some(key),
        };
        let built = build();
        let mut state = Self::lock(shard);
        let key = in_flight.disarm();
        match built {
            Ok((entry, size)) => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                state.in_flight.remove(&key);
                state.lru.put(key, entry.clone(), size);
                shard.cond.notify_all();
                Ok((entry, false))
            }
            Err(e) => {
                state.in_flight.remove(&key);
                shard.cond.notify_all();
                Err(e)
            }
        }
    }

    /// Aggregate named counters (cumulative over the service's lifetime).
    /// Hits and misses follow single-flight semantics: a waiter answered
    /// by its builder's fetch counts as a hit; only builders count misses.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .into_iter()
            .fold(CacheStats::default(), |mut acc, s| {
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.evictions += s.evictions;
                acc
            })
    }

    /// Per-shard counters, one entry per hash bucket of every compute
    /// node (node `j`'s buckets occupy indices `j*B .. (j+1)*B` with
    /// `B = BUCKETS_PER_NODE`). Summing them reproduces [`stats`]
    /// exactly — bucketing never loses or double-counts an operation.
    ///
    /// [`stats`]: CacheService::stats
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| CacheStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: Self::lock(s).lru.stats().evictions,
            })
            .collect()
    }

    /// Total bytes currently cached across shards.
    pub fn used_bytes(&self) -> u64 {
        self.shards.iter().map(|s| Self::lock(s).lru.used()).sum()
    }

    /// Publish the counters into an observability registry under the
    /// [`orv_obs::names`] cache names. Deltas only: repeated publishes
    /// (e.g. once per completed query) never double-count.
    pub fn publish_into(&self, metrics: &orv_obs::MetricsRegistry) {
        let now = self.stats();
        let mut last = relock(self.published.lock());
        metrics
            .counter(names::CACHE_HITS)
            .add(now.hits.saturating_sub(last.hits));
        metrics
            .counter(names::CACHE_MISSES)
            .add(now.misses.saturating_sub(last.misses));
        metrics
            .counter(names::CACHE_EVICTIONS)
            .add(now.evictions.saturating_sub(last.evictions));
        metrics
            .counter(names::CACHE_LOOKUPS)
            .add(now.lookups().saturating_sub(last.lookups()));
        *last = now;
        drop(last);
        let samples: Vec<f64> = std::mem::take(&mut *relock(self.wait_samples.lock()));
        for secs in samples {
            metrics.record_latency(names::LAT_CACHE_WAIT, secs);
        }
    }
}

/// Removes an in-flight key on drop unless disarmed — the panic-safety
/// net of the single-flight protocol.
struct InFlightGuard<'a> {
    shard: &'a Shard,
    key: Option<CacheKey>,
}

impl InFlightGuard<'_> {
    fn disarm(&mut self) -> CacheKey {
        // Only called with the key still armed; the panic-drop path is
        // the alternative consumer.
        self.key
            .take()
            .unwrap_or(CacheKey::Right(SubTableId::new(u32::MAX, u32::MAX)))
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut state = relock(self.shard.state.lock());
            state.in_flight.remove(&key);
            self.shard.cond.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_types::{Schema, Value};
    use std::sync::mpsc;
    use std::sync::Barrier;

    fn st(rows: usize) -> Arc<SubTable> {
        let schema = Arc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let cols = vec![
            (0..rows).map(|i| Value::I32(i as i32)).collect(),
            (0..rows).map(|i| Value::F32(i as f32)).collect(),
        ];
        Arc::new(SubTable::from_columns(SubTableId::new(0u32, 0u32), schema, cols).unwrap())
    }

    fn rkey(c: u32) -> CacheKey {
        CacheKey::Right(SubTableId::new(0u32, c))
    }

    #[test]
    fn shards_are_independent() {
        let svc = CacheService::new(2, 1024);
        svc.insert(0, rkey(0), CachedEntry::Right(st(4)), 32)
            .unwrap();
        assert!(svc.lookup(1, &rkey(0)).unwrap().is_none());
        assert_eq!(svc.used_bytes(), 32);
        assert!(svc.lookup(2, &rkey(0)).is_err());
        assert_eq!(svc.n_compute(), 2);
    }

    #[test]
    fn aggregate_stats() {
        let svc = CacheService::new(2, 1024);
        assert!(svc.lookup(0, &rkey(1)).unwrap().is_none()); // miss
        svc.insert(0, rkey(1), CachedEntry::Right(st(1)), 16)
            .unwrap();
        assert!(svc.lookup(0, &rkey(1)).unwrap().is_some()); // hit
        let s = svc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.lookups(), 2);
    }

    #[test]
    fn left_key_tag_separates_attribute_sets() {
        assert_ne!(left_key_tag(&["x", "y"], 1), left_key_tag(&["x"], 1));
        assert_ne!(left_key_tag(&["ab", "c"], 1), left_key_tag(&["a", "bc"], 1));
        assert_ne!(left_key_tag(&["x"], 1), left_key_tag(&["x"], 2));
        assert_eq!(left_key_tag(&["x", "y"], 3), left_key_tag(&["x", "y"], 3));
    }

    #[test]
    fn get_or_build_builds_once_then_hits() {
        let svc = CacheService::new(1, 1024);
        let cancel = CancelToken::none();
        let (_, hit) = svc
            .get_or_build(0, rkey(7), &cancel, || Ok((CachedEntry::Right(st(2)), 16)))
            .unwrap();
        assert!(!hit);
        let (_, hit) = svc
            .get_or_build(0, rkey(7), &cancel, || {
                panic!("must not rebuild a cached key")
            })
            .unwrap();
        assert!(hit);
        let s = svc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn builder_error_propagates_and_unblocks_the_key() {
        let svc = CacheService::new(1, 1024);
        let cancel = CancelToken::none();
        let err = svc
            .get_or_build(0, rkey(3), &cancel, || {
                Err(Error::Cluster("fetch died".into()))
            })
            .unwrap_err();
        assert!(matches!(err, Error::Cluster(_)), "{err}");
        // The key is no longer in flight: the next caller becomes the
        // builder and can succeed.
        let (_, hit) = svc
            .get_or_build(0, rkey(3), &cancel, || Ok((CachedEntry::Right(st(1)), 8)))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn concurrent_misses_are_single_flight() {
        let svc = Arc::new(CacheService::new(1, 1024));
        let builds = Arc::new(AtomicU64::new(0));
        let n = 4;
        let barrier = Arc::new(Barrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let svc = Arc::clone(&svc);
            let builds = Arc::clone(&builds);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let (_, hit) = svc
                    .get_or_build(0, rkey(9), &CancelToken::none(), || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        Ok((CachedEntry::Right(st(4)), 32))
                    })
                    .unwrap();
                hit
            }));
        }
        let hits = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap())
            .filter(|&h| h)
            .count();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one builder");
        assert_eq!(hits, n - 1, "every waiter answered from the cache");
        let s = svc.stats();
        assert_eq!((s.hits, s.misses), (n as u64 - 1, 1));
    }

    #[test]
    fn waiter_cancellation_unblocks_within_a_slice() {
        let svc = Arc::new(CacheService::new(1, 1024));
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let blocker = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                svc.get_or_build(0, rkey(5), &CancelToken::none(), || {
                    started_tx.send(()).ok();
                    release_rx.recv().ok();
                    Err(Error::Cluster("released".into()))
                })
            })
        };
        started_rx.recv().unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let start = std::time::Instant::now();
        let err = svc
            .get_or_build(0, rkey(5), &cancel, || {
                panic!("cancelled waiter must not become the builder")
            })
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
        assert!(
            start.elapsed() < SLEEP_SLICE * 3,
            "waiter took {:?}",
            start.elapsed()
        );
        release_tx.send(()).unwrap();
        assert!(blocker.join().unwrap().is_err());
    }

    #[test]
    fn bucket_mapping_is_stable_and_shard_stats_sum_to_totals() {
        // Same key, same bucket — forever: single-flight dedup depends
        // on it.
        for c in 0..64u32 {
            assert_eq!(key_bucket(&rkey(c)), key_bucket(&rkey(c)));
        }
        let svc = CacheService::new(2, 1 << 20);
        assert_eq!(svc.n_compute(), 2);
        assert_eq!(svc.shard_stats().len(), 2 * BUCKETS_PER_NODE);
        let cancel = CancelToken::none();
        for c in 0..32u32 {
            let j = (c % 2) as usize;
            svc.get_or_build(j, rkey(c), &cancel, || Ok((CachedEntry::Right(st(1)), 8)))
                .unwrap();
            svc.get_or_build(j, rkey(c), &cancel, || panic!("cached"))
                .unwrap();
        }
        let total = svc.stats();
        assert_eq!((total.hits, total.misses), (32, 32));
        let per_shard = svc.shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
        assert_eq!(
            per_shard.iter().map(|s| s.misses).sum::<u64>(),
            total.misses
        );
        // The keys actually spread over more than one bucket.
        assert!(
            per_shard.iter().filter(|s| s.lookups() > 0).count() > 1,
            "expected key hashing to use multiple buckets: {per_shard:?}"
        );
    }

    #[test]
    fn publish_into_adds_deltas_only() {
        let metrics = orv_obs::MetricsRegistry::new();
        let svc = CacheService::new(1, 1024);
        assert!(svc.lookup(0, &rkey(1)).unwrap().is_none());
        svc.publish_into(&metrics);
        svc.publish_into(&metrics); // no new activity → no double count
        let snap = metrics.snapshot();
        assert_eq!(snap.counters.get(names::CACHE_MISSES).copied(), Some(1));
        assert_eq!(snap.counters.get(names::CACHE_LOOKUPS).copied(), Some(1));
        svc.insert(0, rkey(1), CachedEntry::Right(st(1)), 8)
            .unwrap();
        assert!(svc.lookup(0, &rkey(1)).unwrap().is_some());
        svc.publish_into(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counters.get(names::CACHE_HITS).copied(), Some(1));
        assert_eq!(snap.counters.get(names::CACHE_LOOKUPS).copied(), Some(2));
    }
}
