//! The distributed page-level Indexed Join on the threaded runtime.
//!
//! "Each compute node runs a QES instance that receives a pair of sub-table
//! ids to join. The QES instance checks with the local Cache Service
//! Instance to see if either of the sub-tables are present. If not, the QES
//! instance requests for the sub-tables from appropriate BDS instances
//! running on the storage nodes. It then performs a hash join on the
//! received pairs of sub-tables."
//!
//! Each compute node is an OS thread. Hash tables built on left sub-tables
//! are cached alongside the sub-tables themselves, so "a hash-table is
//! created only once for every left sub-table" as long as the §5.1 memory
//! assumption holds.
//!
//! ## Fault tolerance
//!
//! Every sub-table fetch runs under the configured [`RecoveryPolicy`]
//! (bounded retries, exponential backoff, per-operation deadline), so
//! transient storage faults are retried rather than fatal. Every worker
//! body runs inside `catch_unwind`: a panicking worker is *contained* —
//! its join handle is still harvested, its completed pairs stay committed
//! exactly once, and its remaining pairs are re-scheduled (via the same
//! [`schedule`] used for the initial assignment) over the surviving
//! workers. Only when every worker has died does the join fail, with a
//! typed `Error::Cluster`. Results and statistics are committed per
//! completed pair, so reassignment never duplicates or loses output.

use crate::cache::{left_key_tag, CacheKey, CacheService, CachedEntry};
use crate::connectivity::ConnectivityGraph;
use crate::hash_join::{HashJoiner, JoinCounters};
use crate::schedule::{schedule, SchedulePolicy};
use orv_bds::{BdsService, Deployment};
use orv_chunk::SubTable;
use orv_cluster::{
    fault::panic_message, ByteCounter, CancelToken, FaultInjector, RecoveryPolicy, RunStats,
};
use orv_obs::{names, Obs};
use orv_types::{BoundingBox, Error, Record, Result, SubTableId, TableId};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one Indexed Join execution.
#[derive(Clone, Debug)]
pub struct IndexedJoinConfig {
    /// Number of compute-node threads (`n_j`).
    pub n_compute: usize,
    /// Sub-table cache capacity per compute node, bytes.
    pub cache_capacity: u64,
    /// Scheduling strategy (paper default: two-stage lexicographic).
    pub policy: SchedulePolicy,
    /// Figure-8 work multiplier for hash build/probe.
    pub work_factor: u32,
    /// Collect result records (tests); otherwise only count them.
    pub collect_results: bool,
    /// Optional range constraint pushed into the connectivity graph and
    /// applied to fetched sub-tables.
    pub range: Option<BoundingBox>,
    /// Optional fault injector exercising the execution (tests/chaos).
    pub faults: Option<Arc<FaultInjector>>,
    /// Retry/backoff/deadline policy for storage fetches.
    pub recovery: RecoveryPolicy,
    /// Cooperative cancellation: checked before every pair and observed by
    /// fetch retries/backoff, so a cancel (or deadline) unwinds the join
    /// within one sleep slice.
    pub cancel: CancelToken,
    /// Observability handle. Disabled by default; when enabled, workers
    /// record `n{j}/transfer`, `n{j}/build` and `n{j}/probe` spans (one
    /// per cost-model term) and the merged [`RunStats`] are published
    /// into the metrics registry under the `ij/` prefix.
    pub obs: Obs,
}

impl Default for IndexedJoinConfig {
    fn default() -> Self {
        IndexedJoinConfig {
            n_compute: 2,
            cache_capacity: 256 << 20,
            policy: SchedulePolicy::TwoStageLexicographic,
            work_factor: 1,
            collect_results: false,
            range: None,
            faults: None,
            recovery: RecoveryPolicy::default(),
            cancel: CancelToken::none(),
            obs: Obs::disabled(),
        }
    }
}

/// Result of a distributed join execution.
#[derive(Debug)]
pub struct JoinOutput {
    /// Aggregated run statistics.
    pub stats: RunStats,
    /// Result records if `collect_results` was set.
    pub records: Option<Vec<Record>>,
}

/// Execute `left ⊕ right` on `join_attrs` with the Indexed Join QES,
/// using a fresh (query-lifetime) cache.
pub fn indexed_join(
    deployment: &Deployment,
    left: TableId,
    right: TableId,
    join_attrs: &[&str],
    cfg: &IndexedJoinConfig,
) -> Result<JoinOutput> {
    let cache = CacheService::new(cfg.n_compute, cfg.cache_capacity);
    indexed_join_cached(deployment, left, right, join_attrs, cfg, &cache)
}

/// Execute with an externally owned [`CacheService`], so repeated queries
/// find their working set warm. The service must have one shard per
/// compute node.
///
/// Cached sub-tables are stored *after* the `range` filter is applied, so
/// a service may only be shared between executions using the same `range`
/// (the query engine shares it for unconstrained view scans only).
pub fn indexed_join_cached(
    deployment: &Deployment,
    left: TableId,
    right: TableId,
    join_attrs: &[&str],
    cfg: &IndexedJoinConfig,
    cache: &CacheService,
) -> Result<JoinOutput> {
    if cfg.n_compute == 0 {
        return Err(Error::Config(
            "indexed join needs at least one compute node".into(),
        ));
    }
    if cache.n_compute() != cfg.n_compute {
        return Err(Error::Config(format!(
            "cache service has {} shards but the join uses {} compute nodes",
            cache.n_compute(),
            cfg.n_compute
        )));
    }
    let md = deployment.metadata();

    // Consult (or build and persist) the page-level join index, then prune
    // by the range constraint.
    let graph = match (&cfg.range, md.get_join_index(left, right, join_attrs)) {
        (None, Some(pairs)) => {
            ConnectivityGraph::from_edges(left, right, join_attrs, pairs.as_ref().clone())
        }
        (maybe_range, _) => {
            let g = ConnectivityGraph::build(md, left, right, join_attrs, maybe_range.as_ref())?;
            if maybe_range.is_none() {
                md.put_join_index(left, right, join_attrs, g.edges().collect());
            }
            g
        }
    };

    let mut pending = schedule(&graph, cfg.n_compute, cfg.policy);
    let injector = cfg.faults.clone().unwrap_or_else(FaultInjector::disabled);
    let services = BdsService::for_all_nodes_with_instruments(
        deployment,
        Arc::clone(&injector),
        cfg.obs.spans.clone(),
        injector.events().clone(),
        cfg.cancel.clone(),
    )?;
    let counters = JoinCounters::new();
    let transfer = ByteCounter::new();
    // Left-side cache keys carry the hash-table parameters, so views
    // joining the same tables on different attributes never alias.
    let left_tag = left_key_tag(join_attrs, cfg.work_factor);
    // Exactly-once commit point: a pair's records and stats deltas land
    // here only after the pair fully completes, so a worker dying mid-pair
    // neither loses nor duplicates output when the pair is reassigned.
    let committed: Mutex<(Vec<Record>, RunStats)> = Mutex::new((Vec::new(), RunStats::default()));
    // orv-lint: allow(L006) -- wall-clock measurement feeding RunStats only; never drives control flow
    let start = Instant::now();

    let mut alive = vec![true; cfg.n_compute];
    let mut worker_panics = 0u64;
    let mut pairs_reassigned = 0u64;
    let mut last_panic = String::new();
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        if rounds > cfg.n_compute + 1 {
            // Unreachable in practice: each extra round requires a fresh
            // worker death, and workers are finite.
            return Err(Error::Cluster(
                "indexed join exceeded its recovery-round bound".into(),
            ));
        }

        // Per-worker count of *committed* pairs this round, read by the
        // coordinator only after the worker thread has terminated.
        let completed: Vec<AtomicU64> = (0..cfg.n_compute).map(|_| AtomicU64::new(0)).collect();
        let ends: Vec<(usize, WorkerEnd)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for node_idx in 0..cfg.n_compute {
                if !alive[node_idx] || pending[node_idx].is_empty() {
                    continue;
                }
                let plan = &pending[node_idx];
                let completed = &completed[node_idx];
                let services = &services;
                let counters = &counters;
                let transfer = &transfer;
                let committed = &committed;
                let injector = &injector;
                handles.push((
                    node_idx,
                    scope.spawn(move || -> WorkerEnd {
                        let body = || -> Result<()> {
                            let fetch =
                                |id: SubTableId, delta: &mut RunStats| -> Result<SubTable> {
                                    let _transfer = cfg.obs.spans.span_with(|| {
                                        names::span_ij(node_idx, names::PHASE_TRANSFER)
                                    });
                                    let meta = md.chunk_meta(id)?;
                                    let svc = &services[meta.node.index()];
                                    let (st, retries) =
                                        cfg.recovery.run_cancellable(&cfg.cancel, || {
                                            let mut st = svc.subtable(id)?;
                                            if let Some(rg) = &cfg.range {
                                                st = st.filter_range(rg)?;
                                            }
                                            Ok(st)
                                        });
                                    delta.read_retries += retries;
                                    let st = st?;
                                    delta.bytes_read_storage += meta.size_bytes();
                                    delta.bytes_transferred += st.encoded_size() as u64;
                                    transfer.add(st.encoded_size() as u64);
                                    Ok(st)
                                };

                            for (i, &(lid, rid)) in plan.iter().enumerate() {
                                cfg.cancel.check()?;
                                injector.worker_checkpoint(node_idx);
                                let mut delta = RunStats::default();
                                let mut local = Vec::new();
                                // Left side: shared-cache hash table; on a
                                // miss, one node fetches + builds while any
                                // concurrent requester of the same key waits
                                // (single-flight) and counts a hit.
                                let (entry, was_hit) = cache.get_or_build(
                                    node_idx,
                                    CacheKey::Left(lid, left_tag),
                                    &cfg.cancel,
                                    || {
                                        let st = Arc::new(fetch(lid, &mut delta)?);
                                        let size = st.encoded_size() as u64;
                                        let _build = cfg.obs.spans.span_with(|| {
                                            names::span_ij(node_idx, names::PHASE_BUILD)
                                        });
                                        let j = HashJoiner::build(
                                            st,
                                            join_attrs,
                                            counters,
                                            cfg.work_factor,
                                        )?;
                                        Ok((CachedEntry::Left(Arc::new(j)), size))
                                    },
                                )?;
                                if was_hit {
                                    delta.cache_hits += 1;
                                } else {
                                    delta.cache_misses += 1;
                                }
                                let CachedEntry::Left(joiner) = entry else {
                                    return Err(Error::Cluster(
                                        "left cache key resolved to a right entry".into(),
                                    ));
                                };
                                // Right side: shared-cache sub-table.
                                let (entry, was_hit) = cache.get_or_build(
                                    node_idx,
                                    CacheKey::Right(rid),
                                    &cfg.cancel,
                                    || {
                                        let st = fetch(rid, &mut delta)?;
                                        let size = st.encoded_size() as u64;
                                        Ok((CachedEntry::Right(Arc::new(st)), size))
                                    },
                                )?;
                                if was_hit {
                                    delta.cache_hits += 1;
                                } else {
                                    delta.cache_misses += 1;
                                }
                                let CachedEntry::Right(rst) = entry else {
                                    return Err(Error::Cluster(
                                        "right cache key resolved to a left entry".into(),
                                    ));
                                };
                                let produced = {
                                    let _probe = cfg
                                        .obs
                                        .spans
                                        .span_with(|| names::span_ij(node_idx, names::PHASE_PROBE));
                                    if cfg.collect_results {
                                        joiner
                                            .probe(&rst, join_attrs, counters, |r| local.push(r))?
                                    } else {
                                        joiner.probe(&rst, join_attrs, counters, |_| {})?
                                    }
                                };
                                delta.result_tuples += produced;

                                // Commit the completed pair, then publish
                                // progress — nothing fallible in between.
                                let mut c = committed.lock();
                                if cfg.collect_results {
                                    c.0.append(&mut local);
                                }
                                c.1.merge(&delta);
                                drop(c);
                                completed.store(i as u64 + 1, Ordering::Release);
                            }
                            Ok(())
                        };
                        match catch_unwind(AssertUnwindSafe(body)) {
                            Ok(Ok(())) => WorkerEnd::Done,
                            Ok(Err(e)) => WorkerEnd::Failed(e),
                            Err(p) => WorkerEnd::Panicked(panic_message(p.as_ref())),
                        }
                    }),
                ));
            }
            // Harvest every handle — a dead worker must never leave the
            // coordinator waiting on an unjoined thread.
            handles
                .into_iter()
                .map(|(idx, h)| {
                    let end = h
                        .join()
                        .unwrap_or_else(|p| WorkerEnd::Panicked(panic_message(p.as_ref())));
                    (idx, end)
                })
                .collect()
        });

        let mut orphaned: Vec<(SubTableId, SubTableId)> = Vec::new();
        let mut failed: Option<Error> = None;
        for (node_idx, end) in ends {
            match end {
                WorkerEnd::Done => {}
                // Typed worker errors (fetch failed after all retries,
                // corrupt data, …) abort the join — they would recur on
                // any node. A cancellation is reported as such even when
                // some other worker failed with a secondary error first.
                WorkerEnd::Failed(e) => {
                    if e.is_cancellation() || failed.is_none() {
                        failed = Some(e);
                    }
                }
                WorkerEnd::Panicked(msg) => {
                    worker_panics += 1;
                    alive[node_idx] = false;
                    last_panic = msg;
                    let done = completed[node_idx].load(Ordering::Acquire) as usize;
                    orphaned.extend_from_slice(&pending[node_idx][done..]);
                }
            }
        }
        if let Some(e) = failed {
            return Err(e);
        }
        if orphaned.is_empty() {
            break;
        }

        // Reassign the dead workers' remaining pairs over the survivors
        // with the same scheduler that produced the original assignment.
        let survivors: Vec<usize> = (0..cfg.n_compute).filter(|&k| alive[k]).collect();
        if survivors.is_empty() {
            return Err(Error::Cluster(format!(
                "all {} compute workers died; last panic: {last_panic}",
                cfg.n_compute
            )));
        }
        pairs_reassigned += orphaned.len() as u64;
        let regraph = ConnectivityGraph::from_edges(left, right, join_attrs, orphaned);
        let replans = schedule(&regraph, survivors.len(), cfg.policy);
        let mut next = vec![Vec::new(); cfg.n_compute];
        for (slot, pairs) in replans.into_iter().enumerate() {
            next[survivors[slot]] = pairs;
        }
        pending = next;
    }

    let (records, mut stats) = committed.into_inner();
    // Chunk-page corruptions are detected (and counted) inside the BDS
    // instances; fold them into the run totals.
    for svc in &services {
        stats.corruptions_detected += svc.corruptions_detected();
    }
    stats.wall_secs = start.elapsed().as_secs_f64();
    stats.hash_builds = counters.builds();
    stats.hash_probes = counters.probes();
    stats.worker_panics = worker_panics;
    stats.pairs_reassigned = pairs_reassigned;
    stats.record_into(&cfg.obs.metrics, "ij");
    Ok(JoinOutput {
        stats,
        records: cfg.collect_results.then_some(records),
    })
}

/// How one IJ worker thread ended its round.
enum WorkerEnd {
    /// Completed its whole pair list.
    Done,
    /// Returned a typed error (aborts the join).
    Failed(Error),
    /// Died; its uncommitted pairs are reassigned to survivors.
    Panicked(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{nested_loop_join, sort_records};
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_types::Interval;

    fn deploy(
        grid: [u64; 3],
        p1: [u64; 3],
        p2: [u64; 3],
        nodes: usize,
    ) -> (Deployment, TableId, TableId) {
        let d = Deployment::in_memory(nodes);
        let t1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid(grid)
                .partition(p1)
                .scalar_attrs(&["oilp"])
                .seed(1)
                .build(),
            &d,
        )
        .unwrap();
        let t2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid(grid)
                .partition(p2)
                .scalar_attrs(&["wp"])
                .seed(2)
                .build(),
            &d,
        )
        .unwrap();
        (d, t1.table, t2.table)
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let cfg = IndexedJoinConfig {
            n_compute: 3,
            collect_results: true,
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(out.stats.result_tuples as usize, expected.len());
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn selectivity_one_produces_t_tuples() {
        let (d, t1, t2) = deploy([8, 4, 2], [4, 4, 2], [4, 2, 2], 2);
        let out =
            indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        assert_eq!(out.stats.result_tuples, 64);
        assert!(out.records.is_none());
    }

    #[test]
    fn big_cache_never_refetches() {
        let (d, t1, t2) = deploy([8, 8, 1], [2, 2, 1], [4, 4, 1], 2);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            cache_capacity: 1 << 30,
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        // 16 left + 4 right sub-tables fetched exactly once each; with the
        // two-stage schedule every pair beyond the first per sub-table hits.
        assert_eq!(out.stats.cache_misses, 20);
        let expected_bytes = 16 * 4 * 16 + 4 * 16 * 16; // chunks × rows × record size
        assert_eq!(out.stats.bytes_transferred as usize, expected_bytes);
    }

    #[test]
    fn tiny_cache_still_correct() {
        let (d, t1, t2) = deploy([8, 8, 1], [2, 2, 1], [4, 4, 1], 2);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            cache_capacity: 1, // nothing fits
            collect_results: true,
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        assert_eq!(out.stats.cache_hits, 0);
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn range_constraint_prunes_and_matches_oracle() {
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [2, 2, 1], 2);
        let range = BoundingBox::from_dims([
            ("x", Interval::new(0.0, 3.0)),
            ("y", Interval::new(2.0, 5.0)),
        ]);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            collect_results: true,
            range: Some(range.clone()),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], Some(&range)).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        assert_eq!(out.stats.result_tuples, 16);
    }

    #[test]
    fn all_policies_agree() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 2, 2], [2, 4, 1], 3);
        let mut outputs = Vec::new();
        for policy in [
            SchedulePolicy::TwoStageLexicographic,
            SchedulePolicy::RandomPairOrder(9),
            SchedulePolicy::PairRoundRobin,
        ] {
            let cfg = IndexedJoinConfig {
                n_compute: 2,
                policy,
                collect_results: true,
                ..Default::default()
            };
            let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
            outputs.push(sort_records(out.records.unwrap()));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn work_factor_changes_ops_not_output() {
        let (d, t1, t2) = deploy([4, 4, 1], [2, 2, 1], [2, 2, 1], 1);
        let base =
            indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        let cfg = IndexedJoinConfig {
            work_factor: 3,
            ..Default::default()
        };
        let tripled = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        assert_eq!(base.stats.result_tuples, tripled.stats.result_tuples);
        assert_eq!(tripled.stats.hash_builds, 3 * base.stats.hash_builds);
        assert_eq!(tripled.stats.hash_probes, 3 * base.stats.hash_probes);
    }

    #[test]
    fn join_index_is_persisted_and_reused() {
        let (d, t1, t2) = deploy([4, 4, 1], [2, 2, 1], [2, 2, 1], 1);
        assert!(d
            .metadata()
            .get_join_index(t1, t2, &["x", "y", "z"])
            .is_none());
        indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        let idx = d
            .metadata()
            .get_join_index(t1, t2, &["x", "y", "z"])
            .unwrap();
        assert_eq!(idx.len(), 4); // identical partitions → 1:1 pairs
                                  // Second run consumes the stored index (still correct).
        let out =
            indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        assert_eq!(out.stats.result_tuples, 16);
    }

    #[test]
    fn transient_read_faults_recovered_and_counted() {
        use orv_cluster::FaultPlan;
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let plan = FaultPlan {
            seed: 21,
            read_error_prob: 1.0,
            max_read_errors: 3,
            max_faults: 3,
            ..FaultPlan::none()
        };
        let cfg = IndexedJoinConfig {
            collect_results: true,
            faults: Some(plan.injector()),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        assert_eq!(
            out.stats.read_retries, 3,
            "every injected failure costs one retry"
        );
        assert_eq!(out.stats.worker_panics, 0);
    }

    #[test]
    fn corrupted_chunk_pages_detected_and_recovered() {
        use orv_cluster::FaultPlan;
        use orv_obs::EventLog;
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let events = EventLog::enabled();
        let plan = FaultPlan {
            seed: 13,
            chunk_corrupt_prob: 1.0,
            max_chunk_corruptions: 3,
            max_faults: 3,
            ..FaultPlan::none()
        };
        let injector = plan.injector_with_events(events.clone());
        let cfg = IndexedJoinConfig {
            collect_results: true,
            faults: Some(Arc::clone(&injector)),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        let fstats = injector.stats();
        assert_eq!(fstats.chunk_corruptions, 3, "{fstats:?}");
        assert_eq!(out.stats.corruptions_detected, fstats.corruptions());
        assert_eq!(
            events.events_of_kind(names::CORRUPTION_DETECTED).len() as u64,
            fstats.corruptions()
        );
        assert_eq!(out.stats.worker_panics, 0);
    }

    #[test]
    fn cancelled_join_returns_cancelled_error() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let cfg = IndexedJoinConfig {
            cancel,
            ..Default::default()
        };
        let err = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
    }

    #[test]
    fn worker_panic_reassigns_remaining_pairs() {
        use orv_cluster::{silence_injected_panics, FaultPlan, WorkerPanicSpec};
        silence_injected_panics();
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let plan = FaultPlan {
            seed: 5,
            worker_panics: vec![WorkerPanicSpec {
                worker: 0,
                after_ops: 1,
            }],
            max_faults: 1,
            ..FaultPlan::none()
        };
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            collect_results: true,
            faults: Some(plan.injector()),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        assert_eq!(out.stats.worker_panics, 1);
        assert!(out.stats.pairs_reassigned > 0, "{:?}", out.stats);
    }

    #[test]
    fn all_workers_dead_is_a_typed_error() {
        use orv_cluster::{silence_injected_panics, FaultPlan, WorkerPanicSpec};
        silence_injected_panics();
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [4, 4, 1], 2);
        let plan = FaultPlan {
            seed: 5,
            worker_panics: vec![
                WorkerPanicSpec {
                    worker: 0,
                    after_ops: 0,
                },
                WorkerPanicSpec {
                    worker: 1,
                    after_ops: 0,
                },
            ],
            max_faults: 2,
            ..FaultPlan::none()
        };
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            faults: Some(plan.injector()),
            ..Default::default()
        };
        let err = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap_err();
        assert!(matches!(err, Error::Cluster(_)), "{err}");
        assert!(err.to_string().contains("died"), "{err}");
    }

    #[test]
    fn instrumented_run_records_phase_spans_and_metrics() {
        let (d, t1, t2) = deploy([8, 4, 2], [4, 4, 2], [4, 2, 2], 2);
        let obs = Obs::enabled();
        let cfg = IndexedJoinConfig {
            obs: obs.clone(),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let totals = obs.spans.total_secs_by_leaf();
        for leaf in ["transfer", "build", "probe"] {
            assert!(totals.contains_key(leaf), "missing {leaf}: {totals:?}");
        }
        // Worker spans live under compute-node groups `n{j}`, BDS spans
        // under `bds{n}` — both streams land in the one collector.
        let groups: std::collections::BTreeSet<String> = obs
            .spans
            .records()
            .into_iter()
            .map(|r| r.group().to_string())
            .collect();
        assert!(groups.iter().any(|g| g.starts_with('n')), "{groups:?}");
        assert!(groups.iter().any(|g| g.starts_with("bds")), "{groups:?}");
        let snap = obs.metrics.snapshot();
        assert_eq!(
            snap.counters.get("ij/result_tuples").copied(),
            Some(out.stats.result_tuples)
        );
        assert_eq!(
            snap.counters.get("ij/bytes_transferred").copied(),
            Some(out.stats.bytes_transferred)
        );
    }

    #[test]
    fn zero_compute_nodes_rejected() {
        let (d, t1, t2) = deploy([4, 4, 1], [2, 2, 1], [2, 2, 1], 1);
        let cfg = IndexedJoinConfig {
            n_compute: 0,
            ..Default::default()
        };
        assert!(indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).is_err());
    }
}
