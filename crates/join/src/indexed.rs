//! The distributed page-level Indexed Join on the threaded runtime.
//!
//! "Each compute node runs a QES instance that receives a pair of sub-table
//! ids to join. The QES instance checks with the local Cache Service
//! Instance to see if either of the sub-tables are present. If not, the QES
//! instance requests for the sub-tables from appropriate BDS instances
//! running on the storage nodes. It then performs a hash join on the
//! received pairs of sub-tables."
//!
//! Each compute node is an OS thread. Hash tables built on left sub-tables
//! are cached alongside the sub-tables themselves, so "a hash-table is
//! created only once for every left sub-table" as long as the §5.1 memory
//! assumption holds.

use crate::cache::{CacheService, CachedEntry};
use crate::connectivity::ConnectivityGraph;
use crate::hash_join::{HashJoiner, JoinCounters};
use crate::schedule::{schedule, SchedulePolicy};
use orv_bds::{BdsService, Deployment};
use orv_chunk::SubTable;
use orv_cluster::{ByteCounter, RunStats};
use orv_types::{BoundingBox, Error, Record, Result, SubTableId, TableId};
use parking_lot::Mutex;
use std::time::Instant;

/// Configuration of one Indexed Join execution.
#[derive(Clone, Debug)]
pub struct IndexedJoinConfig {
    /// Number of compute-node threads (`n_j`).
    pub n_compute: usize,
    /// Sub-table cache capacity per compute node, bytes.
    pub cache_capacity: u64,
    /// Scheduling strategy (paper default: two-stage lexicographic).
    pub policy: SchedulePolicy,
    /// Figure-8 work multiplier for hash build/probe.
    pub work_factor: u32,
    /// Collect result records (tests); otherwise only count them.
    pub collect_results: bool,
    /// Optional range constraint pushed into the connectivity graph and
    /// applied to fetched sub-tables.
    pub range: Option<BoundingBox>,
}

impl Default for IndexedJoinConfig {
    fn default() -> Self {
        IndexedJoinConfig {
            n_compute: 2,
            cache_capacity: 256 << 20,
            policy: SchedulePolicy::TwoStageLexicographic,
            work_factor: 1,
            collect_results: false,
            range: None,
        }
    }
}

/// Result of a distributed join execution.
#[derive(Debug)]
pub struct JoinOutput {
    /// Aggregated run statistics.
    pub stats: RunStats,
    /// Result records if `collect_results` was set.
    pub records: Option<Vec<Record>>,
}

/// Execute `left ⊕ right` on `join_attrs` with the Indexed Join QES,
/// using a fresh (query-lifetime) cache.
pub fn indexed_join(
    deployment: &Deployment,
    left: TableId,
    right: TableId,
    join_attrs: &[&str],
    cfg: &IndexedJoinConfig,
) -> Result<JoinOutput> {
    let cache = CacheService::new(cfg.n_compute, cfg.cache_capacity);
    indexed_join_cached(deployment, left, right, join_attrs, cfg, &cache)
}

/// Execute with an externally owned [`CacheService`], so repeated queries
/// find their working set warm. The service must have one shard per
/// compute node.
///
/// Cached sub-tables are stored *after* the `range` filter is applied, so
/// a service may only be shared between executions using the same `range`
/// (the query engine shares it for unconstrained view scans only).
pub fn indexed_join_cached(
    deployment: &Deployment,
    left: TableId,
    right: TableId,
    join_attrs: &[&str],
    cfg: &IndexedJoinConfig,
    cache: &CacheService,
) -> Result<JoinOutput> {
    if cfg.n_compute == 0 {
        return Err(Error::Config("indexed join needs at least one compute node".into()));
    }
    if cache.n_compute() != cfg.n_compute {
        return Err(Error::Config(format!(
            "cache service has {} shards but the join uses {} compute nodes",
            cache.n_compute(),
            cfg.n_compute
        )));
    }
    let md = deployment.metadata();

    // Consult (or build and persist) the page-level join index, then prune
    // by the range constraint.
    let graph = match (&cfg.range, md.get_join_index(left, right, join_attrs)) {
        (None, Some(pairs)) => {
            ConnectivityGraph::from_edges(left, right, join_attrs, pairs.as_ref().clone())
        }
        (maybe_range, _) => {
            let g = ConnectivityGraph::build(md, left, right, join_attrs, maybe_range.as_ref())?;
            if maybe_range.is_none() {
                md.put_join_index(left, right, join_attrs, g.edges().collect());
            }
            g
        }
    };

    let plans = schedule(&graph, cfg.n_compute, cfg.policy);
    let services = BdsService::for_all_nodes(deployment)?;
    let counters = JoinCounters::new();
    let transfer = ByteCounter::new();
    let results: Mutex<Vec<Record>> = Mutex::new(Vec::new());
    let start = Instant::now();

    let per_node: Vec<RunStats> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (node_idx, plan) in plans.iter().enumerate() {
            let services = &services;
            let counters = &counters;
            let transfer = &transfer;
            let results = &results;
            handles.push(scope.spawn(move || -> Result<RunStats> {
                let mut stats = RunStats::default();
                let shard = cache.shard(node_idx)?;
                let mut cache = shard.lock();
                let mut local_results = Vec::new();

                let fetch = |id: SubTableId,
                             stats: &mut RunStats|
                 -> Result<SubTable> {
                    let meta = md.chunk_meta(id)?;
                    let mut st = services[meta.node.index()].subtable(id)?;
                    if let Some(rg) = &cfg.range {
                        st = st.filter_range(rg)?;
                    }
                    stats.bytes_read_storage += meta.size_bytes();
                    stats.bytes_transferred += st.encoded_size() as u64;
                    transfer.add(st.encoded_size() as u64);
                    Ok(st)
                };

                for &(lid, rid) in plan {
                    // Left side: cached hash table or fetch + build.
                    let joiner = match cache.get(&lid) {
                        Some(CachedEntry::Left(j)) => {
                            stats.cache_hits += 1;
                            j.clone()
                        }
                        _ => {
                            stats.cache_misses += 1;
                            let st = fetch(lid, &mut stats)?;
                            let size = st.encoded_size() as u64;
                            let j = HashJoiner::build(&st, join_attrs, counters, cfg.work_factor)?;
                            cache.put(lid, CachedEntry::Left(j.clone()), size);
                            j
                        }
                    };
                    // Right side: cached sub-table or fetch.
                    let rst = match cache.get(&rid) {
                        Some(CachedEntry::Right(st)) => {
                            stats.cache_hits += 1;
                            st.clone()
                        }
                        _ => {
                            stats.cache_misses += 1;
                            let st = fetch(rid, &mut stats)?;
                            cache.put(rid, CachedEntry::Right(st.clone()), st.encoded_size() as u64);
                            st
                        }
                    };
                    let produced = if cfg.collect_results {
                        joiner.probe(&rst, join_attrs, counters, |r| local_results.push(r))?
                    } else {
                        joiner.probe(&rst, join_attrs, counters, |_| {})?
                    };
                    stats.result_tuples += produced;
                }
                if cfg.collect_results {
                    results.lock().append(&mut local_results);
                }
                Ok(stats)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| Error::Cluster("compute thread panicked".into()))?)
            .collect::<Result<Vec<_>>>()
    })?;

    let mut stats = RunStats::default();
    for s in &per_node {
        stats.merge(s);
    }
    stats.wall_secs = start.elapsed().as_secs_f64();
    stats.hash_builds = counters.builds();
    stats.hash_probes = counters.probes();
    Ok(JoinOutput {
        stats,
        records: cfg.collect_results.then(|| results.into_inner()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{nested_loop_join, sort_records};
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_types::Interval;

    fn deploy(
        grid: [u64; 3],
        p1: [u64; 3],
        p2: [u64; 3],
        nodes: usize,
    ) -> (Deployment, TableId, TableId) {
        let d = Deployment::in_memory(nodes);
        let t1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid(grid)
                .partition(p1)
                .scalar_attrs(&["oilp"])
                .seed(1)
                .build(),
            &d,
        )
        .unwrap();
        let t2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid(grid)
                .partition(p2)
                .scalar_attrs(&["wp"])
                .seed(2)
                .build(),
            &d,
        )
        .unwrap();
        (d, t1.table, t2.table)
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let cfg = IndexedJoinConfig {
            n_compute: 3,
            collect_results: true,
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(out.stats.result_tuples as usize, expected.len());
        assert_eq!(
            sort_records(out.records.unwrap()),
            sort_records(expected)
        );
    }

    #[test]
    fn selectivity_one_produces_t_tuples() {
        let (d, t1, t2) = deploy([8, 4, 2], [4, 4, 2], [4, 2, 2], 2);
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        assert_eq!(out.stats.result_tuples, 64);
        assert!(out.records.is_none());
    }

    #[test]
    fn big_cache_never_refetches() {
        let (d, t1, t2) = deploy([8, 8, 1], [2, 2, 1], [4, 4, 1], 2);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            cache_capacity: 1 << 30,
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        // 16 left + 4 right sub-tables fetched exactly once each; with the
        // two-stage schedule every pair beyond the first per sub-table hits.
        assert_eq!(out.stats.cache_misses, 20);
        let expected_bytes = 16 * 4 * 16 + 4 * 16 * 16; // chunks × rows × record size
        assert_eq!(out.stats.bytes_transferred as usize, expected_bytes);
    }

    #[test]
    fn tiny_cache_still_correct() {
        let (d, t1, t2) = deploy([8, 8, 1], [2, 2, 1], [4, 4, 1], 2);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            cache_capacity: 1, // nothing fits
            collect_results: true,
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        assert_eq!(out.stats.cache_hits, 0);
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn range_constraint_prunes_and_matches_oracle() {
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [2, 2, 1], 2);
        let range = BoundingBox::from_dims([
            ("x", Interval::new(0.0, 3.0)),
            ("y", Interval::new(2.0, 5.0)),
        ]);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            collect_results: true,
            range: Some(range.clone()),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], Some(&range)).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        assert_eq!(out.stats.result_tuples, 16);
    }

    #[test]
    fn all_policies_agree() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 2, 2], [2, 4, 1], 3);
        let mut outputs = Vec::new();
        for policy in [
            SchedulePolicy::TwoStageLexicographic,
            SchedulePolicy::RandomPairOrder(9),
            SchedulePolicy::PairRoundRobin,
        ] {
            let cfg = IndexedJoinConfig {
                n_compute: 2,
                policy,
                collect_results: true,
                ..Default::default()
            };
            let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
            outputs.push(sort_records(out.records.unwrap()));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn work_factor_changes_ops_not_output() {
        let (d, t1, t2) = deploy([4, 4, 1], [2, 2, 1], [2, 2, 1], 1);
        let base = indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        let cfg = IndexedJoinConfig {
            work_factor: 3,
            ..Default::default()
        };
        let tripled = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        assert_eq!(base.stats.result_tuples, tripled.stats.result_tuples);
        assert_eq!(tripled.stats.hash_builds, 3 * base.stats.hash_builds);
        assert_eq!(tripled.stats.hash_probes, 3 * base.stats.hash_probes);
    }

    #[test]
    fn join_index_is_persisted_and_reused() {
        let (d, t1, t2) = deploy([4, 4, 1], [2, 2, 1], [2, 2, 1], 1);
        assert!(d.metadata().get_join_index(t1, t2, &["x", "y", "z"]).is_none());
        indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        let idx = d.metadata().get_join_index(t1, t2, &["x", "y", "z"]).unwrap();
        assert_eq!(idx.len(), 4); // identical partitions → 1:1 pairs
        // Second run consumes the stored index (still correct).
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig::default()).unwrap();
        assert_eq!(out.stats.result_tuples, 16);
    }

    #[test]
    fn zero_compute_nodes_rejected() {
        let (d, t1, t2) = deploy([4, 4, 1], [2, 2, 1], [2, 2, 1], 1);
        let cfg = IndexedJoinConfig {
            n_compute: 0,
            ..Default::default()
        };
        assert!(indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).is_err());
    }
}
