//! The in-memory hash join sub-routine.
//!
//! Both QES implementations join a pair of in-memory record sets by
//! building a hash table on the left (inner) side and probing it with the
//! right (outer) side. The build stores *row indices* (the paper stores "a
//! pointer to the relevant record"), so build cost is independent of record
//! size — which is why the cost models can use flat `α_build`/`α_lookup`
//! constants. Neither build nor probe materializes row objects: keys are
//! gathered straight from the columnar sub-tables, and output records are
//! only assembled for actual matches.
//!
//! [`JoinCounters`] tallies every insert and lookup; the threaded runtime
//! aggregates these across nodes and the calibration harness divides wall
//! time by them to measure `α` on the host.

use orv_chunk::SubTable;
use orv_types::{DataType, Record, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key-family flag: floats and ints hash into disjoint key spaces.
///
/// [`Value`] equality is family-first — `I32(7) == I64(7)` but no int
/// ever equals a float — and `Value::key_bits` is only canonical
/// *within* a family. A column's family is constant (it is determined
/// by the schema's [`DataType`]), so the join can key its hash table on
/// raw `u64` key bits and compare the per-column family vectors once
/// per probe instead of tagging every value.
#[inline]
fn is_float(ty: DataType) -> bool {
    matches!(ty, DataType::F32 | DataType::F64)
}

/// The canonical key bits of one key column, gathered in a single pass.
fn gather_key_bits(st: &SubTable, col: usize) -> Vec<u64> {
    st.column(col).iter().map(|v| v.key_bits()).collect()
}

/// Shared counters for hash-join operations.
#[derive(Clone, Default, Debug)]
pub struct JoinCounters {
    builds: Arc<AtomicU64>,
    probes: Arc<AtomicU64>,
    results: Arc<AtomicU64>,
}

impl JoinCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hash-table inserts performed.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Hash-table lookups performed.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Result tuples produced.
    pub fn results(&self) -> u64 {
        self.results.load(Ordering::Relaxed)
    }
}

/// A built hash table over one left-side sub-table.
///
/// IJ caches these per left sub-table ("a hash-table is created only once
/// for every left sub-table"), so the type is cheap to clone and share:
/// the table is `Arc`ed and the sub-table's columns already are.
#[derive(Clone)]
pub struct HashJoiner {
    /// canonical key bits (one `u64` per key attribute) → row indices in
    /// the build side. Keys are compared as raw bits; families are
    /// checked once per probe (see [`is_float`]).
    table: Arc<HashMap<Box<[u64]>, Vec<u32>>>,
    /// Per-key-position family flags of the build side.
    families: Arc<[bool]>,
    /// The build-side sub-table, pinned behind an `Arc` so cache hits
    /// and clones are refcount bumps — no column vector is ever copied.
    left: Arc<SubTable>,
    /// Work multiplier (Figure 8's repeated-instructions trick): every
    /// build/probe is performed `work_factor` times.
    work_factor: u32,
}

impl HashJoiner {
    /// Build a hash table over `left`'s rows keyed by `key_attrs`.
    ///
    /// Columnar: the key bits of each key attribute are gathered in one
    /// pass per column, then the insert loop works on plain `u64`s —
    /// no per-row `Vec<Value>` is allocated.
    pub fn build(
        left: Arc<SubTable>,
        key_attrs: &[&str],
        counters: &JoinCounters,
        work_factor: u32,
    ) -> Result<Self> {
        let key_indices: Vec<usize> = key_attrs
            .iter()
            .map(|a| left.schema().require(a))
            .collect::<Result<_>>()?;
        let families: Arc<[bool]> = key_indices
            .iter()
            .map(|&i| is_float(left.schema().attrs()[i].dtype))
            .collect();
        let key_cols: Vec<Vec<u64>> = key_indices
            .iter()
            .map(|&i| gather_key_bits(&left, i))
            .collect();
        let nrows = left.num_rows();
        let mut table: HashMap<Box<[u64]>, Vec<u32>> = HashMap::with_capacity(nrows);
        let reps = work_factor.max(1);
        let mut key = vec![0u64; key_indices.len()];
        for rep in 0..reps {
            for r in 0..nrows {
                for (k, col) in key.iter_mut().zip(&key_cols) {
                    *k = col[r];
                }
                if rep == 0 {
                    match table.get_mut(key.as_slice()) {
                        Some(rows) => rows.push(r as u32),
                        None => {
                            table.insert(key.clone().into_boxed_slice(), vec![r as u32]);
                        }
                    }
                } else {
                    // Repeated work: re-hash and look up, discarding the
                    // result, exactly like re-running the insert
                    // instructions on a slower CPU.
                    std::hint::black_box(table.get(key.as_slice()));
                }
            }
        }
        counters
            .builds
            .fetch_add(nrows as u64 * reps as u64, Ordering::Relaxed);
        Ok(HashJoiner {
            table: Arc::new(table),
            families,
            left,
            work_factor: reps,
        })
    }

    /// Number of distinct keys in the table.
    pub fn num_keys(&self) -> usize {
        self.table.len()
    }

    /// Number of build-side rows.
    pub fn num_rows(&self) -> usize {
        self.left.num_rows()
    }

    /// Probe with every row of `right`; for each match, emit
    /// `left_row ⨝ right_row` (right key fields dropped) through `on_match`.
    /// Returns the number of result tuples.
    ///
    /// Columnar: right-side key bits are gathered per column up front;
    /// the match loop compares raw `u64`s. Matches are collected as
    /// `(left_row, right_row)` pairs and rows are materialized only for
    /// actual matches, at the end — the probe loop itself builds no
    /// [`Record`].
    pub fn probe(
        &self,
        right: &SubTable,
        key_attrs: &[&str],
        counters: &JoinCounters,
        mut on_match: impl FnMut(Record),
    ) -> Result<u64> {
        let right_keys: Vec<usize> = key_attrs
            .iter()
            .map(|a| right.schema().require(a))
            .collect::<Result<_>>()?;
        let nrows = right.num_rows();
        // Family mismatch on any key position (int column joined against
        // float column) means no right key can equal any build key —
        // `Value` equality never crosses families. Raw key bits could
        // collide across families, so skip lookups entirely; the op
        // counters still tick exactly as the row path did.
        let families_match = right_keys.len() == self.families.len()
            && right_keys
                .iter()
                .zip(self.families.iter())
                .all(|(&i, &fam)| is_float(right.schema().attrs()[i].dtype) == fam);
        let mut produced = 0u64;
        if families_match {
            let key_cols: Vec<Vec<u64>> = right_keys
                .iter()
                .map(|&i| gather_key_bits(right, i))
                .collect();
            let mut key = vec![0u64; right_keys.len()];
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for rep in 0..self.work_factor {
                for ri in 0..nrows {
                    for (k, col) in key.iter_mut().zip(&key_cols) {
                        *k = col[ri];
                    }
                    if rep > 0 {
                        std::hint::black_box(self.table.get(key.as_slice()));
                        continue;
                    }
                    if let Some(rows) = self.table.get(key.as_slice()) {
                        pairs.extend(rows.iter().map(|&li| (li, ri as u32)));
                    }
                }
            }
            produced = pairs.len() as u64;
            // Materialize the matches: left row ++ right row minus its
            // key fields. This is the row edge of the join.
            let left_arity = self.left.schema().arity();
            let right_cols: Vec<usize> = (0..right.schema().arity())
                .filter(|c| !right_keys.contains(c))
                .collect();
            for (li, ri) in pairs {
                let mut vals = Vec::with_capacity(left_arity + right_cols.len());
                for c in 0..left_arity {
                    vals.push(self.left.value(li as usize, c));
                }
                for &c in &right_cols {
                    vals.push(right.value(ri as usize, c));
                }
                on_match(Record::new(vals));
            }
        }
        counters
            .probes
            .fetch_add(nrows as u64 * self.work_factor as u64, Ordering::Relaxed);
        counters.results.fetch_add(produced, Ordering::Relaxed);
        Ok(produced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_types::{Schema, SubTableId, Value};
    use std::sync::Arc as StdArc;

    fn left() -> SubTable {
        let schema = StdArc::new(Schema::grid(&["x", "y"], &["oilp"]).unwrap());
        let cols = vec![
            vec![Value::I32(0), Value::I32(1), Value::I32(1)],
            vec![Value::I32(0), Value::I32(0), Value::I32(1)],
            vec![Value::F32(0.1), Value::F32(0.2), Value::F32(0.3)],
        ];
        SubTable::from_columns(SubTableId::new(0u32, 0u32), schema, cols).unwrap()
    }

    fn right() -> SubTable {
        let schema = StdArc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap());
        let cols = vec![
            vec![Value::I32(1), Value::I32(0), Value::I32(2)],
            vec![Value::I32(0), Value::I32(0), Value::I32(2)],
            vec![Value::F32(0.5), Value::F32(0.6), Value::F32(0.7)],
        ];
        SubTable::from_columns(SubTableId::new(1u32, 0u32), schema, cols).unwrap()
    }

    #[test]
    fn joins_matching_keys() {
        let counters = JoinCounters::new();
        let hj = HashJoiner::build(StdArc::new(left()), &["x", "y"], &counters, 1).unwrap();
        assert_eq!(hj.num_rows(), 3);
        assert_eq!(hj.num_keys(), 3);
        let mut out = Vec::new();
        let n = hj
            .probe(&right(), &["x", "y"], &counters, |r| out.push(r))
            .unwrap();
        assert_eq!(n, 2);
        // (1,0) matches and (0,0) matches; (2,2) does not.
        out.sort_by_key(|r| (r.values()[0], r.values()[1]));
        assert_eq!(
            out[0].values(),
            &[
                Value::I32(0),
                Value::I32(0),
                Value::F32(0.1),
                Value::F32(0.6)
            ]
        );
        assert_eq!(
            out[1].values(),
            &[
                Value::I32(1),
                Value::I32(0),
                Value::F32(0.2),
                Value::F32(0.5)
            ]
        );
        assert_eq!(counters.builds(), 3);
        assert_eq!(counters.probes(), 3);
        assert_eq!(counters.results(), 2);
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let schema = StdArc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let cols = vec![
            vec![Value::I32(5), Value::I32(5)],
            vec![Value::F32(1.0), Value::F32(2.0)],
        ];
        let l = SubTable::from_columns(SubTableId::new(0u32, 0u32), schema.clone(), cols).unwrap();
        let r_cols = vec![vec![Value::I32(5)], vec![Value::F32(9.0)]];
        let r = SubTable::from_columns(SubTableId::new(1u32, 0u32), schema, r_cols).unwrap();
        let counters = JoinCounters::new();
        let hj = HashJoiner::build(StdArc::new(l), &["x"], &counters, 1).unwrap();
        assert_eq!(hj.num_keys(), 1);
        let n = hj.probe(&r, &["x"], &counters, |_| {}).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn work_factor_multiplies_op_counts_not_results() {
        let counters = JoinCounters::new();
        let hj = HashJoiner::build(StdArc::new(left()), &["x", "y"], &counters, 3).unwrap();
        let n = hj.probe(&right(), &["x", "y"], &counters, |_| {}).unwrap();
        assert_eq!(n, 2, "results unchanged by work factor");
        assert_eq!(counters.builds(), 9);
        assert_eq!(counters.probes(), 9);
        assert_eq!(counters.results(), 2);
    }

    #[test]
    fn missing_key_attr_errors() {
        let counters = JoinCounters::new();
        assert!(HashJoiner::build(StdArc::new(left()), &["zzz"], &counters, 1).is_err());
        let hj = HashJoiner::build(StdArc::new(left()), &["x"], &counters, 1).unwrap();
        assert!(hj.probe(&right(), &["zzz"], &counters, |_| {}).is_err());
    }

    #[test]
    fn empty_sides_produce_nothing() {
        let counters = JoinCounters::new();
        let schema = StdArc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let empty = StdArc::new(SubTable::empty(SubTableId::new(0u32, 0u32), schema));
        let hj = HashJoiner::build(StdArc::clone(&empty), &["x"], &counters, 1).unwrap();
        let n = hj.probe(&empty, &["x"], &counters, |_| {}).unwrap();
        assert_eq!(n, 0);
        assert_eq!(counters.builds(), 0);
    }

    #[test]
    fn family_mismatch_matches_nothing_but_counts_probes() {
        // Build keyed on an int column, probe keyed on a float column
        // whose key bits collide with the int's: `Value` equality never
        // crosses families, so the join must produce nothing.
        let counters = JoinCounters::new();
        let lschema = StdArc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let l_cols = vec![vec![Value::I32(1)], vec![Value::F32(0.5)]];
        let l = SubTable::from_columns(SubTableId::new(0u32, 0u32), lschema, l_cols).unwrap();
        let rschema = StdArc::new(
            Schema::new(vec![orv_types::Attribute::scalar(
                "x",
                orv_types::DataType::F64,
            )])
            .unwrap(),
        );
        let bits_one = f64::from_bits(Value::I32(1).key_bits());
        let r_cols = vec![vec![Value::F64(bits_one)]];
        let r = SubTable::from_columns(SubTableId::new(1u32, 0u32), rschema, r_cols).unwrap();
        let hj = HashJoiner::build(StdArc::new(l), &["x"], &counters, 1).unwrap();
        let n = hj
            .probe(&r, &["x"], &counters, |_| panic!("no match expected"))
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(counters.probes(), 1, "probe work still counted");
        assert_eq!(counters.results(), 0);
    }

    #[test]
    fn cloned_joiner_shares_build_side() {
        let counters = JoinCounters::new();
        let l = StdArc::new(left());
        let hj = HashJoiner::build(StdArc::clone(&l), &["x", "y"], &counters, 1).unwrap();
        let hj2 = hj.clone();
        assert!(
            StdArc::ptr_eq(&hj.left, &hj2.left),
            "clone is a refcount bump"
        );
        assert!(
            StdArc::ptr_eq(&hj2.left, &l),
            "build side pinned, not copied"
        );
    }

    #[test]
    fn key_order_respected_across_schemas() {
        // Joining on (y, x) — key positions differ from storage order.
        let counters = JoinCounters::new();
        let hj = HashJoiner::build(StdArc::new(left()), &["y", "x"], &counters, 1).unwrap();
        let n = hj.probe(&right(), &["y", "x"], &counters, |_| {}).unwrap();
        assert_eq!(n, 2);
    }
}
