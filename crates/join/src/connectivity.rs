//! The page-level join index and sub-table connectivity graph.
//!
//! Sub-tables whose bounding boxes overlap on the join attributes are
//! *candidate pairs*; the set of pairs forms the sub-table connectivity
//! graph (paper Figure 3). Independent connected components of the graph
//! are the IJ scheduler's unit of placement.
//!
//! For regularly partitioned grids the paper gives closed forms for the
//! component size `C`, component count `N_C` and per-component edge count
//! `E_C` (Section 6); [`predict_regular`] implements them and the test
//! suite checks the built graph against them exactly.

use orv_metadata::MetadataService;
use orv_types::{BoundingBox, Result, SubTableId, TableId};
use std::collections::HashMap;

/// One connected component: `a` left sub-tables × `b` right sub-tables and
/// the candidate edges among them.
#[derive(Clone, Debug)]
pub struct Component {
    /// Left-table sub-tables in this component.
    pub lefts: Vec<SubTableId>,
    /// Right-table sub-tables in this component.
    pub rights: Vec<SubTableId>,
    /// Candidate pairs `(left, right)`.
    pub edges: Vec<(SubTableId, SubTableId)>,
}

impl Component {
    /// `a`: number of left sub-tables.
    pub fn a(&self) -> usize {
        self.lefts.len()
    }

    /// `b`: number of right sub-tables.
    pub fn b(&self) -> usize {
        self.rights.len()
    }
}

/// The sub-table connectivity graph of one join view.
#[derive(Clone, Debug)]
pub struct ConnectivityGraph {
    /// Left (inner) table.
    pub left_table: TableId,
    /// Right (outer) table.
    pub right_table: TableId,
    /// Join attribute names.
    pub join_attrs: Vec<String>,
    /// Connected components, each sorted lexicographically internally;
    /// components ordered by their smallest left sub-table id.
    pub components: Vec<Component>,
}

impl ConnectivityGraph {
    /// Build the page-level join index for `left ⊕ right` on `join_attrs`,
    /// optionally pruned by a range constraint ("any additional range
    /// constraints may be applied at the sub-table level to prune away
    /// unwanted edges and nodes").
    pub fn build(
        md: &MetadataService,
        left: TableId,
        right: TableId,
        join_attrs: &[&str],
        range: Option<&BoundingBox>,
    ) -> Result<Self> {
        let snapshot = |table: TableId| -> Result<Vec<(SubTableId, BoundingBox)>> {
            md.with_chunks(table, |chunks| {
                chunks
                    .iter()
                    .map(|m| (m.subtable_id(), m.bbox.clone()))
                    .collect()
            })
        };
        let lefts = snapshot(left)?;
        let rights = snapshot(right)?;
        let in_range = |bbox: &BoundingBox| range.is_none_or(|rg| bbox.overlaps(rg));

        let mut edges: Vec<(SubTableId, SubTableId)> = Vec::new();
        for (lid, lbox) in lefts.iter().filter(|(_, b)| in_range(b)) {
            for (rid, rbox) in rights.iter().filter(|(_, b)| in_range(b)) {
                if lbox.overlaps_on(rbox, Some(join_attrs)) {
                    edges.push((*lid, *rid));
                }
            }
        }
        Ok(Self::from_edges(left, right, join_attrs, edges))
    }

    /// Assemble a graph from an explicit edge list (e.g. a precomputed
    /// index fetched from the MetaData service).
    pub fn from_edges(
        left: TableId,
        right: TableId,
        join_attrs: &[&str],
        mut edges: Vec<(SubTableId, SubTableId)>,
    ) -> Self {
        edges.sort();
        edges.dedup();

        // Union-find over left ∪ right node sets.
        let mut dsu = Dsu::new();
        for &(l, r) in &edges {
            dsu.union(NodeKey::Left(l), NodeKey::Right(r));
        }
        // Group edges by component root.
        let mut by_root: HashMap<NodeKey, Component> = HashMap::new();
        for &(l, r) in &edges {
            let root = dsu.find(NodeKey::Left(l));
            let comp = by_root.entry(root).or_insert_with(|| Component {
                lefts: Vec::new(),
                rights: Vec::new(),
                edges: Vec::new(),
            });
            if !comp.lefts.contains(&l) {
                comp.lefts.push(l);
            }
            if !comp.rights.contains(&r) {
                comp.rights.push(r);
            }
            comp.edges.push((l, r));
        }
        let mut components: Vec<Component> = by_root.into_values().collect();
        for c in &mut components {
            c.lefts.sort();
            c.rights.sort();
            c.edges.sort();
        }
        components.sort_by_key(|c| c.lefts[0]);
        ConnectivityGraph {
            left_table: left,
            right_table: right,
            join_attrs: join_attrs.iter().map(|s| s.to_string()).collect(),
            components,
        }
    }

    /// All edges across components, in component order.
    pub fn edges(&self) -> impl Iterator<Item = (SubTableId, SubTableId)> + '_ {
        self.components.iter().flat_map(|c| c.edges.iter().copied())
    }

    /// Total number of edges (`n_e`).
    pub fn num_edges(&self) -> usize {
        self.components.iter().map(|c| c.edges.len()).sum()
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Summary statistics for cost-model input.
    pub fn stats(&self, total_tuples: u64, c_r: u64, c_s: u64) -> ConnectivityStats {
        let n_e = self.num_edges() as u64;
        let m_s = total_tuples.checked_div(c_s).unwrap_or(0);
        ConnectivityStats {
            n_e,
            num_components: self.num_components() as u64,
            avg_a: avg(self.components.iter().map(Component::a)),
            avg_b: avg(self.components.iter().map(Component::b)),
            avg_right_degree: if m_s == 0 {
                0.0
            } else {
                n_e as f64 / m_s as f64
            },
            edge_ratio: if total_tuples == 0 {
                0.0
            } else {
                n_e as f64 * c_r as f64 * c_s as f64 / (total_tuples as f64 * total_tuples as f64)
            },
        }
    }
}

fn avg(it: impl Iterator<Item = usize>) -> f64 {
    let (mut sum, mut n) = (0usize, 0usize);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

/// Dataset-level statistics of a connectivity graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectivityStats {
    /// Total edges `n_e`.
    pub n_e: u64,
    /// Number of connected components.
    pub num_components: u64,
    /// Mean left sub-tables per component (`a`).
    pub avg_a: f64,
    /// Mean right sub-tables per component (`b`).
    pub avg_b: f64,
    /// Mean degree of a right sub-table: `n_e / m_S`.
    pub avg_right_degree: f64,
    /// The earlier works' edge-ratio `n_e · c_R · c_S / T²`.
    pub edge_ratio: f64,
}

/// Closed-form prediction of the connectivity graph shape for a regular
/// grid `g` partitioned `p` (left) and `q` (right) — paper Section 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegularPrediction {
    /// Component size `C = (max(p_d, q_d))_d` in grid points.
    pub component_size: [u64; 3],
    /// Number of components `N_C`.
    pub n_c: u64,
    /// Edges per component `E_C`.
    pub e_c: u64,
    /// Total edges `n_e = N_C · E_C`.
    pub n_e: u64,
    /// Left sub-tables per component `a`.
    pub a: u64,
    /// Right sub-tables per component `b`.
    pub b: u64,
}

/// Evaluate the paper's `C`, `N_C`, `E_C` formulas.
///
/// Assumes `p` and `q` divide `g` (as in all paper experiments).
pub fn predict_regular(g: [u64; 3], p: [u64; 3], q: [u64; 3]) -> RegularPrediction {
    let c = [0, 1, 2].map(|d| p[d].max(q[d]));
    let n_c = (g[0] * g[1] * g[2]) / (c[0] * c[1] * c[2]);
    let e_c: u64 = (0..3)
        .map(|d| p[d].max(q[d]).div_ceil(p[d].min(q[d])))
        .product();
    let a: u64 = (0..3).map(|d| c[d] / p[d]).product();
    let b: u64 = (0..3).map(|d| c[d] / q[d]).product();
    RegularPrediction {
        component_size: c,
        n_c,
        e_c,
        n_e: n_c * e_c,
        a,
        b,
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum NodeKey {
    Left(SubTableId),
    Right(SubTableId),
}

/// A tiny hash-based union-find.
struct Dsu {
    parent: HashMap<NodeKey, NodeKey>,
}

impl Dsu {
    fn new() -> Self {
        Dsu {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, k: NodeKey) -> NodeKey {
        let p = *self.parent.entry(k).or_insert(k);
        if p == k {
            return k;
        }
        let root = self.find(p);
        self.parent.insert(k, root);
        root
    }

    fn union(&mut self, a: NodeKey, b: NodeKey) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(t: u32, c: u32) -> SubTableId {
        SubTableId::new(t, c)
    }

    #[test]
    fn figure3_shape_from_edges() {
        // Figure 3: a component with a=2 left, b=4 right, complete bipartite
        // 8 edges — e.g. left partitioned (2,1,1)-ish vs right (1,2,1)-ish.
        let mut edges = Vec::new();
        for l in 0..2u32 {
            for r in 0..4u32 {
                edges.push((sid(0, l), sid(1, r)));
            }
        }
        // Plus a second identical component on different sub-tables.
        for l in 2..4u32 {
            for r in 4..8u32 {
                edges.push((sid(0, l), sid(1, r)));
            }
        }
        let g = ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x", "y"], edges);
        assert_eq!(g.num_components(), 2);
        assert_eq!(g.num_edges(), 16);
        for c in &g.components {
            assert_eq!(c.a(), 2);
            assert_eq!(c.b(), 4);
            assert_eq!(c.edges.len(), 8);
        }
    }

    #[test]
    fn duplicate_edges_deduped() {
        let edges = vec![(sid(0, 0), sid(1, 0)), (sid(0, 0), sid(1, 0))];
        let g = ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x"], edges);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_components(), 1);
    }

    #[test]
    fn prediction_matches_paper_formulas() {
        // g = 64³, p = (16,16,16), q = (32,8,16):
        // C = (32,16,16), N_C = 64³/(32·16·16) = 32,
        // E_C = ceil(32/16)·ceil(16/8)·1 = 4, a = (32/16)(16/16)(16/16) = 2,
        // b = (32/32)(16/8)(16/16) = 2.
        let pred = predict_regular([64, 64, 64], [16, 16, 16], [32, 8, 16]);
        assert_eq!(pred.component_size, [32, 16, 16]);
        assert_eq!(pred.n_c, 32);
        assert_eq!(pred.e_c, 4);
        assert_eq!(pred.n_e, 128);
        assert_eq!(pred.a, 2);
        assert_eq!(pred.b, 2);
    }

    #[test]
    fn identical_partitions_one_to_one() {
        let pred = predict_regular([8, 8, 8], [2, 2, 2], [2, 2, 2]);
        assert_eq!(pred.e_c, 1);
        assert_eq!(pred.a, 1);
        assert_eq!(pred.b, 1);
        assert_eq!(pred.n_c, 64);
        assert_eq!(pred.n_e, 64);
    }

    #[test]
    fn stats_computation() {
        let edges = vec![
            (sid(0, 0), sid(1, 0)),
            (sid(0, 0), sid(1, 1)),
            (sid(0, 1), sid(1, 2)),
        ];
        let g = ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x"], edges);
        // T = 64, c_R = 16, c_S = 16 → m_S = 4.
        let s = g.stats(64, 16, 16);
        assert_eq!(s.n_e, 3);
        assert_eq!(s.num_components, 2);
        assert_eq!(s.avg_right_degree, 0.75);
        assert!((s.edge_ratio - 3.0 * 256.0 / 4096.0).abs() < 1e-12);
        assert_eq!(s.avg_a, 1.0);
        assert_eq!(s.avg_b, 1.5);
    }

    #[test]
    fn empty_graph() {
        let g = ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x"], vec![]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_components(), 0);
        let s = g.stats(0, 0, 0);
        assert_eq!(s.n_e, 0);
        assert_eq!(s.avg_right_degree, 0.0);
    }
}
