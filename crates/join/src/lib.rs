//! The join-based Derived Data Source: distributed Indexed Join and Grace
//! Hash join Query Execution Systems.
//!
//! This crate implements the paper's two join algorithms twice — once for
//! real on the threaded cluster runtime, once against the discrete-event
//! simulator — plus the structures they share:
//!
//! * [`hash_join`] — the in-memory hash join both algorithms use as a
//!   sub-routine, with per-operation counters (these are the `α_build` /
//!   `α_lookup` events of the cost models);
//! * [`lru`] / [`cache`] — the byte-capacity LRU and the Caching Service
//!   built from it (per-compute-node shards that outlive single queries);
//! * [`connectivity`] — the page-level join index: candidate sub-table
//!   pairs, the sub-table connectivity graph, its connected components, and
//!   the paper's closed forms for `C`, `N_C`, `E_C`;
//! * [`schedule`] — the two-stage IJ scheduling strategy (components split
//!   evenly over compute nodes, then lexicographic pair order), plus
//!   ablation variants;
//! * [`indexed`] / [`grace`] — the threaded-runtime executions;
//! * [`sim_exec`] — the simulator executions at paper scale;
//! * [`mod@reference`] — a nested-loop oracle used by the test suite.

pub mod cache;
pub mod connectivity;
pub mod grace;
pub mod hash_join;
pub mod indexed;
pub mod lru;
pub mod reference;
pub mod schedule;
pub mod sim_exec;

pub use cache::{left_key_tag, CacheKey, CacheService, CachedEntry, BUCKETS_PER_NODE};
pub use connectivity::{ConnectivityGraph, ConnectivityStats};
pub use grace::{grace_hash_join, GraceHashConfig};
pub use hash_join::{HashJoiner, JoinCounters};
pub use indexed::{indexed_join, indexed_join_cached, IndexedJoinConfig, JoinOutput};
pub use lru::{CacheStats, LruCache};
pub use schedule::SchedulePolicy;
pub use sim_exec::{
    simulate_grace_hash, simulate_indexed_join, simulate_indexed_join_with_cache, SimBreakdown,
    SimProblem,
};

/// Which QES executes a join-based view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinAlgorithm {
    /// Page-level Indexed Join.
    IndexedJoin,
    /// Grace Hash join (output-partitioned).
    GraceHash,
}

impl std::fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinAlgorithm::IndexedJoin => write!(f, "IJ"),
            JoinAlgorithm::GraceHash => write!(f, "GH"),
        }
    }
}
