//! Nested-loop reference join — the correctness oracle.
//!
//! Gathers every sub-table of both tables through the BDS services and
//! joins them by brute force. Quadratic and single-threaded on purpose:
//! no scheduling, caching, hashing or partitioning code is shared with the
//! algorithms under test.

use orv_bds::{BdsService, Deployment};
use orv_types::{BoundingBox, Record, Result, SubTableId, TableId};

/// Materialize every record of `table`, optionally filtered by `range`.
pub fn scan_table(
    deployment: &Deployment,
    table: TableId,
    range: Option<&BoundingBox>,
) -> Result<Vec<Record>> {
    let services = BdsService::for_all_nodes(deployment)?;
    let md = deployment.metadata();
    let mut out = Vec::new();
    for chunk in md.all_chunks(table)? {
        let id = SubTableId { table, chunk };
        let meta = md.chunk_meta(id)?;
        if let Some(rg) = range {
            if !meta.bbox.overlaps(rg) {
                continue;
            }
        }
        let mut st = services[meta.node.index()].subtable(id)?;
        if let Some(rg) = range {
            st = st.filter_range(rg)?;
        }
        out.extend(st.records());
    }
    Ok(out)
}

/// Nested-loop equi-join of two tables on `join_attrs`, optionally range
/// constrained. Output records are `left ⨝ right` with right key fields
/// dropped (matching the hash-join output shape), in unspecified order.
pub fn nested_loop_join(
    deployment: &Deployment,
    left: TableId,
    right: TableId,
    join_attrs: &[&str],
    range: Option<&BoundingBox>,
) -> Result<Vec<Record>> {
    let md = deployment.metadata();
    let lschema = md.schema(left)?;
    let rschema = md.schema(right)?;
    let lkeys: Vec<usize> = join_attrs
        .iter()
        .map(|a| lschema.require(a))
        .collect::<Result<_>>()?;
    let rkeys: Vec<usize> = join_attrs
        .iter()
        .map(|a| rschema.require(a))
        .collect::<Result<_>>()?;

    let lrecs = scan_table(deployment, left, range)?;
    let rrecs = scan_table(deployment, right, range)?;
    let mut out = Vec::new();
    for l in &lrecs {
        let lk = l.key(&lkeys);
        for r in &rrecs {
            if lk == r.key(&rkeys) {
                out.push(l.join(r, &rkeys));
            }
        }
    }
    Ok(out)
}

/// Sort records for order-insensitive comparison in tests.
pub fn sort_records(mut records: Vec<Record>) -> Vec<Record> {
    records.sort_by(|a, b| a.values().cmp(b.values()));
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_types::Interval;

    fn two_tables() -> (Deployment, TableId, TableId) {
        let d = Deployment::in_memory(2);
        let t1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid([4, 4, 1])
                .partition([2, 2, 1])
                .scalar_attrs(&["oilp"])
                .seed(1)
                .build(),
            &d,
        )
        .unwrap();
        let t2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid([4, 4, 1])
                .partition([4, 2, 1])
                .scalar_attrs(&["wp"])
                .seed(2)
                .build(),
            &d,
        )
        .unwrap();
        (d, t1.table, t2.table)
    }

    #[test]
    fn scan_returns_all_tuples() {
        let (d, t1, _) = two_tables();
        let recs = scan_table(&d, t1, None).unwrap();
        assert_eq!(recs.len(), 16);
    }

    #[test]
    fn scan_with_range_filters_rows() {
        let (d, t1, _) = two_tables();
        let range = BoundingBox::from_dims([("x", Interval::new(0.0, 1.0))]);
        let recs = scan_table(&d, t1, Some(&range)).unwrap();
        assert_eq!(recs.len(), 8);
    }

    #[test]
    fn full_coordinate_join_is_one_to_one() {
        let (d, t1, t2) = two_tables();
        let out = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        // Selectivity 1 at record level: every grid point pairs exactly
        // once → T result tuples.
        assert_eq!(out.len(), 16);
        // Output arity: 4 + 4 - 3 keys = 5.
        assert_eq!(out[0].arity(), 5);
    }

    #[test]
    fn partial_key_join_fans_out() {
        let (d, t1, t2) = two_tables();
        // Joining only on (x, y) pairs each point with the z-line of the
        // other table: 16 × 1 here since z extent is 1.
        let out = nested_loop_join(&d, t1, t2, &["x", "y"], None).unwrap();
        assert_eq!(out.len(), 16);
    }
}
