//! IJ scheduling strategies.
//!
//! The paper's two-stage strategy: "In the first stage, each QES instance
//! in the compute cluster is assigned equal number of components. Then,
//! local id pairs \[are\] sorted in lexicographic order of
//! `((i1,j1),(i2,j2))`". With the §5.1 memory assumption this guarantees no
//! sub-table is evicted while still needed.
//!
//! Two ablation policies quantify *why* that matters (DESIGN.md A1):
//! [`SchedulePolicy::PairRoundRobin`] scatters pairs ignoring components
//! (edges of one component land on different nodes — the OPAS failure mode
//! of Section 6.2), and [`SchedulePolicy::RandomPairOrder`] keeps the
//! component placement but randomizes local order, defeating cache
//! residency.

use crate::connectivity::ConnectivityGraph;
use orv_types::SubTableId;

/// How IJ distributes and orders candidate pairs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulePolicy {
    /// The paper's strategy: components round-robin over nodes, local pairs
    /// in lexicographic order.
    TwoStageLexicographic,
    /// Components round-robin over nodes, local pair order shuffled
    /// deterministically by the given seed.
    RandomPairOrder(u64),
    /// Ignore components entirely: individual pairs round-robin over nodes
    /// in global lexicographic order.
    PairRoundRobin,
    /// Components round-robin over nodes, local order chosen by a greedy
    /// Optimal-Page-Access-Sequence heuristic (Chan & Ooi '97 / Fotouhi &
    /// Pramanik '89, the paper's refs [4, 5]): always run next a pair that
    /// reuses sub-tables currently resident in a simulated LRU buffer of
    /// the given capacity (in sub-tables). Useful in the high-edge-ratio
    /// regime of Section 6.2 where lexicographic order starts missing.
    OpasGreedy {
        /// Simulated buffer capacity, in sub-tables.
        buffer_subtables: usize,
    },
}

/// The pair lists assigned to each of `n_compute` QES instances.
pub fn schedule(
    graph: &ConnectivityGraph,
    n_compute: usize,
    policy: SchedulePolicy,
) -> Vec<Vec<(SubTableId, SubTableId)>> {
    assert!(n_compute > 0, "need at least one compute node");
    let mut plans: Vec<Vec<(SubTableId, SubTableId)>> = vec![Vec::new(); n_compute];
    match policy {
        SchedulePolicy::TwoStageLexicographic
        | SchedulePolicy::RandomPairOrder(_)
        | SchedulePolicy::OpasGreedy { .. } => {
            // Stage 1: equal number of components per node (round-robin).
            for (ci, comp) in graph.components.iter().enumerate() {
                plans[ci % n_compute].extend(comp.edges.iter().copied());
            }
            // Stage 2: local order.
            match policy {
                SchedulePolicy::TwoStageLexicographic => {
                    for plan in &mut plans {
                        plan.sort();
                    }
                }
                SchedulePolicy::RandomPairOrder(seed) => {
                    for (ni, plan) in plans.iter_mut().enumerate() {
                        shuffle(plan, seed ^ (ni as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    }
                }
                SchedulePolicy::OpasGreedy { buffer_subtables } => {
                    for plan in &mut plans {
                        let reordered = opas_greedy(plan, buffer_subtables);
                        *plan = reordered;
                    }
                }
                SchedulePolicy::PairRoundRobin => unreachable!(),
            }
        }
        SchedulePolicy::PairRoundRobin => {
            let mut edges: Vec<_> = graph.edges().collect();
            edges.sort();
            for (i, e) in edges.into_iter().enumerate() {
                plans[i % n_compute].push(e);
            }
        }
    }
    plans
}

/// Greedy OPAS: repeatedly pick a remaining pair whose sub-tables are
/// (most) resident in a simulated LRU buffer of `capacity` sub-tables;
/// lexicographic tie-break keeps the order deterministic.
fn opas_greedy(
    pairs: &[(SubTableId, SubTableId)],
    capacity: usize,
) -> Vec<(SubTableId, SubTableId)> {
    let mut remaining: Vec<(SubTableId, SubTableId)> = {
        let mut v = pairs.to_vec();
        v.sort();
        v
    };
    let mut out = Vec::with_capacity(remaining.len());
    // Simulated buffer: most-recent at the back.
    let mut buffer: Vec<SubTableId> = Vec::new();
    let touch = |buffer: &mut Vec<SubTableId>, id: SubTableId| {
        if let Some(pos) = buffer.iter().position(|&b| b == id) {
            buffer.remove(pos);
        } else if buffer.len() == capacity && capacity > 0 {
            buffer.remove(0);
        }
        if capacity > 0 {
            buffer.push(id);
        }
    };
    while !remaining.is_empty() {
        // Score = resident members (0..=2); first max wins (lex order).
        let Some((best, _)) = remaining
            .iter()
            .enumerate()
            .map(|(i, &(l, r))| {
                let score = buffer.contains(&l) as u32 + buffer.contains(&r) as u32;
                (i, score)
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        else {
            break;
        };
        let (l, r) = remaining.remove(best);
        touch(&mut buffer, l);
        touch(&mut buffer, r);
        out.push((l, r));
    }
    out
}

/// Deterministic Fisher-Yates with a splitmix64 stream.
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_types::TableId;

    fn sid(t: u32, c: u32) -> SubTableId {
        SubTableId::new(t, c)
    }

    /// Four components of 2 edges each over 8 left / 4 right sub-tables.
    fn graph() -> ConnectivityGraph {
        let mut edges = Vec::new();
        for k in 0..4u32 {
            edges.push((sid(0, 2 * k), sid(1, k)));
            edges.push((sid(0, 2 * k + 1), sid(1, k)));
        }
        ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x"], edges)
    }

    #[test]
    fn components_balanced_across_nodes() {
        let g = graph();
        assert_eq!(g.num_components(), 4);
        let plans = schedule(&g, 2, SchedulePolicy::TwoStageLexicographic);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].len(), 4);
        assert_eq!(plans[1].len(), 4);
        // Component edges stay together: each node sees 2 complete
        // components.
        for plan in &plans {
            let rights: std::collections::HashSet<_> = plan.iter().map(|e| e.1).collect();
            assert_eq!(rights.len(), 2);
        }
    }

    #[test]
    fn local_order_is_lexicographic() {
        let plans = schedule(&graph(), 2, SchedulePolicy::TwoStageLexicographic);
        for plan in &plans {
            let mut sorted = plan.clone();
            sorted.sort();
            assert_eq!(*plan, sorted);
        }
    }

    #[test]
    fn all_edges_scheduled_exactly_once() {
        let g = graph();
        for policy in [
            SchedulePolicy::TwoStageLexicographic,
            SchedulePolicy::RandomPairOrder(42),
            SchedulePolicy::PairRoundRobin,
        ] {
            let plans = schedule(&g, 3, policy);
            let mut all: Vec<_> = plans.into_iter().flatten().collect();
            all.sort();
            let mut expected: Vec<_> = g.edges().collect();
            expected.sort();
            assert_eq!(all, expected, "{policy:?}");
        }
    }

    #[test]
    fn round_robin_splits_components() {
        let g = graph();
        let plans = schedule(&g, 2, SchedulePolicy::PairRoundRobin);
        // Adjacent edges of the same component alternate nodes, so each
        // node sees all 4 right sub-tables (instead of 2).
        let rights: std::collections::HashSet<_> = plans[0].iter().map(|e| e.1).collect();
        assert_eq!(rights.len(), 4);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let g = graph();
        let a = schedule(&g, 2, SchedulePolicy::RandomPairOrder(7));
        let b = schedule(&g, 2, SchedulePolicy::RandomPairOrder(7));
        let c = schedule(&g, 2, SchedulePolicy::RandomPairOrder(8));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ for 4-edge plans");
    }

    #[test]
    fn more_nodes_than_components() {
        let g = graph();
        let plans = schedule(&g, 8, SchedulePolicy::TwoStageLexicographic);
        let nonempty = plans.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(nonempty, 4);
    }

    /// One big tangled component: complete bipartite 6×6.
    fn tangled() -> ConnectivityGraph {
        let mut edges = Vec::new();
        for l in 0..6u32 {
            for r in 0..6u32 {
                edges.push((sid(0, l), sid(1, r)));
            }
        }
        ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x"], edges)
    }

    /// Replay a pair order against a unit-size LRU of `cap` sub-tables and
    /// count fetches (first touches + refetches).
    fn replay_fetches(plan: &[(SubTableId, SubTableId)], cap: u64) -> u64 {
        let mut cache: crate::lru::LruCache<SubTableId, ()> = crate::lru::LruCache::new(cap);
        let mut fetches = 0;
        for &(l, r) in plan {
            for id in [l, r] {
                if cache.get(&id).is_none() {
                    fetches += 1;
                    cache.put(id, (), 1);
                }
            }
        }
        fetches
    }

    #[test]
    fn opas_schedules_every_edge_once() {
        let g = tangled();
        let plans = schedule(
            &g,
            2,
            SchedulePolicy::OpasGreedy {
                buffer_subtables: 3,
            },
        );
        let mut all: Vec<_> = plans.into_iter().flatten().collect();
        all.sort();
        let mut expected: Vec<_> = g.edges().collect();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn opas_beats_random_order_under_tight_buffer() {
        let g = tangled();
        let cap = 3u64;
        let opas = schedule(
            &g,
            1,
            SchedulePolicy::OpasGreedy {
                buffer_subtables: cap as usize,
            },
        );
        let random = schedule(&g, 1, SchedulePolicy::RandomPairOrder(1234));
        let opas_fetches = replay_fetches(&opas[0], cap);
        let random_fetches = replay_fetches(&random[0], cap);
        assert!(
            opas_fetches <= random_fetches,
            "OPAS {opas_fetches} must not exceed random {random_fetches}"
        );
        // And it must do strictly better than the worst case of refetching
        // a side every pair.
        assert!(opas_fetches < 2 * g.num_edges() as u64);
    }

    #[test]
    fn opas_with_zero_buffer_degenerates_but_terminates() {
        let g = graph();
        let plans = schedule(
            &g,
            2,
            SchedulePolicy::OpasGreedy {
                buffer_subtables: 0,
            },
        );
        assert_eq!(plans.iter().map(Vec::len).sum::<usize>(), g.num_edges());
    }

    #[test]
    fn opas_is_deterministic() {
        let g = tangled();
        let a = schedule(
            &g,
            2,
            SchedulePolicy::OpasGreedy {
                buffer_subtables: 4,
            },
        );
        let b = schedule(
            &g,
            2,
            SchedulePolicy::OpasGreedy {
                buffer_subtables: 4,
            },
        );
        assert_eq!(a, b);
    }
}
