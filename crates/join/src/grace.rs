//! The distributed Grace Hash join on the threaded runtime.
//!
//! Phase 1 (partition): "each storage node runs a QES instance that
//! contacts the local BDS instance to retrieve matching sub-tables from the
//! left (inner) table. A hash function `h1` is used to map records to QES
//! instances executing on the compute cluster. A compute node QES instance,
//! upon receipt of a record, applies another hash function `h2` to map the
//! record to a bucket. Buckets are stored on local disks on the compute
//! nodes. The same procedure is repeated with the right (outer) table."
//!
//! Phase 2 (join): "each compute node QES instance then proceeds to join
//! pairs of buckets independently" — the paper's modification of
//! Kitsuregawa's algorithm that removes network costs from the join phase.
//!
//! Storage nodes and compute nodes are OS threads; `h1` routing is a
//! crossbeam channel per compute node; buckets live in a per-node
//! [`Scratch`] store (memory or real temp files). The sender hashes each
//! record once (deriving both `h1` and `h2` from the same 64-bit hash) and
//! encodes records straight from the columnar sub-table into per-
//! `(destination, bucket)` byte buffers, so no row objects are
//! materialized on the partition path.

//! ## Fault tolerance
//!
//! Chunk reads and scratch writes run under the configured
//! [`RecoveryPolicy`]; dropped interconnect messages (from an attached
//! [`FaultInjector`]) are retried with fresh draws and backoff. Worker
//! threads — storage and compute alike — run inside `catch_unwind`, so a
//! crash becomes a typed `Error::Cluster`. Unlike IJ, a dead compute node
//! cannot be replaced: its scratch buckets (and any in-flight records
//! routed to it by `h1`) die with it, so Grace Hash *fails fast* — the
//! dropped receiver unblocks every storage sender, all join handles are
//! harvested, and the panic surfaces as the join's error within a bounded
//! deadline rather than a hang.

use crate::hash_join::{HashJoiner, JoinCounters};
use orv_bds::{BdsService, Deployment};
use orv_chunk::SubTable;
use orv_cluster::{
    checksum, fault::panic_message, CancelToken, FaultInjector, RecoveryPolicy, RunStats, Scratch,
    ScratchKind, SendVerdict,
};
use orv_obs::{names, Obs};
use orv_types::{BoundingBox, Error, Record, Result, Schema, SubTableId, TableId, Value};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one Grace Hash execution.
#[derive(Clone, Debug)]
pub struct GraceHashConfig {
    /// Number of compute-node threads (`n_j`).
    pub n_compute: usize,
    /// Memory available per compute node for one in-memory bucket join —
    /// determines the bucket count ("the number of buckets is chosen so
    /// that each bucket fits in memory").
    pub mem_per_node: u64,
    /// Bucket storage backing.
    pub scratch: ScratchKind,
    /// Figure-8 work multiplier for hash build/probe.
    pub work_factor: u32,
    /// Collect result records (tests); otherwise only count them.
    pub collect_results: bool,
    /// Optional range constraint applied to scanned sub-tables.
    pub range: Option<BoundingBox>,
    /// Optional fault injector exercising the execution (tests/chaos).
    pub faults: Option<Arc<FaultInjector>>,
    /// Retry/backoff/deadline policy for reads, sends and scratch writes.
    pub recovery: RecoveryPolicy,
    /// Cooperative cancellation: every worker loop and every recovery
    /// sleep observes this token, so a cancel (or deadline) unwinds the
    /// whole join within one sleep slice.
    pub cancel: CancelToken,
    /// Observability handle. Disabled by default; when enabled, storage
    /// nodes record `s{n}/read|partition|send` spans and compute nodes
    /// record `c{j}/scratch_write|scratch_read|build|probe` spans (one
    /// per cost-model term), and the merged [`RunStats`] are published
    /// into the metrics registry under the `gh/` prefix.
    pub obs: Obs,
}

impl Default for GraceHashConfig {
    fn default() -> Self {
        GraceHashConfig {
            n_compute: 2,
            mem_per_node: 256 << 20,
            scratch: ScratchKind::Memory,
            work_factor: 1,
            collect_results: false,
            range: None,
            faults: None,
            recovery: RecoveryPolicy::default(),
            cancel: CancelToken::none(),
            obs: Obs::disabled(),
        }
    }
}

/// Result of a Grace Hash execution (same shape as IJ's).
pub type JoinOutput = crate::indexed::JoinOutput;

/// One routed message: encoded records of one side, grouped by bucket,
/// destined for one compute node.
struct Batch {
    side: Side,
    /// `(bucket index, packed records, CRC32C)` triples. The checksum is
    /// sealed when the frame is encoded; the link layer verifies it after
    /// any in-flight corruption and the receiver re-verifies before
    /// spilling to scratch.
    buckets: Vec<(u32, Vec<u8>, u32)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    Left,
    Right,
}

/// splitmix64 over the join-key values. Both `h1` (low bits) and `h2`
/// (high bits) derive from this one hash.
fn hash_key(values: &[Value]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64;
    for v in values {
        let family = matches!(v, Value::F32(_) | Value::F64(_)) as u64;
        h ^= v
            .key_bits()
            .wrapping_add(family.wrapping_mul(0x1F83_D9AB_FB41_BD6B));
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// `h1`: record → compute node.
#[cfg(test)]
fn h1(values: &[Value], n_compute: usize) -> usize {
    (hash_key(values) % n_compute as u64) as usize
}

/// `h2`: record → bucket, independent of `h1` (uses the upper hash bits).
#[cfg(test)]
fn h2(values: &[Value], n_buckets: usize) -> usize {
    ((hash_key(values) >> 32) % n_buckets as u64) as usize
}

/// Pack records into the fixed-width little-endian wire format.
#[cfg(test)]
fn encode_records(records: &[Record]) -> Vec<u8> {
    let total: usize = records.iter().map(Record::encoded_size).sum();
    let mut out = Vec::with_capacity(total);
    for r in records {
        for v in r.values() {
            v.encode_le(&mut out);
        }
    }
    out
}

/// Decode columns of `schema` from the wire format.
fn decode_columns(schema: &Schema, bytes: &[u8]) -> Result<Vec<Vec<Value>>> {
    let rs = schema.record_size();
    if rs == 0 || !bytes.len().is_multiple_of(rs) {
        return Err(Error::Format(format!(
            "bucket of {} bytes is not a whole number of {rs}-byte records",
            bytes.len()
        )));
    }
    let nrows = bytes.len() / rs;
    let mut cols: Vec<Vec<Value>> = schema
        .attrs()
        .iter()
        .map(|_| Vec::with_capacity(nrows))
        .collect();
    for rec in bytes.chunks_exact(rs) {
        let mut off = 0;
        for (ci, attr) in schema.attrs().iter().enumerate() {
            let v = Value::decode_le(attr.dtype, &rec[off..])
                .ok_or_else(|| Error::Format("truncated record in bucket".into()))?;
            cols[ci].push(v);
            off += attr.dtype.width();
        }
    }
    Ok(cols)
}

/// Pick the bucket count so each side's bucket fits in `mem_per_node`.
fn bucket_count(total_bytes: u64, n_compute: usize, mem_per_node: u64) -> usize {
    let per_node = total_bytes.div_ceil(n_compute as u64).max(1);
    per_node.div_ceil(mem_per_node.max(1)).max(1) as usize
}

/// Fan-out of one recursive repartitioning step.
const OVERFLOW_SPLIT: usize = 4;
/// Recursion limit — beyond this (extreme key skew) the bucket is joined
/// in memory regardless of the budget.
const MAX_OVERFLOW_DEPTH: u32 = 4;

/// Salted variant of [`hash_key`] used for overflow repartitioning, so
/// sub-bucket assignment is independent of both `h1` and `h2`.
fn hash_key_salted(values: &[Value], salt: u64) -> u64 {
    let mut h = hash_key(values) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 31)
}

/// Everything one compute node's bucket-join phase needs; bundled so the
/// recursive helpers stay readable.
struct BucketJoinCtx<'a> {
    scratch: &'a Scratch,
    lschema: &'a Arc<Schema>,
    rschema: &'a Arc<Schema>,
    lkeys: &'a [usize],
    rkeys: &'a [usize],
    join_attrs: &'a [&'a str],
    counters: &'a JoinCounters,
    cfg: &'a GraceHashConfig,
    injector: &'a FaultInjector,
    /// Compute node index (for `corruption_detected` events).
    node: usize,
    /// Span group tag, `c{node}`.
    tag: String,
}

/// Read a scratch bucket and verify it against the store's running CRC,
/// retrying under the recovery policy when an (injected) corruption is
/// detected. The durable bytes stay pristine — only the returned copy is
/// damaged — so a retry with a fresh draw succeeds once the fault budget
/// drains.
fn read_bucket_verified(ctx: &BucketJoinCtx, name: &str, stats: &mut RunStats) -> Result<Vec<u8>> {
    let policy = &ctx.cfg.recovery;
    let cancel = &ctx.cfg.cancel;
    // orv-lint: allow(L006) -- wall-clock measurement feeding RunStats only; never drives control flow
    let start = Instant::now();
    let mut retries = 0u64;
    loop {
        cancel.check()?;
        let bytes = {
            let _read = ctx
                .cfg
                .obs
                .spans
                .span_with(|| names::span_tagged(&ctx.tag, names::PHASE_SCRATCH_READ));
            let mut bytes = ctx.scratch.read_bucket(name)?;
            ctx.injector
                .corrupt_scratch_read(ctx.node as u64, &mut bytes);
            bytes
        };
        match ctx.scratch.verify_bucket(name, &bytes) {
            Ok(()) => return Ok(bytes),
            Err(e) => {
                stats.corruptions_detected += 1;
                ctx.injector.events().emit(names::CORRUPTION_DETECTED, || {
                    vec![
                        ("site", "scratch_read".into()),
                        ("what", name.to_string().into()),
                        ("node", ctx.node.into()),
                    ]
                });
                if policy.attempts_exhausted(retries) || policy.deadline_exceeded(start) {
                    return Err(e);
                }
                cancel.sleep(policy.backoff(retries as u32))?;
                stats.scratch_retries += 1;
                retries += 1;
            }
        }
    }
}

/// Repartition an oversized bucket into `OVERFLOW_SPLIT` sub-buckets on
/// scratch, re-hashing each record with a depth salt.
fn repartition_bucket(
    ctx: &BucketJoinCtx,
    name: &str,
    schema: &Schema,
    key_indices: &[usize],
    depth: u32,
    stats: &mut RunStats,
) -> Result<()> {
    let bytes = read_bucket_verified(ctx, name, stats)?;
    let cols = decode_columns(schema, &bytes)?;
    let nrows = cols.first().map(Vec::len).unwrap_or(0);
    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); OVERFLOW_SPLIT];
    let mut key = Vec::with_capacity(key_indices.len());
    for r in 0..nrows {
        key.clear();
        key.extend(key_indices.iter().map(|&i| cols[i][r]));
        let k = (hash_key_salted(&key, depth as u64 + 1) % OVERFLOW_SPLIT as u64) as usize;
        for col in &cols {
            col[r].encode_le(&mut outs[k]);
        }
    }
    for (k, buf) in outs.into_iter().enumerate() {
        if !buf.is_empty() {
            let _write = ctx
                .cfg
                .obs
                .spans
                .span_with(|| names::span_tagged(&ctx.tag, names::PHASE_SCRATCH_WRITE));
            ctx.scratch.append(&format!("{name}.{k}"), &buf)?;
        }
    }
    Ok(())
}

/// Join one `(left, right)` bucket pair, recursively repartitioning when
/// either side exceeds the memory budget (Grace Hash overflow handling —
/// "bucket tuning" in its simplest recursive form).
fn join_bucket_pair(
    ctx: &BucketJoinCtx,
    lname: &str,
    rname: &str,
    depth: u32,
    stats: &mut RunStats,
    results: &mut Vec<Record>,
) -> Result<u64> {
    let cfg = ctx.cfg;
    cfg.cancel.check()?;
    let spans = &cfg.obs.spans;
    let lsize = ctx.scratch.bucket_size(lname)?;
    let rsize = ctx.scratch.bucket_size(rname)?;
    if lsize == 0 || rsize == 0 {
        return Ok(0);
    }
    if depth < MAX_OVERFLOW_DEPTH && lsize.max(rsize) > cfg.mem_per_node {
        repartition_bucket(ctx, lname, ctx.lschema, ctx.lkeys, depth, stats)?;
        repartition_bucket(ctx, rname, ctx.rschema, ctx.rkeys, depth, stats)?;
        let mut produced = 0;
        for k in 0..OVERFLOW_SPLIT {
            produced += join_bucket_pair(
                ctx,
                &format!("{lname}.{k}"),
                &format!("{rname}.{k}"),
                depth + 1,
                stats,
                results,
            )?;
        }
        return Ok(produced);
    }
    let lbytes = read_bucket_verified(ctx, lname, stats)?;
    let rbytes = read_bucket_verified(ctx, rname, stats)?;
    let lst = SubTable::from_columns(
        SubTableId::new(0u32, depth),
        Arc::clone(ctx.lschema),
        decode_columns(ctx.lschema, &lbytes)?,
    )?;
    let rst = SubTable::from_columns(
        SubTableId::new(1u32, depth),
        Arc::clone(ctx.rschema),
        decode_columns(ctx.rschema, &rbytes)?,
    )?;
    let joiner = {
        let _build = spans.span_with(|| names::span_tagged(&ctx.tag, names::PHASE_BUILD));
        HashJoiner::build(Arc::new(lst), ctx.join_attrs, ctx.counters, cfg.work_factor)?
    };
    let _probe = spans.span_with(|| names::span_tagged(&ctx.tag, names::PHASE_PROBE));
    if cfg.collect_results {
        joiner.probe(&rst, ctx.join_attrs, ctx.counters, |r| results.push(r))
    } else {
        joiner.probe(&rst, ctx.join_attrs, ctx.counters, |_| {})
    }
}

/// Route one sub-table's rows into per-`(dest, bucket)` buffers, encoding
/// straight from the columns.
fn route_subtable(
    st: &SubTable,
    key_indices: &[usize],
    n_compute: usize,
    n_buckets: usize,
) -> Vec<Vec<(u32, Vec<u8>)>> {
    let mut out: Vec<Vec<(u32, Vec<u8>)>> = (0..n_compute).map(|_| Vec::new()).collect();
    // Dense (dest, bucket) → buffer map would waste memory for large
    // bucket counts; use a per-dest sparse assoc list (bucket counts per
    // message are small in practice).
    let arity = st.schema().arity();
    let mut key = Vec::with_capacity(key_indices.len());
    for r in 0..st.num_rows() {
        key.clear();
        key.extend(key_indices.iter().map(|&i| st.value(r, i)));
        let h = hash_key(&key);
        let dest = (h % n_compute as u64) as usize;
        let bucket = ((h >> 32) % n_buckets as u64) as u32;
        let dest_buckets = &mut out[dest];
        let pos = match dest_buckets.iter().position(|(b, _)| *b == bucket) {
            Some(p) => p,
            None => {
                dest_buckets.push((bucket, Vec::new()));
                dest_buckets.len() - 1
            }
        };
        let buf = &mut dest_buckets[pos].1;
        for c in 0..arity {
            st.value(r, c).encode_le(buf);
        }
    }
    out
}

/// Send one batch, retrying injected drops and detected frame
/// corruptions with fresh draws under the recovery policy. Returns
/// `(retries, corruptions detected)`. A *real* send error (receiver gone
/// — its compute node died) is not retryable: the channel never comes
/// back, so fail fast with a typed error.
///
/// Integrity works like a link layer: each bucket's CRC32C was sealed at
/// encode time; an injected in-flight corruption flips one payload byte,
/// verification catches it, and the "retransmission" restores the
/// pristine frame (xor is involutive) before backing off and retrying.
fn send_with_recovery(
    sender: &crossbeam::channel::Sender<Batch>,
    mut batch: Batch,
    stream: u64,
    injector: &FaultInjector,
    policy: &RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<(u64, u64)> {
    // orv-lint: allow(L006) -- wall-clock measurement feeding RunStats only; never drives control flow
    let start = Instant::now();
    let mut retries = 0u64;
    let mut corruptions = 0u64;
    loop {
        cancel.check()?;
        match injector.send_verdict(stream) {
            SendVerdict::Drop => {
                if policy.attempts_exhausted(retries) || policy.deadline_exceeded(start) {
                    return Err(Error::Cluster(format!(
                        "interconnect message dropped {} times; giving up",
                        retries + 1
                    )));
                }
                cancel.sleep(policy.backoff(retries as u32))?;
                retries += 1;
                continue;
            }
            SendVerdict::Delay(d) => cancel.sleep(d)?,
            SendVerdict::Deliver => {}
        }
        let mut damage = None;
        for (i, (b, bytes, _)) in batch.buckets.iter_mut().enumerate() {
            if let Some(hit) = injector.corrupt_frame(stream, bytes) {
                damage = Some((i, *b, hit));
                break; // at most one corrupted frame per attempt
            }
        }
        if let Some((i, b, (off, mask))) = damage {
            let (_, bytes, crc) = &mut batch.buckets[i];
            if let Err(e) = checksum::verify(*crc, bytes, &format!("frame bucket {b}")) {
                corruptions += 1;
                injector.events().emit(names::CORRUPTION_DETECTED, || {
                    vec![
                        ("site", "frame".into()),
                        ("what", format!("bucket {b}").into()),
                    ]
                });
                bytes[off] ^= mask; // retransmit the pristine frame
                if policy.attempts_exhausted(retries) || policy.deadline_exceeded(start) {
                    return Err(e);
                }
                cancel.sleep(policy.backoff(retries as u32))?;
                retries += 1;
                continue;
            }
        }
        return sender
            .send(batch)
            .map(|()| (retries, corruptions))
            .map_err(|_| Error::Cluster("compute node hung up".into()));
    }
}

/// Append to a scratch bucket, retrying injected transient write faults.
/// Injected faults fire *before* any bytes land, so retries never
/// duplicate data; a real I/O error from the append itself is returned
/// as-is.
fn scratch_append_with_recovery(
    scratch: &Scratch,
    name: &str,
    bytes: &[u8],
    stream: u64,
    injector: &FaultInjector,
    policy: &RecoveryPolicy,
    cancel: &CancelToken,
) -> Result<u64> {
    // orv-lint: allow(L006) -- wall-clock measurement feeding RunStats only; never drives control flow
    let start = Instant::now();
    let mut retries = 0u64;
    loop {
        cancel.check()?;
        match injector.before_scratch_write(stream) {
            Ok(()) => break,
            Err(e) => {
                if policy.attempts_exhausted(retries) || policy.deadline_exceeded(start) {
                    return Err(e);
                }
                cancel.sleep(policy.backoff(retries as u32))?;
                retries += 1;
            }
        }
    }
    scratch.append(name, bytes)?;
    Ok(retries)
}

/// Execute `left ⊕ right` on `join_attrs` with the Grace Hash QES.
pub fn grace_hash_join(
    deployment: &Deployment,
    left: TableId,
    right: TableId,
    join_attrs: &[&str],
    cfg: &GraceHashConfig,
) -> Result<JoinOutput> {
    if cfg.n_compute == 0 {
        return Err(Error::Config(
            "grace hash needs at least one compute node".into(),
        ));
    }
    let md = deployment.metadata();
    let lschema = md.schema(left)?;
    let rschema = md.schema(right)?;
    let lkeys: Vec<usize> = join_attrs
        .iter()
        .map(|a| lschema.require(a))
        .collect::<Result<_>>()?;
    let rkeys: Vec<usize> = join_attrs
        .iter()
        .map(|a| rschema.require(a))
        .collect::<Result<_>>()?;

    let total_bytes = md.total_records(left)? * lschema.record_size() as u64
        + md.total_records(right)? * rschema.record_size() as u64;
    let n_buckets = bucket_count(total_bytes, cfg.n_compute, cfg.mem_per_node);

    let injector = cfg.faults.clone().unwrap_or_else(FaultInjector::disabled);
    let services = BdsService::for_all_nodes_with_instruments(
        deployment,
        Arc::clone(&injector),
        cfg.obs.spans.clone(),
        injector.events().clone(),
        cfg.cancel.clone(),
    )?;
    let counters = JoinCounters::new();
    let results: Mutex<Vec<Record>> = Mutex::new(Vec::new());
    let scratches: Vec<Scratch> = (0..cfg.n_compute)
        .map(|j| Scratch::new(cfg.scratch, &format!("gh{j}")))
        .collect::<Result<_>>()?;
    // orv-lint: allow(L006) -- wall-clock measurement feeding RunStats only; never drives control flow
    let start = Instant::now();

    // Channels: one receiver per compute node, every storage node holds a
    // sender to each.
    let mut senders = Vec::with_capacity(cfg.n_compute);
    let mut receivers = Vec::with_capacity(cfg.n_compute);
    for _ in 0..cfg.n_compute {
        let (tx, rx) = crossbeam::channel::bounded::<Batch>(64);
        senders.push(tx);
        receivers.push(rx);
    }

    let per_node: Vec<RunStats> = std::thread::scope(|scope| -> Result<Vec<RunStats>> {
        // --- Storage-node QES instances: scan local chunks, route records.
        let mut storage_handles = Vec::new();
        for svc in &services {
            let senders = senders.clone();
            let lkeys = &lkeys;
            let rkeys = &rkeys;
            let injector = &injector;
            storage_handles.push(scope.spawn(move || -> Result<RunStats> {
                let node = svc.node();
                orv_cluster::contain_panic(&format!("storage node {node}"), || {
                    let mut stats = RunStats::default();
                    for (table, keys, side) in
                        [(left, lkeys, Side::Left), (right, rkeys, Side::Right)]
                    {
                        let chunks = md.all_chunks(table)?;
                        for chunk in chunks {
                            cfg.cancel.check()?;
                            let id = SubTableId { table, chunk };
                            let meta = md.chunk_meta(id)?;
                            if meta.node != node {
                                continue;
                            }
                            if let Some(rg) = &cfg.range {
                                if !meta.bbox.overlaps(rg) {
                                    continue;
                                }
                            }
                            let spans = &cfg.obs.spans;
                            let (st, retries) = {
                                let _read = spans.span_with(|| {
                                    names::span_gh_sender(node.index(), names::PHASE_READ)
                                });
                                cfg.recovery.run_cancellable(&cfg.cancel, || {
                                    let mut st: SubTable = svc.subtable(id)?;
                                    if let Some(rg) = &cfg.range {
                                        st = st.filter_range(rg)?;
                                    }
                                    Ok(st)
                                })
                            };
                            stats.read_retries += retries;
                            let st = st?;
                            stats.bytes_read_storage += meta.size_bytes();
                            let routed = {
                                let _partition = spans.span_with(|| {
                                    names::span_gh_sender(node.index(), names::PHASE_PARTITION)
                                });
                                route_subtable(&st, keys, cfg.n_compute, n_buckets)
                            };
                            let _send = spans.span_with(|| {
                                names::span_gh_sender(node.index(), names::PHASE_SEND)
                            });
                            for (dest, buckets) in routed.into_iter().enumerate() {
                                if buckets.is_empty() {
                                    continue;
                                }
                                stats.bytes_transferred +=
                                    buckets.iter().map(|(_, b)| b.len()).sum::<usize>() as u64;
                                // Seal each frame's CRC as it is encoded.
                                let buckets = buckets
                                    .into_iter()
                                    .map(|(b, bytes)| {
                                        let crc = checksum::crc32c(&bytes);
                                        (b, bytes, crc)
                                    })
                                    .collect();
                                let (retries, corruptions) = send_with_recovery(
                                    &senders[dest],
                                    Batch { side, buckets },
                                    node.index() as u64,
                                    injector,
                                    &cfg.recovery,
                                    &cfg.cancel,
                                )?;
                                stats.send_retries += retries;
                                stats.corruptions_detected += corruptions;
                            }
                        }
                    }
                    Ok(stats)
                })
            }));
        }
        drop(senders); // compute receivers see EOF once storage finishes

        // --- Compute-node QES instances: spill buckets, then join pairs.
        let mut compute_handles = Vec::new();
        for (j, rx) in receivers.into_iter().enumerate() {
            let scratch = &scratches[j];
            let counters = &counters;
            let results = &results;
            let lschema = &lschema;
            let rschema = &rschema;
            let lkeys = &lkeys;
            let rkeys = &rkeys;
            let injector = &injector;
            compute_handles.push(scope.spawn(move || -> Result<RunStats> {
                // contain_panic: a dying compute worker drops `rx`, which
                // unblocks every storage sender, and surfaces here as a
                // typed error instead of unwinding into the coordinator.
                orv_cluster::contain_panic(&format!("compute node {j}"), || {
                    let mut stats = RunStats::default();
                    // Phase 1: append incoming bucket fragments to scratch.
                    for batch in &rx {
                        cfg.cancel.check()?;
                        injector.worker_checkpoint(j);
                        let prefix = match batch.side {
                            Side::Left => "L",
                            Side::Right => "R",
                        };
                        let _write = cfg.obs.spans.span_with(|| {
                            names::span_tagged(
                                &names::gh_consumer_tag(j),
                                names::PHASE_SCRATCH_WRITE,
                            )
                        });
                        for (b, bytes, crc) in batch.buckets {
                            // Defense in depth: the sender's link layer
                            // already verified the frame, so a mismatch
                            // here is a real bug, not a transient.
                            checksum::verify(crc, &bytes, &format!("received bucket {prefix}{b}"))?;
                            stats.scratch_retries += scratch_append_with_recovery(
                                scratch,
                                &format!("{prefix}{b}"),
                                &bytes,
                                j as u64,
                                injector,
                                &cfg.recovery,
                                &cfg.cancel,
                            )?;
                        }
                    }
                    // Phase 2: join bucket pairs independently, recursively
                    // repartitioning any bucket that outgrew the memory
                    // budget.
                    let mut local_results = Vec::new();
                    let ctx = BucketJoinCtx {
                        scratch,
                        lschema,
                        rschema,
                        lkeys,
                        rkeys,
                        join_attrs,
                        counters,
                        cfg,
                        injector,
                        node: j,
                        tag: names::gh_consumer_tag(j),
                    };
                    for b in 0..n_buckets {
                        injector.worker_checkpoint(j);
                        let produced = join_bucket_pair(
                            &ctx,
                            &format!("L{b}"),
                            &format!("R{b}"),
                            0,
                            &mut stats,
                            &mut local_results,
                        )?;
                        stats.result_tuples += produced;
                    }
                    if cfg.collect_results {
                        results.lock().append(&mut local_results);
                    }
                    Ok(stats)
                })
            }));
        }

        // Harvest EVERY handle before deciding the outcome, so a dead
        // worker never leaves the coordinator blocked, then report the
        // root cause: a panic outranks everything; a cancellation outranks
        // the secondary "hung up" errors either one causes in its peers.
        let mut all = Vec::new();
        let mut panic_err: Option<Error> = None;
        let mut cancel_err: Option<Error> = None;
        let mut first_err: Option<Error> = None;
        for h in storage_handles.into_iter().chain(compute_handles) {
            match h.join() {
                Ok(Ok(s)) => all.push(s),
                Ok(Err(e)) => {
                    if e.to_string().contains("panicked") && panic_err.is_none() {
                        panic_err = Some(e);
                    } else if e.is_cancellation() && cancel_err.is_none() {
                        cancel_err = Some(e);
                    } else if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                // Unreachable: bodies are wrapped in contain_panic.
                Err(p) => {
                    panic_err = Some(Error::Cluster(format!(
                        "grace hash thread panicked: {}",
                        panic_message(p.as_ref())
                    )));
                }
            }
        }
        if let Some(e) = panic_err.or(cancel_err).or(first_err) {
            return Err(e);
        }
        Ok(all)
    })?;

    let mut stats = RunStats::default();
    for s in &per_node {
        stats.merge(s);
    }
    // Scratch traffic is summed from the per-node Scratch handles rather
    // than per-worker stats snapshots: the handles are the single source
    // of truth, so bytes are never double-counted if a handle is shared
    // and never lost when a worker dies after writing.
    for sc in &scratches {
        stats.bytes_scratch_written += sc.bytes_written();
        stats.bytes_scratch_read += sc.bytes_read();
    }
    // Chunk-page corruptions are detected (and counted) inside the BDS
    // instances; fold them into the run totals.
    for svc in &services {
        stats.corruptions_detected += svc.corruptions_detected();
    }
    stats.wall_secs = start.elapsed().as_secs_f64();
    stats.hash_builds = counters.builds();
    stats.hash_probes = counters.probes();
    stats.record_into(&cfg.obs.metrics, "gh");
    Ok(JoinOutput {
        stats,
        records: cfg.collect_results.then(|| results.into_inner()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{nested_loop_join, sort_records};
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_types::Interval;

    fn deploy(
        grid: [u64; 3],
        p1: [u64; 3],
        p2: [u64; 3],
        nodes: usize,
    ) -> (Deployment, TableId, TableId) {
        let d = Deployment::in_memory(nodes);
        let t1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid(grid)
                .partition(p1)
                .scalar_attrs(&["oilp"])
                .seed(1)
                .build(),
            &d,
        )
        .unwrap();
        let t2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid(grid)
                .partition(p2)
                .scalar_attrs(&["wp"])
                .seed(2)
                .build(),
            &d,
        )
        .unwrap();
        (d, t1.table, t2.table)
    }

    #[test]
    fn matches_nested_loop_oracle() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let cfg = GraceHashConfig {
            n_compute: 3,
            collect_results: true,
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn agrees_with_indexed_join() {
        let (d, t1, t2) = deploy([8, 4, 2], [4, 2, 1], [2, 4, 2], 2);
        let gh = grace_hash_join(
            &d,
            t1,
            t2,
            &["x", "y", "z"],
            &GraceHashConfig {
                collect_results: true,
                ..Default::default()
            },
        )
        .unwrap();
        let ij = crate::indexed::indexed_join(
            &d,
            t1,
            t2,
            &["x", "y", "z"],
            &crate::indexed::IndexedJoinConfig {
                collect_results: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            sort_records(gh.records.unwrap()),
            sort_records(ij.records.unwrap())
        );
    }

    #[test]
    fn small_memory_forces_many_buckets() {
        assert_eq!(bucket_count(1000, 2, 100), 5);
        assert_eq!(bucket_count(1000, 2, 1 << 30), 1);
        assert_eq!(bucket_count(0, 2, 100), 1);
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [2, 2, 1], 2);
        let cfg = GraceHashConfig {
            n_compute: 2,
            mem_per_node: 64, // few records per bucket
            collect_results: true,
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        assert!(out.stats.bytes_scratch_written > 0);
        assert_eq!(
            out.stats.bytes_scratch_written,
            out.stats.bytes_scratch_read
        );
    }

    #[test]
    fn oversized_buckets_recursively_repartition() {
        // Mismatched partitions with a tiny memory budget: several buckets
        // exceed it and must be split before joining.
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 1], 2);
        let cfg = GraceHashConfig {
            n_compute: 2,
            mem_per_node: 96, //6 records of 16 bytes
            collect_results: true,
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        // Repartitioning re-writes data: scratch writes exceed one pass.
        assert!(
            out.stats.bytes_scratch_written > 128 * 2 * 16,
            "recursion must add scratch traffic: {}",
            out.stats.bytes_scratch_written
        );
    }

    #[test]
    fn extreme_key_skew_terminates_via_depth_limit() {
        // Joining on z over a z-extent-1 grid: every record shares ONE key,
        // so no amount of repartitioning can shrink the bucket. The depth
        // limit must kick in and the join still complete (64×64 pairs).
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [4, 4, 1], 2);
        let cfg = GraceHashConfig {
            n_compute: 2,
            mem_per_node: 64,
            collect_results: true,
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["z"], &cfg).unwrap();
        assert_eq!(out.stats.result_tuples, 64 * 64);
        let expected = nested_loop_join(&d, t1, t2, &["z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn tempfile_scratch_roundtrips() {
        let (d, t1, t2) = deploy([4, 4, 2], [2, 2, 2], [4, 2, 1], 2);
        let cfg = GraceHashConfig {
            scratch: ScratchKind::TempFile,
            collect_results: true,
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn range_constraint_matches_oracle() {
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [2, 2, 1], 2);
        let range = BoundingBox::from_dims([("x", Interval::new(2.0, 5.0))]);
        let cfg = GraceHashConfig {
            collect_results: true,
            range: Some(range.clone()),
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], Some(&range)).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
    }

    #[test]
    fn transfer_bytes_equal_both_tables() {
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [4, 4, 1], 2);
        let out =
            grace_hash_join(&d, t1, t2, &["x", "y", "z"], &GraceHashConfig::default()).unwrap();
        // Everything moves exactly once: T·(RS_R + RS_S).
        assert_eq!(out.stats.bytes_transferred, 64 * 16 + 64 * 16);
        assert_eq!(out.stats.result_tuples, 64);
    }

    #[test]
    fn transient_faults_all_recovered_and_counted() {
        use orv_cluster::FaultPlan;
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let plan = FaultPlan {
            seed: 33,
            read_error_prob: 1.0,
            max_read_errors: 2,
            send_drop_prob: 1.0,
            max_send_drops: 2,
            scratch_error_prob: 1.0,
            max_scratch_errors: 2,
            max_faults: 6,
            ..FaultPlan::none()
        };
        let cfg = GraceHashConfig {
            collect_results: true,
            faults: Some(plan.injector()),
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        assert!(out.stats.read_retries > 0, "{:?}", out.stats);
        assert!(out.stats.send_retries > 0, "{:?}", out.stats);
        assert!(out.stats.scratch_retries > 0, "{:?}", out.stats);
    }

    #[test]
    fn injected_corruptions_detected_recovered_and_logged() {
        use orv_cluster::FaultPlan;
        use orv_obs::EventLog;
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let events = EventLog::enabled();
        let plan = FaultPlan {
            seed: 77,
            chunk_corrupt_prob: 1.0,
            max_chunk_corruptions: 2,
            frame_corrupt_prob: 1.0,
            max_frame_corruptions: 2,
            scratch_corrupt_prob: 1.0,
            max_scratch_corruptions: 2,
            max_faults: 6,
            ..FaultPlan::none()
        };
        let injector = plan.injector_with_events(events.clone());
        let cfg = GraceHashConfig {
            collect_results: true,
            faults: Some(Arc::clone(&injector)),
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let expected = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        assert_eq!(sort_records(out.records.unwrap()), sort_records(expected));
        // Every single injected corruption was caught by a checksum —
        // chunk pages at the BDS, frames at the link layer, scratch
        // buckets at read-back.
        let fstats = injector.stats();
        assert!(fstats.chunk_corruptions > 0, "{fstats:?}");
        assert!(fstats.frame_corruptions > 0, "{fstats:?}");
        assert!(fstats.scratch_corruptions > 0, "{fstats:?}");
        assert_eq!(out.stats.corruptions_detected, fstats.corruptions());
        assert_eq!(
            events.events_of_kind("corruption_detected").len() as u64,
            fstats.corruptions(),
            "one detection event per injected corruption"
        );
    }

    #[test]
    fn cancelled_join_returns_cancelled_error() {
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 2], 2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let cfg = GraceHashConfig {
            cancel,
            ..Default::default()
        };
        let err = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
    }

    #[test]
    fn compute_worker_panic_fails_fast_with_typed_error() {
        use orv_cluster::{silence_injected_panics, FaultPlan, WorkerPanicSpec};
        silence_injected_panics();
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [2, 2, 1], 2);
        let plan = FaultPlan {
            seed: 9,
            worker_panics: vec![WorkerPanicSpec {
                worker: 0,
                after_ops: 0,
            }],
            max_faults: 1,
            ..FaultPlan::none()
        };
        let cfg = GraceHashConfig {
            n_compute: 2,
            faults: Some(plan.injector()),
            ..Default::default()
        };
        let err = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap_err();
        assert!(matches!(err, Error::Cluster(_)), "{err}");
        assert!(
            err.to_string().contains("panicked"),
            "root cause, not 'hung up': {err}"
        );
    }

    #[test]
    fn instrumented_run_records_phase_spans_and_metrics() {
        let (d, t1, t2) = deploy([8, 8, 1], [4, 4, 1], [2, 2, 1], 2);
        let obs = Obs::enabled();
        let cfg = GraceHashConfig {
            n_compute: 2,
            mem_per_node: 256, // force scratch traffic through every phase
            obs: obs.clone(),
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let totals = obs.spans.total_secs_by_leaf();
        for leaf in [
            "read",
            "partition",
            "send",
            "scratch_write",
            "scratch_read",
            "build",
            "probe",
        ] {
            assert!(totals.contains_key(leaf), "missing {leaf}: {totals:?}");
        }
        // Storage phases under `s{n}` groups, compute phases under `c{j}`.
        let by_group = obs.spans.group_leaf_totals();
        assert!(by_group.keys().any(|g| g.starts_with('s')), "{by_group:?}");
        assert!(by_group.keys().any(|g| g.starts_with('c')), "{by_group:?}");
        let snap = obs.metrics.snapshot();
        assert_eq!(
            snap.counters.get("gh/result_tuples").copied(),
            Some(out.stats.result_tuples)
        );
        assert_eq!(
            snap.counters.get("gh/bytes_scratch_written").copied(),
            Some(out.stats.bytes_scratch_written)
        );
    }

    #[test]
    fn scratch_bytes_survive_counting_once_per_handle() {
        // The coordinator derives scratch byte totals from the Scratch
        // handles; merged per-worker stats must agree with the symmetric
        // write/read invariant even when buckets repartition recursively.
        let (d, t1, t2) = deploy([8, 8, 2], [4, 4, 2], [2, 8, 1], 2);
        let cfg = GraceHashConfig {
            n_compute: 3,
            mem_per_node: 96,
            ..Default::default()
        };
        let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        assert!(out.stats.bytes_scratch_written > 0);
        assert_eq!(
            out.stats.bytes_scratch_written,
            out.stats.bytes_scratch_read
        );
    }

    #[test]
    fn hash_functions_spread_and_are_deterministic() {
        let keys: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::I32(i % 50), Value::I32(i / 50)])
            .collect();
        let mut node_counts = vec![0usize; 4];
        let mut bucket_counts = vec![0usize; 8];
        for k in &keys {
            node_counts[h1(k, 4)] += 1;
            bucket_counts[h2(k, 8)] += 1;
            assert_eq!(h1(k, 4), h1(k, 4));
        }
        for &c in &node_counts {
            assert!(c > 150, "h1 skewed: {node_counts:?}");
        }
        for &c in &bucket_counts {
            assert!(c > 60, "h2 skewed: {bucket_counts:?}");
        }
    }

    #[test]
    fn record_wire_format_roundtrips() {
        let schema = Schema::grid(&["x", "y"], &["wp"]).unwrap();
        let recs: Vec<Record> = (0..10)
            .map(|i| {
                Record::new(vec![
                    Value::I32(i),
                    Value::I32(-i),
                    Value::F32(i as f32 * 0.5),
                ])
            })
            .collect();
        let bytes = encode_records(&recs);
        assert_eq!(bytes.len(), 10 * schema.record_size());
        let cols = decode_columns(&schema, &bytes).unwrap();
        assert_eq!(cols[0][3], Value::I32(3));
        assert_eq!(cols[1][3], Value::I32(-3));
        assert_eq!(cols[2][9], Value::F32(4.5));
        assert!(decode_columns(&schema, &bytes[..5]).is_err());
    }

    #[test]
    fn routing_covers_all_rows_once() {
        let schema = std::sync::Arc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap());
        let cols = vec![
            (0..100).map(Value::I32).collect(),
            (0..100).map(|i| Value::I32(i * 7 % 13)).collect(),
            (0..100).map(|i| Value::F32(i as f32)).collect(),
        ];
        let st = SubTable::from_columns(SubTableId::new(0u32, 0u32), schema.clone(), cols).unwrap();
        let routed = route_subtable(&st, &[0, 1], 3, 4);
        let total_bytes: usize = routed
            .iter()
            .flat_map(|d| d.iter().map(|(_, b)| b.len()))
            .sum();
        assert_eq!(total_bytes, 100 * schema.record_size());
        // Bucket indices in range.
        for dest in &routed {
            for (b, bytes) in dest {
                assert!(*b < 4);
                assert_eq!(bytes.len() % schema.record_size(), 0);
            }
        }
    }
}
