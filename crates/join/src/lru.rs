//! The Caching Service's LRU sub-table cache.
//!
//! "We choose the cache replacement policy to be LRU, since this is a
//! reasonable policy in many cases and commonly used." Capacity is in
//! *bytes* — the §5.1 memory assumption (`2·c_R + b·c_S` records fit) is a
//! byte budget per compute node.
//!
//! Implemented from scratch: a `HashMap` from key to entry plus a recency
//! index ordered by a monotone tick, giving `O(log n)` touch/evict without
//! unsafe code.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Named cache counters — replaces the old undocumented
/// `(hits, misses, evictions)` tuple so call sites can't transpose
/// fields silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build/fetch the value.
    pub misses: u64,
    /// Entries displaced to stay within the byte capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups: every lookup is either a hit or a miss, so
    /// `hits + misses == lookups()` is the balance invariant the
    /// concurrency harness asserts.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A byte-capacity LRU cache.
pub struct LruCache<K, V> {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: HashMap<K, (V, u64, u64)>, // value, size, last-use tick
    recency: BTreeMap<u64, K>,          // tick → key
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            tick: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, refreshing its recency. Records a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.entries.contains_key(key) {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.touch(key)
    }

    /// Look up `key`, refreshing its recency *without* touching the
    /// hit/miss counters. The single-flight cache service uses this so a
    /// waiter that re-checks after a peer's fetch completes does not count
    /// a second lookup.
    pub fn touch(&mut self, key: &K) -> Option<&V> {
        let tick = self.tick + 1;
        match self.entries.get_mut(key) {
            Some((_, _, last)) => {
                self.tick = tick;
                self.recency.remove(last);
                *last = tick;
                self.recency.insert(tick, key.clone());
                self.entries.get(key).map(|(v, _, _)| v)
            }
            None => None,
        }
    }

    /// Check for `key` without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|(v, _, _)| v)
    }

    /// Insert `key → value` of `size` bytes, evicting least-recently-used
    /// entries as needed. Values larger than the whole capacity are not
    /// cached at all (they would evict everything for no benefit).
    pub fn put(&mut self, key: K, value: V, size: u64) {
        if size > self.capacity {
            return;
        }
        if let Some((_, old_size, last)) = self.entries.remove(&key) {
            self.used -= old_size;
            self.recency.remove(&last);
        }
        while self.used + size > self.capacity {
            let Some((&oldest, _)) = self.recency.iter().next() else {
                break;
            };
            let Some(victim) = self.recency.remove(&oldest) else {
                break;
            };
            let Some((_, vsize, _)) = self.entries.remove(&victim) else {
                break;
            };
            self.used -= vsize;
            self.evictions += 1;
        }
        let tick = self.next_tick();
        self.entries.insert(key.clone(), (value, size, tick));
        self.recency.insert(tick, key);
        self.used += size;
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Configured byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Named lookup/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: LruCache<u32, &str> = LruCache::new(100);
        assert!(c.get(&1).is_none());
        c.put(1, "a", 10);
        assert_eq!(c.get(&1), Some(&"a"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
        assert_eq!(s.lookups(), 2);
        assert_eq!(c.used(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(30);
        c.put(1, 10, 10);
        c.put(2, 20, 10);
        c.put(3, 30, 10);
        // Touch 1 so 2 becomes the LRU.
        assert!(c.get(&1).is_some());
        c.put(4, 40, 10);
        assert!(c.peek(&2).is_none(), "2 was LRU and must be evicted");
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&3).is_some());
        assert!(c.peek(&4).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c: LruCache<u32, ()> = LruCache::new(25);
        for i in 0..100 {
            c.put(i, (), 7);
            assert!(c.used() <= 25, "used {} at i={i}", c.used());
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn oversized_value_not_cached() {
        let mut c: LruCache<u32, ()> = LruCache::new(10);
        c.put(1, (), 5);
        c.put(2, (), 11);
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&1).is_some(), "existing entries untouched");
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c: LruCache<u32, &str> = LruCache::new(20);
        c.put(1, "small", 5);
        c.put(1, "big", 15);
        assert_eq!(c.used(), 15);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), Some(&"big"));
        // Downsize too.
        c.put(1, "tiny", 2);
        assert_eq!(c.used(), 2);
    }

    #[test]
    fn peek_does_not_affect_recency() {
        let mut c: LruCache<u32, ()> = LruCache::new(20);
        c.put(1, (), 10);
        c.put(2, (), 10);
        // Peek 1 (no refresh), then insert: 1 is still LRU.
        assert!(c.peek(&1).is_some());
        c.put(3, (), 10);
        assert!(c.peek(&1).is_none());
        assert!(c.peek(&2).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "peek not counted");
    }

    #[test]
    fn touch_refreshes_recency_without_counting() {
        let mut c: LruCache<u32, ()> = LruCache::new(20);
        c.put(1, (), 10);
        c.put(2, (), 10);
        // Touch 1 (uncounted refresh), then insert: 2 is now the LRU.
        assert!(c.touch(&1).is_some());
        assert!(c.touch(&9).is_none());
        c.put(3, (), 10);
        assert!(c.peek(&2).is_none(), "2 was LRU after the touch");
        assert!(c.peek(&1).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "touch not counted");
        assert_eq!(s.hit_rate(), 0.0);
    }
}
