//! Simulator executions of IJ and Grace Hash at paper scale.
//!
//! These functions drive the discrete-event [`SimCluster`] with exactly the
//! operation sequences the threaded runtime performs — chunk fetches,
//! hash-table builds, probes, bucket writes/reads — but carry only *costs*,
//! so a 2-billion-tuple run finishes in milliseconds. Used by the benchmark
//! harness to regenerate Figures 4-9 and by the validation harness to
//! check the analytic cost models.

use crate::connectivity::RegularPrediction;
use orv_cluster::{ClusterSpec, NodeClocks, SimCluster};
use orv_types::{Error, Result};

/// The dataset/compute shape of one simulated join, in cost-model terms.
#[derive(Clone, Copy, Debug)]
pub struct SimProblem {
    /// Tuples per table (`T`).
    pub t: f64,
    /// Tuples per left sub-table (`c_R`).
    pub c_r: f64,
    /// Tuples per right sub-table (`c_S`).
    pub c_s: f64,
    /// Record size of the left table, bytes (`RS_R`).
    pub rs_r: f64,
    /// Record size of the right table, bytes (`RS_S`).
    pub rs_s: f64,
    /// Number of connectivity-graph components (`N_C`).
    pub n_c: f64,
    /// Left sub-tables per component (`a`).
    pub a: f64,
    /// Right sub-tables per component (`b`).
    pub b: f64,
    /// Edges per component (`E_C`).
    pub e_c: f64,
    /// CPU operations per hash-table insert (`γ1`).
    pub gamma_build: f64,
    /// CPU operations per hash-table lookup (`γ2`).
    pub gamma_lookup: f64,
}

impl SimProblem {
    /// Build from grid/partition shapes via the closed-form connectivity
    /// prediction.
    pub fn from_regular(
        grid: [u64; 3],
        p: [u64; 3],
        q: [u64; 3],
        rs_r: f64,
        rs_s: f64,
        gamma_build: f64,
        gamma_lookup: f64,
    ) -> Self {
        let pred: RegularPrediction = crate::connectivity::predict_regular(grid, p, q);
        SimProblem {
            t: (grid[0] * grid[1] * grid[2]) as f64,
            c_r: (p[0] * p[1] * p[2]) as f64,
            c_s: (q[0] * q[1] * q[2]) as f64,
            rs_r,
            rs_s,
            n_c: pred.n_c as f64,
            a: pred.a as f64,
            b: pred.b as f64,
            e_c: pred.e_c as f64,
            gamma_build,
            gamma_lookup,
        }
    }

    /// Total edges `n_e = N_C · E_C`.
    pub fn n_e(&self) -> f64 {
        self.n_c * self.e_c
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            self.t,
            self.c_r,
            self.c_s,
            self.rs_r,
            self.rs_s,
            self.n_c,
            self.a,
            self.b,
            self.e_c,
            self.gamma_build,
            self.gamma_lookup,
        ];
        if positive.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(Error::Config(
                "all SimProblem fields must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Per-phase timing of a simulated run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimBreakdown {
    /// Makespan, seconds — the figure the paper plots.
    pub total_secs: f64,
    /// End of the partition phase (GH only; 0 for IJ).
    pub partition_secs: f64,
    /// Aggregate CPU busy time across compute nodes.
    pub cpu_busy_secs: f64,
    /// Aggregate bytes received by compute nodes.
    pub bytes_received: f64,
}

/// One micro-step of a compute node's IJ schedule: fetch a sub-table from
/// a storage node and do the associated CPU work.
#[derive(Clone, Copy, Debug)]
struct IjStep {
    storage_node: usize,
    bytes: f64,
    cpu_ops: f64,
}

/// Simulate the Indexed Join assuming the §5.1 memory assumption holds
/// (ideal cache: every sub-table fetched exactly once). Equivalent to
/// [`simulate_indexed_join_with_cache`] with an unbounded cache.
///
/// The driver always advances the node that is furthest behind by *one*
/// fetch+compute step, so shared FIFO resources receive requests in
/// (approximately) global time order — processing a whole component
/// atomically would enqueue far-future requests ahead of other nodes'
/// earlier ones and fabricate contention.
pub fn simulate_indexed_join(problem: &SimProblem, spec: &ClusterSpec) -> Result<SimBreakdown> {
    simulate_indexed_join_with_cache(problem, spec, f64::INFINITY)
}

/// Simulate the Indexed Join with a per-compute-node sub-table cache of
/// `cache_bytes` — the §5.1 extension at paper scale.
///
/// Under the two-stage schedule, sub-tables are only revisited *within* a
/// component: each right sub-table probes `E_C/b` left hash tables, which
/// must stay resident alongside the right sub-table being streamed. When
/// the cache cannot hold them all, the LRU evicts the lefts that the next
/// right will need first (lexicographic order streams lefts cyclically —
/// the classic LRU worst case), so every right must re-fetch and re-build
/// the non-resident lefts.
pub fn simulate_indexed_join_with_cache(
    problem: &SimProblem,
    spec: &ClusterSpec,
    cache_bytes: f64,
) -> Result<SimBreakdown> {
    problem.validate()?;
    let mut cluster = SimCluster::new(spec.clone())?;
    let nj = spec.n_compute;
    let ns = spec.n_storage as u64;
    let mut clocks = NodeClocks::new(nj);

    let n_c = problem.n_c.round() as u64;
    let a = problem.a.round().max(1.0) as u64;
    let b = problem.b.round().max(1.0) as u64;
    let left_bytes = problem.c_r * problem.rs_r;
    let right_bytes = problem.c_s * problem.rs_s;
    // Each right sub-table in a component is probed against E_C/b left
    // hash tables.
    let probes_per_right = (problem.e_c / problem.b).max(1.0);
    let build_ops = problem.c_r * problem.gamma_build;
    let probe_ops = probes_per_right * problem.c_s * problem.gamma_lookup;

    // Cache analysis (§5.1 extension): how many left sub-tables stay
    // resident while a right streams through?
    let lefts_per_right = probes_per_right.min(problem.a).max(1.0) as u64;
    let resident = if cache_bytes.is_infinite() {
        u64::MAX
    } else {
        (((cache_bytes - right_bytes) / left_bytes).floor().max(0.0)) as u64
    };
    let starved = resident < lefts_per_right;
    // On-demand refetches per right beyond the first (LRU cyclic reuse).
    let refetch_per_right = lefts_per_right.saturating_sub(resident);

    // Expand each node's schedule into micro-steps (components were dealt
    // round-robin, so node j's k-th component is global k·n_j + j; block-
    // cyclic chunk placement maps sub-table indices to storage nodes).
    let mut schedules: Vec<std::vec::IntoIter<IjStep>> = (0..nj)
        .map(|j| {
            let mut steps = Vec::new();
            let mut global = j as u64;
            while global < n_c {
                if !starved {
                    // Ideal: every left fetched and built exactly once.
                    for i in 0..a {
                        steps.push(IjStep {
                            storage_node: ((global * a + i) % ns) as usize,
                            bytes: left_bytes,
                            cpu_ops: build_ops,
                        });
                    }
                    for i in 0..b {
                        steps.push(IjStep {
                            storage_node: ((global * b + i) % ns) as usize,
                            bytes: right_bytes,
                            cpu_ops: probe_ops,
                        });
                    }
                } else {
                    // Starved: lefts fetched on demand per right; the
                    // first right loads all it needs, later rights refetch
                    // (and rebuild) whatever the LRU evicted.
                    for i in 0..b {
                        steps.push(IjStep {
                            storage_node: ((global * b + i) % ns) as usize,
                            bytes: right_bytes,
                            cpu_ops: probe_ops,
                        });
                        let fetches = if i == 0 {
                            lefts_per_right
                        } else {
                            refetch_per_right
                        };
                        for k in 0..fetches {
                            steps.push(IjStep {
                                storage_node: ((global * a + i + k) % ns) as usize,
                                bytes: left_bytes,
                                cpu_ops: build_ops,
                            });
                        }
                    }
                }
                global += nj as u64;
            }
            steps.into_iter()
        })
        .collect();

    let mut remaining: Vec<bool> = schedules.iter().map(|s| s.len() > 0).collect();
    // Earliest node that still has steps, one step at a time.
    while let Some(j) = (0..nj)
        .filter(|&k| remaining[k])
        .min_by(|&x, &y| clocks.get(x).total_cmp(&clocks.get(y)))
    {
        match schedules[j].next() {
            Some(step) => {
                let t = clocks.get(j);
                let t = cluster.fetch(step.storage_node, j, step.bytes, t);
                let t = cluster.cpu(j, step.cpu_ops, t);
                clocks.set(j, t);
            }
            None => remaining[j] = false,
        }
    }

    Ok(SimBreakdown {
        total_secs: clocks.makespan(),
        partition_secs: 0.0,
        cpu_busy_secs: cluster.cpu_busy(),
        bytes_received: cluster.bytes_received(),
    })
}

/// Simulate the Grace Hash join: a storage-driven partition phase that
/// reads every chunk, ships it to compute nodes and spills buckets to
/// scratch, then an independent per-node bucket-join phase.
pub fn simulate_grace_hash(problem: &SimProblem, spec: &ClusterSpec) -> Result<SimBreakdown> {
    problem.validate()?;
    let mut cluster = SimCluster::new(spec.clone())?;
    let nj = spec.n_compute;
    let ns = spec.n_storage;

    // --- Partition phase (storage nodes drive).
    let mut storage_clocks = NodeClocks::new(ns);
    // When each compute node may begin its bucket joins: once the last
    // bucket write destined for it has landed.
    let mut join_start = vec![0.0f64; nj];
    // Chunk streams of both tables; chunk i of a table lives on node
    // i % ns. `h1` scatters each chunk's records over *all* compute nodes,
    // so every chunk becomes n_j fragment messages and n_j bucket writes —
    // this request fan-out is what makes a shared NFS server degrade as
    // compute nodes are added (Figure 9). The storage node streams
    // (cut-through): it advances once it has read and sent a chunk; the
    // downstream bucket writes complete asynchronously.
    for (chunks, bytes) in [
        (
            (problem.t / problem.c_r).round() as u64,
            problem.c_r * problem.rs_r,
        ),
        (
            (problem.t / problem.c_s).round() as u64,
            problem.c_s * problem.rs_s,
        ),
    ] {
        let fragment = bytes / nj as f64;
        for i in 0..chunks {
            let s = (i % ns as u64) as usize;
            let t0 = storage_clocks.get(s);
            let read_done = cluster.read_chunk(s, bytes, t0);
            let mut send_done = read_done;
            for (dest, dest_start) in join_start.iter_mut().enumerate() {
                // Receiver backpressure: the destination QES instance is
                // single-threaded — it cannot accept the next fragment
                // until it finished spilling the previous one, so the wire
                // transfer waits for the receiver (as TCP flow control
                // would make it).
                let start = t0.max(*dest_start);
                let net_done = cluster.transfer(s, dest, fragment, start);
                send_done = send_done.max(net_done);
                let write_done = cluster.scratch_write(dest, fragment, net_done.max(read_done));
                *dest_start = dest_start.max(write_done);
            }
            storage_clocks.set(s, send_done);
        }
    }
    let partition_end = join_start.iter().cloned().fold(0.0, f64::max);

    // --- Join phase (compute nodes, independent).
    let mut compute_clocks = NodeClocks::new(nj);
    for (j, &start) in join_start.iter().enumerate() {
        compute_clocks.set(j, start);
    }
    let bytes_per_node = problem.t * (problem.rs_r + problem.rs_s) / nj as f64;
    let tuples_per_node = problem.t / nj as f64;
    // Bucket count from the memory budget (each bucket read back whole).
    let n_buckets = ((bytes_per_node / spec.mem_per_node as f64).ceil() as u64).max(1);
    let bucket_bytes = bytes_per_node / n_buckets as f64;
    let bucket_build_ops = tuples_per_node * problem.gamma_build / n_buckets as f64;
    let bucket_probe_ops = tuples_per_node * problem.gamma_lookup / n_buckets as f64;
    for _ in 0..n_buckets {
        for j in 0..nj {
            let mut t = compute_clocks.get(j);
            t = cluster.scratch_read(j, bucket_bytes, t);
            t = cluster.cpu(j, bucket_build_ops + bucket_probe_ops, t);
            compute_clocks.set(j, t);
        }
    }

    Ok(SimBreakdown {
        total_secs: compute_clocks.makespan(),
        partition_secs: partition_end,
        cpu_busy_secs: cluster.cpu_busy(),
        bytes_received: cluster.bytes_received(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// γ values matching the paper-testbed CPU calibration.
    const GAMMA_BUILD: f64 = 280.0;
    const GAMMA_LOOKUP: f64 = 230.0;

    fn problem(grid: [u64; 3], p: [u64; 3], q: [u64; 3]) -> SimProblem {
        SimProblem::from_regular(grid, p, q, 16.0, 16.0, GAMMA_BUILD, GAMMA_LOOKUP)
    }

    #[test]
    fn from_regular_matches_prediction() {
        let pr = problem([64, 64, 64], [16, 16, 16], [32, 8, 16]);
        assert_eq!(pr.t, 64.0 * 64.0 * 64.0);
        assert_eq!(pr.a, 2.0);
        assert_eq!(pr.b, 2.0);
        assert_eq!(pr.e_c, 4.0);
        assert_eq!(pr.n_e(), 128.0);
        pr.validate().unwrap();
    }

    #[test]
    fn both_sims_scale_linearly_in_t() {
        let spec = ClusterSpec::paper_testbed(5, 5);
        let small = problem([128, 128, 16], [16, 16, 16], [16, 16, 16]);
        let big = problem([256, 128, 16], [16, 16, 16], [16, 16, 16]);
        let ij_s = simulate_indexed_join(&small, &spec).unwrap().total_secs;
        let ij_b = simulate_indexed_join(&big, &spec).unwrap().total_secs;
        let gh_s = simulate_grace_hash(&small, &spec).unwrap().total_secs;
        let gh_b = simulate_grace_hash(&big, &spec).unwrap().total_secs;
        assert!((ij_b / ij_s - 2.0).abs() < 0.15, "IJ ratio {}", ij_b / ij_s);
        assert!((gh_b / gh_s - 2.0).abs() < 0.15, "GH ratio {}", gh_b / gh_s);
    }

    #[test]
    fn ij_wins_at_low_ne_cs() {
        // Identical partitions → E_C = 1, minimal probe work for IJ, while
        // GH still pays bucket write+read.
        let spec = ClusterSpec::paper_testbed(5, 5);
        let pr = problem([256, 256, 16], [16, 16, 16], [16, 16, 16]);
        let ij = simulate_indexed_join(&pr, &spec).unwrap().total_secs;
        let gh = simulate_grace_hash(&pr, &spec).unwrap().total_secs;
        assert!(ij < gh, "IJ {ij} should beat GH {gh} at low n_e·c_S");
    }

    #[test]
    fn gh_wins_at_high_ne_cs() {
        // Mismatched partitions with huge fan-out: IJ probe cost explodes.
        let spec = ClusterSpec::paper_testbed(5, 5);
        let pr = problem([256, 256, 16], [256, 1, 16], [1, 256, 16]);
        assert!(pr.e_c >= 256.0 * 256.0);
        let ij = simulate_indexed_join(&pr, &spec).unwrap().total_secs;
        let gh = simulate_grace_hash(&pr, &spec).unwrap().total_secs;
        assert!(gh < ij, "GH {gh} should beat IJ {ij} at high n_e·c_S");
    }

    #[test]
    fn gh_partition_phase_precedes_join_phase() {
        let spec = ClusterSpec::paper_testbed(2, 2);
        let pr = problem([64, 64, 4], [16, 16, 4], [16, 16, 4]);
        let r = simulate_grace_hash(&pr, &spec).unwrap();
        assert!(r.partition_secs > 0.0);
        assert!(r.total_secs > r.partition_secs);
    }

    #[test]
    fn more_compute_nodes_speed_both_up() {
        let pr = problem([256, 256, 8], [16, 16, 8], [8, 32, 8]);
        let t2 = simulate_indexed_join(&pr, &ClusterSpec::paper_testbed(5, 2))
            .unwrap()
            .total_secs;
        let t8 = simulate_indexed_join(&pr, &ClusterSpec::paper_testbed(5, 8))
            .unwrap()
            .total_secs;
        assert!(t8 < t2);
        let g2 = simulate_grace_hash(&pr, &ClusterSpec::paper_testbed(5, 2))
            .unwrap()
            .total_secs;
        let g8 = simulate_grace_hash(&pr, &ClusterSpec::paper_testbed(5, 8))
            .unwrap()
            .total_secs;
        assert!(g8 < g2);
    }

    #[test]
    fn nfs_punishes_grace_hash_more() {
        // Figure 9: under a single shared file server, GH's bucket I/O
        // contends with chunk reads; adding compute nodes must not help GH.
        let pr = problem([128, 128, 8], [16, 16, 8], [16, 16, 8]);
        let gh2 = simulate_grace_hash(&pr, &ClusterSpec::paper_testbed_nfs(2))
            .unwrap()
            .total_secs;
        let gh8 = simulate_grace_hash(&pr, &ClusterSpec::paper_testbed_nfs(8))
            .unwrap()
            .total_secs;
        assert!(
            gh8 >= gh2 * 0.95,
            "GH must not improve under NFS: {gh2} → {gh8}"
        );
        let ij2 = simulate_indexed_join(&pr, &ClusterSpec::paper_testbed_nfs(2))
            .unwrap()
            .total_secs;
        assert!(ij2 < gh2, "IJ is the better choice under NFS");
    }

    #[test]
    fn work_factor_hurts_ij_more() {
        // Figure 8: lower computing power (higher work factor) hurts the
        // CPU-bound side of the comparison more. At low n_e·c_S, IJ is
        // CPU-light, so slowing the CPU narrows then flips the gap.
        let pr = problem([256, 256, 16], [8, 8, 16], [64, 64, 16]);
        let mut fast = ClusterSpec::paper_testbed(5, 5);
        fast.cpu_work_factor = 1.0;
        let mut slow = fast.clone();
        slow.cpu_work_factor = 16.0;
        let ij_gain_fast = simulate_grace_hash(&pr, &fast).unwrap().total_secs
            - simulate_indexed_join(&pr, &fast).unwrap().total_secs;
        let ij_gain_slow = simulate_grace_hash(&pr, &slow).unwrap().total_secs
            - simulate_indexed_join(&pr, &slow).unwrap().total_secs;
        assert!(
            ij_gain_slow < ij_gain_fast,
            "IJ's advantage should shrink on slower CPUs: fast {ij_gain_fast}, slow {ij_gain_slow}"
        );
    }

    #[test]
    fn cache_starvation_degrades_monotonically() {
        use super::simulate_indexed_join_with_cache;
        // A tangled component: a = b = 16, lefts_per_right = 16, chunks of
        // 4096·16 = 64 KB.
        let pr = problem([256, 256, 16], [64, 4, 16], [4, 64, 16]);
        let spec = ClusterSpec::paper_testbed(5, 5);
        let ideal = simulate_indexed_join(&pr, &spec).unwrap().total_secs;
        // A cache holding the full working set behaves identically.
        let big = simulate_indexed_join_with_cache(&pr, &spec, (64u64 << 20) as f64)
            .unwrap()
            .total_secs;
        assert!(
            (big - ideal).abs() < 1e-9,
            "ideal {ideal} vs big-cache {big}"
        );
        // Shrinking the cache below a·c_R + c_S bytes forces refetches.
        let half = simulate_indexed_join_with_cache(&pr, &spec, 9.0 * 65536.0)
            .unwrap()
            .total_secs;
        let tiny = simulate_indexed_join_with_cache(&pr, &spec, 2.0 * 65536.0)
            .unwrap()
            .total_secs;
        assert!(ideal < half, "ideal {ideal} < half {half}");
        assert!(half < tiny, "half {half} < tiny {tiny}");
    }

    #[test]
    fn invalid_problem_rejected() {
        let mut pr = problem([8, 8, 8], [2, 2, 2], [2, 2, 2]);
        pr.t = 0.0;
        assert!(pr.validate().is_err());
        assert!(simulate_indexed_join(&pr, &ClusterSpec::paper_testbed(1, 1)).is_err());
    }
}
