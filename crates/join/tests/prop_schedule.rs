//! Property tests for IJ scheduling: every policy is a permutation of the
//! edge set, stage-1 balance holds, and the two-stage schedule preserves
//! component locality.

use orv_join::connectivity::ConnectivityGraph;
use orv_join::schedule::schedule;
use orv_join::SchedulePolicy;
use orv_types::{SubTableId, TableId};
use proptest::prelude::*;
use std::collections::HashSet;

fn graph_strategy() -> impl Strategy<Value = ConnectivityGraph> {
    // Random bipartite edges over up to 12×12 sub-tables.
    proptest::collection::hash_set((0u32..12, 0u32..12), 1..60).prop_map(|edges| {
        let edges: Vec<_> = edges
            .into_iter()
            .map(|(l, r)| (SubTableId::new(0u32, l), SubTableId::new(1u32, r)))
            .collect();
        ConnectivityGraph::from_edges(TableId(0), TableId(1), &["x"], edges)
    })
}

fn policies() -> impl Strategy<Value = SchedulePolicy> {
    prop_oneof![
        Just(SchedulePolicy::TwoStageLexicographic),
        (0u64..100).prop_map(SchedulePolicy::RandomPairOrder),
        Just(SchedulePolicy::PairRoundRobin),
        (0usize..6).prop_map(|b| SchedulePolicy::OpasGreedy {
            buffer_subtables: b
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_policy_is_a_permutation_of_edges(
        g in graph_strategy(),
        n in 1usize..5,
        policy in policies(),
    ) {
        let plans = schedule(&g, n, policy);
        prop_assert_eq!(plans.len(), n);
        let mut all: Vec<_> = plans.into_iter().flatten().collect();
        all.sort();
        let mut expected: Vec<_> = g.edges().collect();
        expected.sort();
        prop_assert_eq!(all, expected);
    }

    #[test]
    fn stage1_component_balance(
        g in graph_strategy(),
        n in 1usize..5,
    ) {
        // Each node receives either ⌊C/n⌋ or ⌈C/n⌉ complete components.
        let plans = schedule(&g, n, SchedulePolicy::TwoStageLexicographic);
        // Recover each node's component count by matching edges back to
        // components.
        for (ni, plan) in plans.iter().enumerate() {
            let edge_set: HashSet<_> = plan.iter().copied().collect();
            let mut comps_here = 0;
            for comp in &g.components {
                let mine = comp.edges.iter().filter(|e| edge_set.contains(e)).count();
                prop_assert!(
                    mine == 0 || mine == comp.edges.len(),
                    "node {ni} got a partial component"
                );
                comps_here += (mine == comp.edges.len()) as usize;
            }
            let total = g.num_components();
            let lo = total / n;
            let hi = total.div_ceil(n);
            prop_assert!((lo..=hi).contains(&comps_here));
        }
    }

    #[test]
    fn opas_never_worse_than_random_on_unit_lru(
        g in graph_strategy(),
        cap in 1u64..8,
        seed in 0u64..50,
    ) {
        let replay = |plan: &[(SubTableId, SubTableId)]| -> u64 {
            let mut cache: orv_join::LruCache<SubTableId, ()> = orv_join::LruCache::new(cap);
            let mut fetches = 0;
            for &(l, r) in plan {
                for id in [l, r] {
                    if cache.get(&id).is_none() {
                        fetches += 1;
                        cache.put(id, (), 1);
                    }
                }
            }
            fetches
        };
        let opas = schedule(&g, 1, SchedulePolicy::OpasGreedy { buffer_subtables: cap as usize });
        let rand = schedule(&g, 1, SchedulePolicy::RandomPairOrder(seed));
        // Greedy OPAS is a heuristic, not optimal — but with the simulated
        // buffer equal to the replay LRU it must not lose by more than one
        // fetch per component boundary.
        let slack = g.num_components() as u64;
        prop_assert!(
            replay(&opas[0]) <= replay(&rand[0]) + slack,
            "opas {} vs random {} (+{slack})",
            replay(&opas[0]),
            replay(&rand[0])
        );
    }
}
