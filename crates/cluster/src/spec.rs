//! Cluster descriptions consumed by both substrates.

use orv_types::{Error, Result};

/// Hardware description of a coupled storage/compute cluster.
///
/// Bandwidths are bytes/second; CPU rate is "operations"/second where one
/// operation is the unit the cost-model constants `γ1`/`γ2` count (see
/// `orv-costmodel`). `cpu_work_factor` replays the paper's Figure 8
/// methodology: a factor of `k` repeats hash build/probe work `k` times,
/// simulating a CPU `k×` slower.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of storage nodes (`n_s`).
    pub n_storage: usize,
    /// Number of compute/joiner nodes (`n_j`).
    pub n_compute: usize,
    /// Storage-disk read bandwidth per node (`readIO_bw`), bytes/s.
    pub disk_read_bw: f64,
    /// Scratch-disk write bandwidth per compute node (`writeIO_bw`), bytes/s.
    pub disk_write_bw: f64,
    /// Scratch-disk read bandwidth per compute node, bytes/s.
    pub scratch_read_bw: f64,
    /// Per-node NIC bandwidth, bytes/s (Switched Fast Ethernet ≈ 11.9 MB/s).
    pub nic_bw: f64,
    /// Optional switch-backplane cap on aggregate storage↔compute traffic,
    /// bytes/s. `None` = non-blocking switch.
    pub fabric_bw: Option<f64>,
    /// Memory available for sub-table caching per compute node, bytes.
    pub mem_per_node: u64,
    /// CPU rate in cost-model operations per second (the paper's `F`).
    pub cpu_ops_per_sec: f64,
    /// Work multiplier for hash build/probe (Figure 8's "halved computing
    /// power" trick): effective CPU rate is `cpu_ops_per_sec / factor`.
    pub cpu_work_factor: f64,
    /// If true, a single shared file server replaces per-node disks: all
    /// chunk reads *and* all scratch I/O go through one disk and one NIC
    /// (the paper's Figure 9 NFS scenario; compute nodes have no local
    /// disks).
    pub shared_fs: bool,
    /// Per-request overhead on storage disks, seconds. Chunks are laid out
    /// contiguously and read mostly sequentially, so this is a small
    /// amortized seek cost, not a full random-access seek.
    pub disk_seek_s: f64,
    /// Per-message network overhead, seconds.
    pub net_overhead_s: f64,
    /// Per-request overhead at the shared NFS server (RPC round trip plus
    /// the random seek caused by interleaved client streams), seconds.
    /// Only used when `shared_fs` is set.
    pub nfs_rpc_s: f64,
}

impl ClusterSpec {
    /// The paper's testbed: PIII 933 MHz nodes, 512 MB RAM, IDE disks
    /// (~25 MB/s streaming read, ~20 MB/s write), Switched Fast Ethernet
    /// (100 Mb/s ≈ 11.9 MB/s per node), up to 10 nodes.
    ///
    /// `cpu_ops_per_sec` is calibrated so that one hash-table insert
    /// (`γ1` ops) costs ≈ 0.30 µs and one lookup ≈ 0.25 µs on the PIII —
    /// the α values we also measure on the host via
    /// `orv-costmodel::calibrate`.
    pub fn paper_testbed(n_storage: usize, n_compute: usize) -> Self {
        ClusterSpec {
            n_storage,
            n_compute,
            disk_read_bw: 25.0e6,
            disk_write_bw: 20.0e6,
            scratch_read_bw: 25.0e6,
            nic_bw: 11.9e6,
            fabric_bw: None,
            mem_per_node: 512 << 20,
            cpu_ops_per_sec: 933.0e6,
            cpu_work_factor: 1.0,
            shared_fs: false,
            disk_seek_s: 0.0005,
            net_overhead_s: 0.0001,
            nfs_rpc_s: 0.030,
        }
    }

    /// Same testbed but with the single NFS file server of Figure 9.
    pub fn paper_testbed_nfs(n_compute: usize) -> Self {
        let mut s = Self::paper_testbed(1, n_compute);
        s.shared_fs = true;
        s
    }

    /// Validate counts and rates.
    pub fn validate(&self) -> Result<()> {
        if self.n_storage == 0 || self.n_compute == 0 {
            return Err(Error::Config(
                "cluster needs at least one storage and one compute node".into(),
            ));
        }
        let rates = [
            self.disk_read_bw,
            self.disk_write_bw,
            self.scratch_read_bw,
            self.nic_bw,
            self.cpu_ops_per_sec,
            self.cpu_work_factor,
        ];
        if rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
            return Err(Error::Config(
                "all bandwidths/rates must be positive".into(),
            ));
        }
        if let Some(f) = self.fabric_bw {
            if !(f.is_finite() && f > 0.0) {
                return Err(Error::Config("fabric bandwidth must be positive".into()));
            }
        }
        if !(self.disk_seek_s >= 0.0 && self.net_overhead_s >= 0.0 && self.nfs_rpc_s >= 0.0) {
            return Err(Error::Config(
                "per-request overheads must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Effective CPU rate after the work factor (`F / k`).
    pub fn effective_cpu_rate(&self) -> f64 {
        self.cpu_ops_per_sec / self.cpu_work_factor
    }

    /// The cost models' aggregate transfer bandwidth
    /// `min(Net_bw(n_s, n_j), readIO_bw · n_s)`.
    ///
    /// `Net_bw(n_s, n_j)` for a switched network is limited by whichever
    /// side has fewer NICs, and by the fabric if capped.
    pub fn aggregate_transfer_bw(&self) -> f64 {
        let net = self.aggregate_net_bw();
        let disks = if self.shared_fs {
            self.disk_read_bw
        } else {
            self.disk_read_bw * self.n_storage as f64
        };
        net.min(disks)
    }

    /// `Net_bw(n_s, n_j)`: aggregate network bandwidth between the storage
    /// and compute sides.
    pub fn aggregate_net_bw(&self) -> f64 {
        let storage_side = if self.shared_fs {
            self.nic_bw
        } else {
            self.nic_bw * self.n_storage as f64
        };
        let compute_side = self.nic_bw * self.n_compute as f64;
        let mut net = storage_side.min(compute_side);
        if let Some(f) = self.fabric_bw {
            net = net.min(f);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_validates() {
        let s = ClusterSpec::paper_testbed(5, 5);
        s.validate().unwrap();
        assert_eq!(s.n_storage, 5);
        assert!(!s.shared_fs);
        assert!(ClusterSpec::paper_testbed_nfs(4).shared_fs);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = ClusterSpec::paper_testbed(0, 5);
        assert!(s.validate().is_err());
        s = ClusterSpec::paper_testbed(5, 5);
        s.nic_bw = 0.0;
        assert!(s.validate().is_err());
        s = ClusterSpec::paper_testbed(5, 5);
        s.fabric_bw = Some(-1.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn aggregate_bandwidth_minimum_rule() {
        let mut s = ClusterSpec::paper_testbed(5, 3);
        // Network limited by the 3 compute NICs: 3 * 11.9 MB/s < 5 disks.
        assert_eq!(s.aggregate_net_bw(), 3.0 * 11.9e6);
        assert_eq!(
            s.aggregate_transfer_bw(),
            (3.0 * 11.9e6f64).min(5.0 * 25.0e6)
        );
        // Fabric cap dominates when small.
        s.fabric_bw = Some(10.0e6);
        assert_eq!(s.aggregate_transfer_bw(), 10.0e6);
    }

    #[test]
    fn nfs_funnels_through_one_server() {
        let s = ClusterSpec::paper_testbed_nfs(8);
        // One NIC and one disk on the storage side.
        assert_eq!(s.aggregate_net_bw(), 11.9e6);
        assert_eq!(s.aggregate_transfer_bw(), 11.9e6f64.min(25.0e6));
    }

    #[test]
    fn work_factor_scales_effective_rate() {
        let mut s = ClusterSpec::paper_testbed(1, 1);
        s.cpu_work_factor = 4.0;
        assert_eq!(s.effective_cpu_rate(), 933.0e6 / 4.0);
    }
}
