//! Cooperative cancellation with an optional deadline.
//!
//! A [`CancelToken`] is threaded from `QueryEngine::execute` down through
//! BDS reads, both join runtimes, throttle sleeps and recovery backoff
//! waits. Cancellation is *cooperative*: nothing is killed, every loop and
//! every sleep checks the token, so a cancelled or over-deadline query
//! unwinds promptly (bounded by one [`SLEEP_SLICE`]) through the normal
//! error path — scratch RAII guards drop, worker threads are joined, and
//! the caller sees a typed [`Error::Cancelled`] / [`Error::DeadlineExceeded`].

use orv_types::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest uninterruptible sleep anywhere in the runtime. Every throttle
/// wait and recovery backoff sleeps in slices of at most this, checking
/// the token between slices.
pub const SLEEP_SLICE: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cancellation flag plus optional deadline, shared by every worker of
/// one query.
///
/// The default token ([`CancelToken::none`]) can never fire and costs one
/// branch per check, so fault-free paths stay hot. Clones share state:
/// cancelling any clone cancels them all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels (the default for standalone runs).
    pub fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A cancellable token that also fires once `timeout` has elapsed.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            })),
        }
    }

    /// Cancel the query; every clone observes it at its next check.
    /// Cancelling a [`CancelToken::none`] token is a no-op.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether [`CancelToken::cancel`] has been called (deadline aside).
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// The instant after which [`check`](Self::check) fails, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Fail fast if the query was cancelled or ran past its deadline.
    ///
    /// This is the single cancellation propagation point: sprinkle it at
    /// the top of every per-chunk / per-batch / per-bucket loop body.
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(Error::Cancelled);
        }
        if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(Error::DeadlineExceeded);
        }
        Ok(())
    }

    /// Sleep for `duration`, waking early (with the cancellation error)
    /// if the token fires. Sleeps in [`SLEEP_SLICE`] chunks so the wait
    /// never outlives a cancellation by more than one slice; a deadline
    /// inside the requested window shortens the final slice to hit it.
    pub fn sleep(&self, duration: Duration) -> Result<()> {
        let until = Instant::now() + duration;
        loop {
            self.check()?;
            let now = Instant::now();
            if now >= until {
                return Ok(());
            }
            let mut slice = (until - now).min(SLEEP_SLICE);
            if let Some(deadline) = self.deadline() {
                slice = slice.min(deadline.saturating_duration_since(now));
            }
            std::thread::sleep(slice.max(Duration::from_millis(1)));
        }
    }
}

/// A countdown over a wall-clock window, for slicing client-side waits.
///
/// Wraps the `Instant` arithmetic that used to be open-coded (behind
/// L006 suppressions) wherever a caller waited on a ticket in
/// [`SLEEP_SLICE`] slices while watching a [`CancelToken`]. Lives here
/// because this module is the runtime's one sanctioned wall-clock site.
#[derive(Debug, Clone, Copy)]
pub struct WaitBudget {
    until: Instant,
}

impl WaitBudget {
    /// A budget that expires `window` from now.
    pub fn start(window: Duration) -> Self {
        WaitBudget {
            until: Instant::now() + window,
        }
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.until.saturating_duration_since(Instant::now())
    }

    /// Time left, capped at [`SLEEP_SLICE`] — the polling quantum for
    /// `wait → cancel-check` loops.
    pub fn slice(&self) -> Duration {
        self.remaining().min(SLEEP_SLICE)
    }

    /// Whether the window has fully elapsed.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_fires() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.deadline().is_none());
        t.sleep(Duration::from_millis(1)).unwrap();
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.check().is_ok());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn deadline_fires_as_deadline_exceeded() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        assert!(t.check().is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(t.check(), Err(Error::DeadlineExceeded)));
        // An explicit cancel takes precedence in the report.
        t.cancel();
        assert!(matches!(t.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn sleep_wakes_within_one_slice_of_cancel() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            c.cancel();
        });
        let start = Instant::now();
        let err = t.sleep(Duration::from_secs(60)).unwrap_err();
        h.join().unwrap();
        assert!(matches!(err, Error::Cancelled));
        assert!(
            start.elapsed() < SLEEP_SLICE + Duration::from_millis(100),
            "woke after {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn sleep_completes_when_not_cancelled() {
        let t = CancelToken::new();
        let start = Instant::now();
        t.sleep(Duration::from_millis(20)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn wait_budget_counts_down_and_expires() {
        let b = WaitBudget::start(Duration::from_millis(40));
        assert!(!b.expired());
        assert!(b.remaining() <= Duration::from_millis(40));
        assert!(b.slice() <= SLEEP_SLICE);
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.expired());
        assert_eq!(b.remaining(), Duration::ZERO);
        assert_eq!(b.slice(), Duration::ZERO);
    }

    #[test]
    fn wait_budget_slice_caps_at_sleep_slice() {
        let b = WaitBudget::start(Duration::from_secs(60));
        assert_eq!(b.slice(), SLEEP_SLICE);
    }
}
