//! Cooperative cancellation with an optional deadline.
//!
//! A [`CancelToken`] is threaded from `QueryEngine::execute` down through
//! BDS reads, both join runtimes, throttle sleeps and recovery backoff
//! waits. Cancellation is *cooperative*: nothing is killed, every loop and
//! every sleep checks the token, so a cancelled or over-deadline query
//! unwinds promptly (bounded by one [`SLEEP_SLICE`]) through the normal
//! error path — scratch RAII guards drop, worker threads are joined, and
//! the caller sees a typed [`Error::Cancelled`] / [`Error::DeadlineExceeded`].

use orv_types::{Error, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest uninterruptible sleep anywhere in the runtime. Every throttle
/// wait and recovery backoff sleeps in slices of at most this, checking
/// the token between slices.
pub const SLEEP_SLICE: Duration = Duration::from_millis(250);

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cancellation flag plus optional deadline, shared by every worker of
/// one query.
///
/// The default token ([`CancelToken::none`]) can never fire and costs one
/// branch per check, so fault-free paths stay hot. Clones share state:
/// cancelling any clone cancels them all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels (the default for standalone runs).
    pub fn none() -> Self {
        CancelToken { inner: None }
    }

    /// A cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A cancellable token that also fires once `timeout` has elapsed.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A cancellable token that fires at an absolute instant — the hook
    /// [`DeadlineBudget`] uses to mint hop tokens that all point at the
    /// *same* root deadline instead of restarting the countdown per hop.
    pub fn with_deadline_at(until: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(until),
            })),
        }
    }

    /// Cancel the query; every clone observes it at its next check.
    /// Cancelling a [`CancelToken::none`] token is a no-op.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether [`CancelToken::cancel`] has been called (deadline aside).
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// The instant after which [`check`](Self::check) fails, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Fail fast if the query was cancelled or ran past its deadline.
    ///
    /// This is the single cancellation propagation point: sprinkle it at
    /// the top of every per-chunk / per-batch / per-bucket loop body.
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(Error::Cancelled);
        }
        if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(Error::DeadlineExceeded);
        }
        Ok(())
    }

    /// Sleep for `duration`, waking early (with the cancellation error)
    /// if the token fires. Sleeps in [`SLEEP_SLICE`] chunks so the wait
    /// never outlives a cancellation by more than one slice; a deadline
    /// inside the requested window shortens the final slice to hit it.
    pub fn sleep(&self, duration: Duration) -> Result<()> {
        let until = Instant::now() + duration;
        loop {
            self.check()?;
            let now = Instant::now();
            if now >= until {
                return Ok(());
            }
            let mut slice = (until - now).min(SLEEP_SLICE);
            if let Some(deadline) = self.deadline() {
                slice = slice.min(deadline.saturating_duration_since(now));
            }
            std::thread::sleep(slice.max(Duration::from_millis(1)));
        }
    }
}

/// A monotone-shrinking deadline budget, threaded submit → queue →
/// engine → every federated sub-query.
///
/// The root deadline is fixed once at submit; each fan-out hop derives a
/// *smaller* budget by subtracting a hop margin ([`shrink`]), leaving the
/// parent time to collect, merge and degrade after the child gives up.
/// Budgets only ever shrink — [`shrink`] can never move the deadline
/// later, and [`remaining`] saturates at zero — so a chain of hops is
/// monotone non-increasing and never negative no matter how margins are
/// chosen. Lives here because this module is the runtime's one
/// sanctioned wall-clock site (lint rule L006).
///
/// [`shrink`]: DeadlineBudget::shrink
/// [`remaining`]: DeadlineBudget::remaining
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineBudget {
    until: Instant,
}

impl DeadlineBudget {
    /// A root budget of `total` starting now.
    pub fn root(total: Duration) -> Self {
        DeadlineBudget {
            until: Instant::now() + total,
        }
    }

    /// The budget a deadline-bearing token implies, if it has one.
    pub fn from_token(token: &CancelToken) -> Option<Self> {
        token.deadline().map(|until| DeadlineBudget { until })
    }

    /// Derive the child budget for one fan-out hop: the deadline moves
    /// *earlier* by `hop_margin` (saturating — it never moves later, and
    /// an oversized margin simply yields an already-expired budget).
    pub fn shrink(&self, hop_margin: Duration) -> Self {
        DeadlineBudget {
            until: self.until.checked_sub(hop_margin).unwrap_or(self.until),
        }
    }

    /// The absolute instant this budget expires. Exposed so budget
    /// chains can be compared without racing the clock.
    pub fn hard_deadline(&self) -> Instant {
        self.until
    }

    /// Time left before expiry (zero once expired — never negative).
    pub fn remaining(&self) -> Duration {
        self.until.saturating_duration_since(Instant::now())
    }

    /// Whether the budget has fully expired.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Mint a cancellable token that fires at this budget's deadline —
    /// the token handed to the next hop.
    pub fn token(&self) -> CancelToken {
        CancelToken::with_deadline_at(self.until)
    }
}

/// A countdown over a wall-clock window, for slicing client-side waits.
///
/// Wraps the `Instant` arithmetic that used to be open-coded (behind
/// L006 suppressions) wherever a caller waited on a ticket in
/// [`SLEEP_SLICE`] slices while watching a [`CancelToken`]. Lives here
/// because this module is the runtime's one sanctioned wall-clock site.
#[derive(Debug, Clone, Copy)]
pub struct WaitBudget {
    until: Instant,
}

impl WaitBudget {
    /// A budget that expires `window` from now.
    pub fn start(window: Duration) -> Self {
        WaitBudget {
            until: Instant::now() + window,
        }
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.until.saturating_duration_since(Instant::now())
    }

    /// Time left, capped at [`SLEEP_SLICE`] — the polling quantum for
    /// `wait → cancel-check` loops.
    pub fn slice(&self) -> Duration {
        self.remaining().min(SLEEP_SLICE)
    }

    /// Whether the window has fully elapsed.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_fires() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.deadline().is_none());
        t.sleep(Duration::from_millis(1)).unwrap();
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.check().is_ok());
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn deadline_fires_as_deadline_exceeded() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        assert!(t.check().is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert!(matches!(t.check(), Err(Error::DeadlineExceeded)));
        // An explicit cancel takes precedence in the report.
        t.cancel();
        assert!(matches!(t.check(), Err(Error::Cancelled)));
    }

    #[test]
    fn sleep_wakes_within_one_slice_of_cancel() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            c.cancel();
        });
        let start = Instant::now();
        let err = t.sleep(Duration::from_secs(60)).unwrap_err();
        h.join().unwrap();
        assert!(matches!(err, Error::Cancelled));
        assert!(
            start.elapsed() < SLEEP_SLICE + Duration::from_millis(100),
            "woke after {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn sleep_completes_when_not_cancelled() {
        let t = CancelToken::new();
        let start = Instant::now();
        t.sleep(Duration::from_millis(20)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn wait_budget_counts_down_and_expires() {
        let b = WaitBudget::start(Duration::from_millis(40));
        assert!(!b.expired());
        assert!(b.remaining() <= Duration::from_millis(40));
        assert!(b.slice() <= SLEEP_SLICE);
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.expired());
        assert_eq!(b.remaining(), Duration::ZERO);
        assert_eq!(b.slice(), Duration::ZERO);
    }

    #[test]
    fn wait_budget_slice_caps_at_sleep_slice() {
        let b = WaitBudget::start(Duration::from_secs(60));
        assert_eq!(b.slice(), SLEEP_SLICE);
    }

    #[test]
    fn deadline_budget_shrinks_monotonically() {
        let root = DeadlineBudget::root(Duration::from_secs(10));
        let hop1 = root.shrink(Duration::from_millis(250));
        let hop2 = hop1.shrink(Duration::from_millis(250));
        assert!(hop1.hard_deadline() < root.hard_deadline());
        assert!(hop2.hard_deadline() < hop1.hard_deadline());
        assert!(hop2.remaining() <= hop1.remaining());
        assert!(!root.expired());
        // A zero margin is a fixed point, never a later deadline.
        assert_eq!(
            hop2.shrink(Duration::ZERO).hard_deadline(),
            hop2.hard_deadline()
        );
    }

    #[test]
    fn deadline_budget_saturates_instead_of_going_negative() {
        let root = DeadlineBudget::root(Duration::from_millis(5));
        let starved = root.shrink(Duration::from_secs(3600));
        assert!(starved.expired());
        assert_eq!(starved.remaining(), Duration::ZERO);
        // Expired budgets mint tokens that fail check() immediately.
        assert!(matches!(
            starved.token().check(),
            Err(Error::DeadlineExceeded)
        ));
    }

    #[test]
    fn deadline_budget_round_trips_through_tokens() {
        let root = DeadlineBudget::root(Duration::from_secs(5));
        let token = root.token();
        let back = DeadlineBudget::from_token(&token).unwrap();
        assert_eq!(back.hard_deadline(), root.hard_deadline());
        assert!(DeadlineBudget::from_token(&CancelToken::new()).is_none());
        assert!(DeadlineBudget::from_token(&CancelToken::none()).is_none());
    }
}
