//! Epoch-published immutable snapshots — a hand-rolled arc-swap.
//!
//! [`EpochCell`] holds a value behind an atomic pointer. Readers call
//! [`EpochCell::load`] — one `Acquire` pointer load plus an `Arc` clone,
//! no lock, no spin, no wait — and get an immutable snapshot that stays
//! valid however long they hold it. Writers serialize on a mutex, clone
//! the current value, mutate the clone, and publish it with a `Release`
//! store; readers that loaded the old epoch keep computing against it
//! undisturbed.
//!
//! This is the catalog-read fast path the serving layer needs: with the
//! catalog behind an `RwLock`, every warm query paid a shared-lock
//! acquisition (and cache-line bounce) per statement; behind an
//! `EpochCell` the read side is wait-free. DDL (`CREATE VIEW`) is rare
//! and metadata-sized, so clone-and-publish on the write side is cheap.
//!
//! ## Memory reclamation
//!
//! The classic arc-swap hazard is a reader dereferencing a pointer the
//! writer just retired. We sidestep reclamation entirely: every
//! published epoch is boxed and retained in a writer-side history for
//! the lifetime of the cell, so the raw pointer a reader loaded can
//! never dangle. Epochs are small (an `Arc` plus a version number — the
//! payload itself is shared, not duplicated per epoch beyond the
//! writer's clone), and publishes are driven by DDL, so the history
//! stays tiny. The retained history doubles as *versioned snapshots*:
//! [`EpochCell::at_version`] answers "what did epoch `v` look like",
//! which live-ingest and time-travel reads build on.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Mutex, PoisonError};

/// One published epoch: the version number and the shared payload.
struct Node<T> {
    version: u64,
    value: std::sync::Arc<T>,
}

/// A value readable without locking, replaced by clone-and-publish.
///
/// `T` must be `Clone` for [`EpochCell::publish_with`]; plain
/// [`EpochCell::publish`] only needs the value itself.
pub struct EpochCell<T> {
    /// The current epoch. Always points at a node owned by `history`,
    /// so dereferencing a loaded pointer is sound for the cell's
    /// lifetime.
    current: AtomicPtr<Node<T>>,
    /// Every epoch ever published, never freed (see module docs). The
    /// mutex also serializes writers. The boxing is load-bearing:
    /// `current` holds raw pointers into these nodes, and a
    /// `Vec<Node<T>>` would move them when it reallocates.
    #[allow(clippy::vec_box)]
    history: Mutex<Vec<Box<Node<T>>>>,
}

fn relock<G>(r: Result<G, PoisonError<G>>) -> G {
    // Publishing is clone → mutate → push → store; none of those leave
    // the history structurally torn, so a poisoned writer mutex is
    // recoverable.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<T> EpochCell<T> {
    /// A cell whose epoch 0 is `value`.
    pub fn new(value: T) -> Self {
        let node = Box::new(Node {
            version: 0,
            value: std::sync::Arc::new(value),
        });
        let ptr = Box::as_ref(&node) as *const Node<T> as *mut Node<T>;
        EpochCell {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![node]),
        }
    }

    #[inline]
    fn current_node(&self) -> &Node<T> {
        let p = self.current.load(Ordering::Acquire);
        // SAFETY: `current` only ever holds pointers to nodes boxed into
        // `history`, which grows monotonically and is dropped only with
        // the cell itself — `Box` contents never move, so `p` is valid
        // and unaliased-by-writers (nodes are immutable once published)
        // for the duration of this borrow of `self`.
        unsafe { &*p }
    }

    /// The current snapshot. Wait-free: one atomic load + `Arc` clone.
    #[inline]
    pub fn load(&self) -> std::sync::Arc<T> {
        std::sync::Arc::clone(&self.current_node().value)
    }

    /// The current snapshot together with its epoch version.
    #[inline]
    pub fn load_versioned(&self) -> (u64, std::sync::Arc<T>) {
        let node = self.current_node();
        (node.version, std::sync::Arc::clone(&node.value))
    }

    /// The current epoch version (0 for the initial value, +1 per
    /// publish).
    #[inline]
    pub fn version(&self) -> u64 {
        self.current_node().version
    }

    /// The snapshot as of epoch `version`, if that epoch was published.
    pub fn at_version(&self, version: u64) -> Option<std::sync::Arc<T>> {
        let history = relock(self.history.lock());
        history
            .get(version as usize)
            .map(|n| std::sync::Arc::clone(&n.value))
    }

    /// Publish `value` as the next epoch, returning its version.
    pub fn publish(&self, value: T) -> u64 {
        let mut history = relock(self.history.lock());
        let version = history.len() as u64;
        let node = Box::new(Node {
            version,
            value: std::sync::Arc::new(value),
        });
        let ptr = Box::as_ref(&node) as *const Node<T> as *mut Node<T>;
        history.push(node);
        self.current.store(ptr, Ordering::Release);
        version
    }
}

impl<T: Clone> EpochCell<T> {
    /// Clone the current value, let `mutate` edit the clone, publish the
    /// result, and return the new version. Writers serialize here;
    /// readers are never blocked.
    pub fn publish_with(&self, mutate: impl FnOnce(&mut T)) -> u64 {
        let mut history = relock(self.history.lock());
        // Clone under the writer mutex so concurrent publishers cannot
        // lose each other's updates.
        let mut next = (*history[history.len() - 1].value).clone();
        mutate(&mut next);
        let version = history.len() as u64;
        let node = Box::new(Node {
            version,
            value: std::sync::Arc::new(next),
        });
        let ptr = Box::as_ref(&node) as *const Node<T> as *mut Node<T>;
        history.push(node);
        self.current.store(ptr, Ordering::Release);
        version
    }

    /// [`EpochCell::publish_with`] for fallible edits: the new epoch is
    /// published only when `mutate` returns `Ok`; on `Err` the current
    /// epoch stands and nothing is retained.
    pub fn try_publish_with<R, E>(
        &self,
        mutate: impl FnOnce(&mut T) -> Result<R, E>,
    ) -> Result<(u64, R), E> {
        let mut history = relock(self.history.lock());
        let mut next = (*history[history.len() - 1].value).clone();
        let out = mutate(&mut next)?;
        let version = history.len() as u64;
        let node = Box::new(Node {
            version,
            value: std::sync::Arc::new(next),
        });
        let ptr = Box::as_ref(&node) as *const Node<T> as *mut Node<T>;
        history.push(node);
        self.current.store(ptr, Ordering::Release);
        Ok((version, out))
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let node = self.current_node();
        f.debug_struct("EpochCell")
            .field("version", &node.version)
            .field("value", &node.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Barrier};

    #[test]
    fn load_sees_initial_then_published() {
        let cell = EpochCell::new(vec![1, 2]);
        assert_eq!(*cell.load(), vec![1, 2]);
        assert_eq!(cell.version(), 0);
        let v = cell.publish(vec![3]);
        assert_eq!(v, 1);
        assert_eq!(*cell.load(), vec![3]);
        let (ver, snap) = cell.load_versioned();
        assert_eq!((ver, &*snap), (1, &vec![3]));
    }

    #[test]
    fn old_snapshot_survives_publish() {
        let cell = EpochCell::new(String::from("old"));
        let snap = cell.load();
        cell.publish(String::from("new"));
        assert_eq!(&*snap, "old", "a held snapshot is immutable");
        assert_eq!(&*cell.load(), "new");
    }

    #[test]
    fn at_version_replays_history() {
        let cell = EpochCell::new(0u32);
        for i in 1..5u32 {
            cell.publish_with(|v| *v = i);
        }
        for i in 0..5u32 {
            assert_eq!(*cell.at_version(i as u64).unwrap(), i);
        }
        assert!(cell.at_version(5).is_none());
    }

    #[test]
    fn try_publish_with_keeps_epoch_on_err() {
        let cell = EpochCell::new(7u32);
        let before = cell.version();
        let err: Result<(u64, ()), &str> = cell.try_publish_with(|_| Err("rejected"));
        assert_eq!(err.unwrap_err(), "rejected");
        assert_eq!(cell.version(), before, "failed edit publishes nothing");
        let (v, ()) = cell
            .try_publish_with(|x| {
                *x += 1;
                Ok::<(), &str>(())
            })
            .unwrap();
        assert_eq!((v, *cell.load()), (before + 1, 8));
    }

    #[test]
    fn concurrent_readers_never_tear() {
        // Writers publish (a, a) pairs; readers must never observe a
        // mixed pair, and loads must stay valid across publishes.
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let barrier = Arc::new(Barrier::new(5));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let snap = cell.load();
                    assert_eq!(snap.0, snap.1, "torn epoch observed");
                }
            }));
        }
        barrier.wait();
        for i in 1..=500u64 {
            cell.publish((i, i));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.version(), 500);
        assert_eq!(*cell.load(), (500, 500));
    }

    #[test]
    fn concurrent_publishers_serialize_without_lost_updates() {
        let cell = Arc::new(EpochCell::new(0u64));
        let n = 8;
        let per = 50u64;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..per {
                        cell.publish_with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), n as u64 * per);
        assert_eq!(cell.version(), n as u64 * per);
    }
}
