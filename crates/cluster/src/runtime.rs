//! Building blocks for the real threaded cluster runtime.
//!
//! The threaded runtime maps each cluster node to an OS thread; crossbeam
//! channels are the interconnect. This module supplies the accounting and
//! storage pieces those threads share:
//!
//! * [`ByteCounter`] — lock-free counters for bytes moved per link class;
//! * [`Throttle`] — optional bandwidth pacing, so laptop runs can emulate
//!   Fast-Ethernet-era ratios when wall-clock realism matters;
//! * [`Scratch`] — per-compute-node bucket storage for Grace Hash (memory
//!   or real temp files);
//! * [`RunStats`] — the full accounting of one join execution, used both
//!   for reporting and for validating cost-model *inputs* exactly.

use crate::cancel::CancelToken;
use crate::checksum;
use orv_types::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable byte counter.
#[derive(Clone, Default, Debug)]
pub struct ByteCounter(Arc<AtomicU64>);

impl ByteCounter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` bytes.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Paces an activity to a target bandwidth by sleeping off any surplus.
///
/// Threads call [`Throttle::consume`] after moving `n` bytes; the throttle
/// sleeps long enough that the cumulative rate since construction does not
/// exceed `bytes_per_sec`. A `None` rate is a no-op.
pub struct Throttle {
    start: Instant,
    bytes: AtomicU64,
    rate: Option<f64>,
}

impl Throttle {
    /// A throttle at `bytes_per_sec`, or unthrottled if `None`.
    pub fn new(bytes_per_sec: Option<f64>) -> Self {
        Throttle {
            start: Instant::now(),
            bytes: AtomicU64::new(0),
            rate: bytes_per_sec.filter(|r| r.is_finite() && *r > 0.0),
        }
    }

    /// Longest single sleep `consume` will issue; larger surpluses are
    /// paid off in slices so one call never parks its thread unboundedly
    /// (and re-checks real elapsed time between slices).
    const MAX_SLEEP_SLICE: Duration = Duration::from_millis(250);

    /// Account `n` bytes, sleeping if ahead of the allowed rate.
    pub fn consume(&self, n: u64) {
        // An inert token cannot fire, so the error arm is unreachable.
        let _ = self.consume_cancellable(n, &CancelToken::none());
    }

    /// [`Throttle::consume`] observing a [`CancelToken`]: the pacing
    /// sleep is checked every [`Self::MAX_SLEEP_SLICE`], so a cancelled
    /// query stops paying bandwidth debt within one slice. The bytes are
    /// accounted either way — they did move.
    pub fn consume_cancellable(&self, n: u64, cancel: &CancelToken) -> Result<()> {
        let total = self.bytes.fetch_add(n, Ordering::Relaxed) + n;
        let Some(rate) = self.rate else {
            return cancel.check();
        };
        let due = total as f64 / rate;
        let mut elapsed = self.start.elapsed().as_secs_f64();
        while due > elapsed {
            cancel.check()?;
            let wait = Duration::from_secs_f64(due - elapsed).min(Self::MAX_SLEEP_SLICE);
            cancel.sleep(wait)?;
            elapsed = self.start.elapsed().as_secs_f64();
        }
        cancel.check()
    }

    /// Bytes consumed so far.
    pub fn total(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Backing store for Grace-Hash buckets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScratchKind {
    /// Buckets in process memory (fast; still byte-accounted).
    Memory,
    /// Buckets in real temp files (exercises the write/read path).
    TempFile,
}

/// RAII owner of a scratch temp directory: the directory is removed when
/// the guard drops, which happens on *every* exit path — normal drop,
/// early `?` returns during setup, and unwinds out of panicking worker
/// threads — so failed executions never leak temp files.
struct TempDirGuard {
    path: PathBuf,
}

impl TempDirGuard {
    fn create(path: PathBuf) -> Result<Self> {
        fs::create_dir_all(&path)?;
        Ok(TempDirGuard { path })
    }
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Per-compute-node scratch space: named append-only buckets.
///
/// Every bucket keeps a running CRC32C updated on append (the
/// write-boundary checksum), so [`Scratch::verify_bucket`] can check a
/// read-back bucket without ever re-reading it from the store.
pub struct Scratch {
    kind: ScratchKind,
    mem: Mutex<HashMap<String, Vec<u8>>>,
    dir: Option<TempDirGuard>,
    /// Incremental CRC32C state per bucket (absent = empty bucket).
    crcs: Mutex<HashMap<String, u32>>,
    written: ByteCounter,
    read: ByteCounter,
}

impl Scratch {
    /// Create scratch space; `TempFile` scratch creates a unique directory
    /// under the system temp dir (removed again when the `Scratch` drops,
    /// on success and error paths alike).
    pub fn new(kind: ScratchKind, label: &str) -> Result<Self> {
        let dir = match kind {
            ScratchKind::Memory => None,
            ScratchKind::TempFile => {
                let dir = std::env::temp_dir().join(format!(
                    "orv-scratch-{label}-{}-{:x}",
                    std::process::id(),
                    &*Box::new(0u8) as *const u8 as usize
                ));
                Some(TempDirGuard::create(dir)?)
            }
        };
        Ok(Scratch {
            kind,
            mem: Mutex::new(HashMap::new()),
            dir,
            crcs: Mutex::new(HashMap::new()),
            written: ByteCounter::new(),
            read: ByteCounter::new(),
        })
    }

    /// Append bytes to bucket `name`.
    pub fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        self.written.add(data.len() as u64);
        {
            let mut crcs = self.crcs.lock();
            let state = crcs.entry(name.to_string()).or_insert_with(checksum::begin);
            *state = checksum::update(*state, data);
        }
        match self.kind {
            ScratchKind::Memory => {
                self.mem
                    .lock()
                    .entry(name.to_string())
                    .or_default()
                    .extend_from_slice(data);
                Ok(())
            }
            ScratchKind::TempFile => {
                let path = self.bucket_path(name)?;
                let mut f = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                f.write_all(data)?;
                Ok(())
            }
        }
    }

    /// Read a whole bucket back (empty if never written).
    pub fn read_bucket(&self, name: &str) -> Result<Vec<u8>> {
        let data = match self.kind {
            ScratchKind::Memory => self.mem.lock().get(name).cloned().unwrap_or_default(),
            ScratchKind::TempFile => {
                let path = self.bucket_path(name)?;
                match fs::File::open(path) {
                    Ok(mut f) => {
                        let mut buf = Vec::new();
                        f.read_to_end(&mut buf)?;
                        buf
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                    Err(e) => return Err(e.into()),
                }
            }
        };
        self.read.add(data.len() as u64);
        Ok(data)
    }

    fn bucket_path(&self, name: &str) -> Result<PathBuf> {
        if name.contains('/') || name.contains("..") {
            return Err(Error::Config(format!("invalid bucket name `{name}`")));
        }
        match &self.dir {
            Some(guard) => Ok(guard.path.join(name)),
            None => Err(Error::Config("memory scratch has no bucket files".into())),
        }
    }

    /// Size of one bucket in bytes (0 if never written).
    pub fn bucket_size(&self, name: &str) -> Result<u64> {
        match self.kind {
            ScratchKind::Memory => Ok(self
                .mem
                .lock()
                .get(name)
                .map(|b| b.len() as u64)
                .unwrap_or(0)),
            ScratchKind::TempFile => {
                let path = self.bucket_path(name)?;
                match std::fs::metadata(path) {
                    Ok(m) => Ok(m.len()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
                    Err(e) => Err(e.into()),
                }
            }
        }
    }

    /// CRC32C of bucket `name`'s full contents, maintained incrementally
    /// across appends (0 for a never-written bucket, matching the CRC of
    /// the empty payload).
    pub fn bucket_crc(&self, name: &str) -> u32 {
        self.crcs
            .lock()
            .get(name)
            .map(|&state| checksum::finish(state))
            .unwrap_or_else(|| checksum::crc32c(&[]))
    }

    /// Verify bytes read back from bucket `name` against its running
    /// write-side checksum; a mismatch is a typed `Error::Integrity` and
    /// the caller should re-read (the durable bucket itself is intact).
    pub fn verify_bucket(&self, name: &str, bytes: &[u8]) -> Result<()> {
        checksum::verify(
            self.bucket_crc(name),
            bytes,
            &format!("scratch bucket {name}"),
        )
    }

    /// Total bytes appended.
    pub fn bytes_written(&self) -> u64 {
        self.written.get()
    }

    /// Total bytes read back.
    pub fn bytes_read(&self) -> u64 {
        self.read.get()
    }
}

/// Accounting of one distributed join execution on the threaded runtime.
#[derive(Clone, Default, Debug)]
pub struct RunStats {
    /// Wall-clock execution time, seconds.
    pub wall_secs: f64,
    /// Bytes of chunk data read from storage.
    pub bytes_read_storage: u64,
    /// Bytes of sub-table/record data sent storage → compute.
    pub bytes_transferred: u64,
    /// Grace Hash bucket bytes written to scratch.
    pub bytes_scratch_written: u64,
    /// Grace Hash bucket bytes read from scratch.
    pub bytes_scratch_read: u64,
    /// Hash-table insert operations performed.
    pub hash_builds: u64,
    /// Hash-table lookup operations performed.
    pub hash_probes: u64,
    /// Result tuples produced.
    pub result_tuples: u64,
    /// Sub-table fetches answered by the cache (IJ only).
    pub cache_hits: u64,
    /// Sub-table fetches that went to storage.
    pub cache_misses: u64,
    /// Chunk-fetch attempts repeated after a transient read failure.
    pub read_retries: u64,
    /// Interconnect sends repeated after a dropped message (GH only).
    pub send_retries: u64,
    /// Scratch bucket writes repeated after a transient failure (GH only).
    pub scratch_retries: u64,
    /// Checksum mismatches caught at a verification boundary (chunk read,
    /// interconnect frame, scratch read) and recovered by retry.
    pub corruptions_detected: u64,
    /// Compute workers that died (panicked) and were contained.
    pub worker_panics: u64,
    /// Sub-table pairs reassigned from dead workers to survivors (IJ only).
    pub pairs_reassigned: u64,
}

impl RunStats {
    /// Cache hit rate in `[0, 1]` (0 if no fetches).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Publish every field into `metrics` as `{prefix}/{field}`. Counter
    /// fields add (publishing per-node stats repeatedly merges them the
    /// same way [`RunStats::merge`] does); wall time goes to a
    /// microsecond gauge, which merges by max.
    pub fn record_into(&self, metrics: &orv_obs::MetricsRegistry, prefix: &str) {
        let c = |name: &str, v: u64| metrics.counter(&format!("{prefix}/{name}")).add(v);
        c("bytes_read_storage", self.bytes_read_storage);
        c("bytes_transferred", self.bytes_transferred);
        c("bytes_scratch_written", self.bytes_scratch_written);
        c("bytes_scratch_read", self.bytes_scratch_read);
        c("hash_builds", self.hash_builds);
        c("hash_probes", self.hash_probes);
        c("result_tuples", self.result_tuples);
        c("cache_hits", self.cache_hits);
        c("cache_misses", self.cache_misses);
        c("read_retries", self.read_retries);
        c("send_retries", self.send_retries);
        c("scratch_retries", self.scratch_retries);
        c("corruptions_detected", self.corruptions_detected);
        c("worker_panics", self.worker_panics);
        c("pairs_reassigned", self.pairs_reassigned);
        metrics
            .gauge(&format!("{prefix}/wall_us"))
            .raise((self.wall_secs * 1e6) as u64);
    }

    /// Merge another node's stats into this one (wall time maxes, counters
    /// add).
    pub fn merge(&mut self, other: &RunStats) {
        self.wall_secs = self.wall_secs.max(other.wall_secs);
        self.bytes_read_storage += other.bytes_read_storage;
        self.bytes_transferred += other.bytes_transferred;
        self.bytes_scratch_written += other.bytes_scratch_written;
        self.bytes_scratch_read += other.bytes_scratch_read;
        self.hash_builds += other.hash_builds;
        self.hash_probes += other.hash_probes;
        self.result_tuples += other.result_tuples;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.read_retries += other.read_retries;
        self.send_retries += other.send_retries;
        self.scratch_retries += other.scratch_retries;
        self.corruptions_detected += other.corruptions_detected;
        self.worker_panics += other.worker_panics;
        self.pairs_reassigned += other.pairs_reassigned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counter_is_shared() {
        let c = ByteCounter::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                c2.add(3);
            }
        });
        for _ in 0..1000 {
            c.add(2);
        }
        h.join().unwrap();
        assert_eq!(c.get(), 5000);
    }

    #[test]
    fn throttle_unlimited_is_noop() {
        let t = Throttle::new(None);
        let start = Instant::now();
        t.consume(10_000_000);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(t.total(), 10_000_000);
    }

    #[test]
    fn throttle_paces_to_rate() {
        let t = Throttle::new(Some(1_000_000.0)); // 1 MB/s
        let start = Instant::now();
        for _ in 0..10 {
            t.consume(10_000); // 100 KB total → 0.1s at 1 MB/s
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.09, "elapsed {elapsed}");
    }

    #[test]
    fn mem_scratch_roundtrip_and_accounting() {
        let s = Scratch::new(ScratchKind::Memory, "t").unwrap();
        s.append("b0", b"abc").unwrap();
        s.append("b0", b"def").unwrap();
        s.append("b1", b"xy").unwrap();
        assert_eq!(s.read_bucket("b0").unwrap(), b"abcdef");
        assert_eq!(s.read_bucket("b1").unwrap(), b"xy");
        assert_eq!(s.read_bucket("b9").unwrap(), b"");
        assert_eq!(s.bytes_written(), 8);
        assert_eq!(s.bytes_read(), 8);
    }

    #[test]
    fn bucket_sizes_reported() {
        for kind in [ScratchKind::Memory, ScratchKind::TempFile] {
            let s = Scratch::new(kind, "sz").unwrap();
            assert_eq!(s.bucket_size("b0").unwrap(), 0);
            s.append("b0", b"12345").unwrap();
            s.append("b0", b"678").unwrap();
            assert_eq!(s.bucket_size("b0").unwrap(), 8, "{kind:?}");
            assert_eq!(s.bucket_size("other").unwrap(), 0);
        }
    }

    #[test]
    fn file_scratch_roundtrip_and_cleanup() {
        let dir;
        {
            let s = Scratch::new(ScratchKind::TempFile, "t").unwrap();
            dir = s.dir.as_ref().unwrap().path.clone();
            s.append("b0", b"hello ").unwrap();
            s.append("b0", b"world").unwrap();
            assert_eq!(s.read_bucket("b0").unwrap(), b"hello world");
            assert_eq!(s.read_bucket("missing").unwrap(), b"");
            assert!(s.append("../evil", b"x").is_err());
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "scratch dir must be removed on drop");
    }

    #[test]
    fn file_scratch_cleaned_up_on_unwind() {
        // The temp dir must disappear even when the owning worker panics
        // mid-write: the RAII guard drops during the unwind.
        let dir = std::sync::Mutex::new(None::<std::path::PathBuf>);
        let r = std::panic::catch_unwind(|| {
            let s = Scratch::new(ScratchKind::TempFile, "unwind").unwrap();
            *dir.lock().unwrap() = Some(s.dir.as_ref().unwrap().path.clone());
            s.append("b0", b"partial").unwrap();
            panic!("worker died mid-append");
        });
        assert!(r.is_err());
        let dir = dir.into_inner().unwrap().unwrap();
        assert!(!dir.exists(), "scratch dir must be removed on unwind");
    }

    #[test]
    fn throttle_sleeps_in_bounded_slices() {
        // A huge surplus is paid in ≤250 ms slices; pacing still holds.
        let t = Throttle::new(Some(1_000_000.0)); // 1 MB/s
        let start = Instant::now();
        t.consume(300_000); // 0.3 s due → needs at least two slices
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.28, "elapsed {elapsed}");
        assert!(elapsed < 1.0, "elapsed {elapsed}");
    }

    #[test]
    fn scratch_running_crc_matches_contents() {
        for kind in [ScratchKind::Memory, ScratchKind::TempFile] {
            let s = Scratch::new(kind, "crc").unwrap();
            // Empty bucket: CRC of the empty payload, verify passes.
            assert_eq!(s.bucket_crc("b0"), crate::checksum::crc32c(&[]));
            s.verify_bucket("b0", b"").unwrap();
            s.append("b0", b"hello ").unwrap();
            s.append("b0", b"world").unwrap();
            assert_eq!(
                s.bucket_crc("b0"),
                crate::checksum::crc32c(b"hello world"),
                "{kind:?}"
            );
            let bytes = s.read_bucket("b0").unwrap();
            s.verify_bucket("b0", &bytes).unwrap();
            // A flipped byte in the read-back copy is caught.
            let mut bad = bytes.clone();
            bad[3] ^= 0x40;
            let err = s.verify_bucket("b0", &bad).unwrap_err();
            assert!(matches!(err, Error::Integrity(_)), "{err}");
            assert!(err.to_string().contains("b0"), "{err}");
        }
    }

    #[test]
    fn throttle_cancel_stops_sleep_within_one_slice() {
        use crate::cancel::CancelToken;
        // 100 KB at 1 KB/s would owe 100 s of sleep; cancelling after
        // 50 ms must end the wait within one 250 ms slice.
        let t = Throttle::new(Some(1_000.0));
        let cancel = CancelToken::new();
        let c = cancel.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            c.cancel();
        });
        let start = Instant::now();
        let err = t.consume_cancellable(100_000, &cancel).unwrap_err();
        h.join().unwrap();
        assert!(matches!(err, Error::Cancelled));
        assert!(
            start.elapsed() < Duration::from_millis(600),
            "cancelled throttle slept {:?}",
            start.elapsed()
        );
        assert_eq!(t.total(), 100_000, "bytes accounted despite cancel");
    }

    #[test]
    fn stats_merge_semantics() {
        let mut a = RunStats {
            wall_secs: 1.5,
            hash_builds: 10,
            cache_hits: 3,
            cache_misses: 1,
            ..Default::default()
        };
        let b = RunStats {
            wall_secs: 2.0,
            hash_builds: 5,
            cache_hits: 1,
            cache_misses: 3,
            read_retries: 2,
            worker_panics: 1,
            pairs_reassigned: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.wall_secs, 2.0);
        assert_eq!(a.hash_builds, 15);
        assert_eq!(a.cache_hit_rate(), 0.5);
        assert_eq!(a.read_retries, 2);
        assert_eq!(a.worker_panics, 1);
        assert_eq!(a.pairs_reassigned, 4);
        assert_eq!(RunStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn stats_publish_into_registry_merges_like_merge() {
        let metrics = orv_obs::MetricsRegistry::new();
        let a = RunStats {
            wall_secs: 1.5,
            hash_builds: 10,
            bytes_transferred: 100,
            ..Default::default()
        };
        let b = RunStats {
            wall_secs: 2.0,
            hash_builds: 5,
            bytes_transferred: 50,
            ..Default::default()
        };
        a.record_into(&metrics, "join");
        b.record_into(&metrics, "join");
        let snap = metrics.snapshot();
        assert_eq!(snap.counters["join/hash_builds"], 15);
        assert_eq!(snap.counters["join/bytes_transferred"], 150);
        assert_eq!(snap.gauges["join/wall_us"], 2_000_000);
    }
}
