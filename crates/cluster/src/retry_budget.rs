//! Deterministic retry budgets: the token bucket that kills retry storms.
//!
//! A federated router under overload has a positive-feedback failure
//! mode: a slow shard times out, the router re-issues the sub-query to a
//! replica, the extra load slows the replica, more sub-queries time out,
//! and the retry *amplifies* exactly the saturation that caused it. A
//! [`RetryBudget`] breaks the loop by making retries a scarce resource
//! that only *successful* work replenishes: every failover, hedge or
//! `RecoveryPolicy` re-attempt must first [`try_draw`] a token, and
//! every successful completion earns a fractional token back
//! ([`on_success`]). When the bucket runs dry the router stops
//! re-issuing and degrades to the existing `PartialResult` path instead
//! — bounded brownout rather than congestion collapse.
//!
//! The bucket is deliberately clock-free (no refill-per-second): tokens
//! come only from completions, so chaos runs replay deterministically
//! and the total number of retries a run can ever issue is a provable
//! function of its successes:
//!
//! ```text
//! grants ≤ capacity + successes × earn_per_success
//! ```
//!
//! All arithmetic is integer milli-tokens, so fractional earn rates
//! (e.g. 0.1 tokens per success) never accumulate float drift.
//!
//! [`try_draw`]: RetryBudget::try_draw
//! [`on_success`]: RetryBudget::on_success

use std::sync::atomic::{AtomicU64, Ordering};

/// Milli-tokens per whole token; one retry costs exactly this much.
pub const MILLI_PER_TOKEN: u64 = 1000;

/// A clock-free token bucket bounding retries/hedges per shard.
///
/// Starts full. Shared by reference between every path that can
/// re-issue work against one shard, so their combined retry volume —
/// not each path's individually — respects the bound.
#[derive(Debug)]
pub struct RetryBudget {
    /// Available milli-tokens.
    tokens: AtomicU64,
    /// Bucket capacity in milli-tokens.
    cap_milli: u64,
    /// Milli-tokens earned per successful completion.
    earn_milli: u64,
    granted: AtomicU64,
    denied: AtomicU64,
}

impl RetryBudget {
    /// A full bucket holding `cap_tokens` whole tokens, earning
    /// `earn_milli` milli-tokens (1/1000ths of a retry) per success.
    ///
    /// A typical setting is `new(8, 100)`: 8 burst retries, then one
    /// further retry per 10 successful completions — a 10% retry ratio
    /// in steady state.
    pub fn new(cap_tokens: u64, earn_milli: u64) -> Self {
        let cap_milli = cap_tokens.saturating_mul(MILLI_PER_TOKEN);
        RetryBudget {
            tokens: AtomicU64::new(cap_milli),
            cap_milli,
            earn_milli,
            granted: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Try to pay for one retry/hedge issue. Returns `true` (and burns a
    /// token) when the budget allows it; `false` means the caller must
    /// degrade instead of re-issuing.
    pub fn try_draw(&self) -> bool {
        let drew = self
            .tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                t.checked_sub(MILLI_PER_TOKEN)
            })
            .is_ok();
        if drew {
            self.granted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.denied.fetch_add(1, Ordering::Relaxed);
        }
        drew
    }

    /// Credit one successful completion: earn back `earn_milli`
    /// milli-tokens, saturating at capacity.
    pub fn on_success(&self) {
        let _ = self
            .tokens
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                Some((t + self.earn_milli).min(self.cap_milli))
            });
    }

    /// Milli-tokens currently available (gauge feed).
    pub fn available_milli(&self) -> u64 {
        self.tokens.load(Ordering::Acquire)
    }

    /// Whole retries currently affordable.
    pub fn available(&self) -> u64 {
        self.available_milli() / MILLI_PER_TOKEN
    }

    /// Draws granted so far.
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Draws denied so far.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }

    /// The hard upper bound on grants given `successes` completions —
    /// what chaos tests assert retry volume against. A zero-capacity
    /// bucket can never grant: refills saturate at the cap.
    pub fn max_grants(&self, successes: u64) -> u64 {
        if self.cap_milli == 0 {
            return 0;
        }
        (self.cap_milli + successes.saturating_mul(self.earn_milli)) / MILLI_PER_TOKEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_full_and_drains_to_zero() {
        let b = RetryBudget::new(3, 100);
        assert_eq!(b.available(), 3);
        assert!(b.try_draw());
        assert!(b.try_draw());
        assert!(b.try_draw());
        assert!(!b.try_draw(), "bucket must refuse once dry");
        assert_eq!(b.granted(), 3);
        assert_eq!(b.denied(), 1);
        assert_eq!(b.available_milli(), 0);
    }

    #[test]
    fn successes_earn_fractional_tokens() {
        let b = RetryBudget::new(1, 250);
        assert!(b.try_draw());
        assert!(!b.try_draw());
        // Four successes at 0.25 tokens each buy exactly one retry.
        for _ in 0..3 {
            b.on_success();
            assert!(!b.try_draw());
        }
        b.on_success();
        assert!(b.try_draw());
        assert!(!b.try_draw());
    }

    #[test]
    fn refill_saturates_at_capacity() {
        let b = RetryBudget::new(2, 1000);
        for _ in 0..100 {
            b.on_success();
        }
        assert_eq!(b.available(), 2, "bucket must not grow past its cap");
    }

    #[test]
    fn zero_capacity_budget_denies_everything() {
        let b = RetryBudget::new(0, 500);
        assert!(!b.try_draw());
        b.on_success();
        assert!(!b.try_draw(), "cap 0 means earn saturates at 0");
        assert_eq!(b.denied(), 2);
        assert_eq!(b.max_grants(1000), 0);
    }

    #[test]
    fn concurrent_grants_respect_the_bound() {
        let b = Arc::new(RetryBudget::new(4, 100));
        let successes = 40u64;
        let mut handles = Vec::new();
        for t in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    // Interleave draws with a fixed share of successes.
                    if t < 4 && i < 10 {
                        b.on_success();
                    }
                    b.try_draw();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            b.granted() <= b.max_grants(successes),
            "granted {} exceeded bound {}",
            b.granted(),
            b.max_grants(successes)
        );
        assert_eq!(b.granted() + b.denied(), 400);
    }
}
