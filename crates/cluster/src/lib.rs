//! Cluster substrate: the hardware the paper ran on, twice over.
//!
//! The paper's experiments ran on a Linux cluster (10 nodes, PIII 933 MHz,
//! 512 MB RAM, IDE disks, Switched Fast Ethernet) split into storage and
//! compute nodes. This crate substitutes for that testbed in two
//! complementary ways:
//!
//! * [`sim`] — a **deterministic discrete-event cluster simulator**. Every
//!   resource the paper's cost models name (storage-disk read bandwidth,
//!   scratch-disk read/write bandwidth, NIC/fabric bandwidth, per-node CPU
//!   rate) is a FIFO bandwidth server; join algorithms issue chunk-grained
//!   requests against them, so pipelining and contention *emerge* rather
//!   than being assumed. Runs the paper's experiments at full scale
//!   (2·10⁹ tuples) in milliseconds, because only costs move, not bytes.
//! * [`runtime`] — helpers for the **real threaded runtime**: byte-counting
//!   transports, optional bandwidth throttling, per-node scratch stores for
//!   Grace-Hash buckets, and run statistics. One OS thread per cluster node
//!   executes the same scheduling/caching/partitioning code paths on real
//!   data.
//!
//! [`spec::ClusterSpec`] describes a cluster once; both substrates consume
//! it.

pub mod cancel;
pub mod checksum;
pub mod epoch;
pub mod fault;
pub mod resource;
pub mod retry_budget;
pub mod runtime;
pub mod sim;
pub mod spec;

pub use cancel::{CancelToken, DeadlineBudget, WaitBudget, SLEEP_SLICE};
pub use checksum::crc32c;
pub use epoch::EpochCell;
pub use fault::{
    contain_panic, panic_message, silence_injected_panics, ClientFloodSpec, FaultInjector,
    FaultPlan, FaultStats, RecoveryPolicy, SendVerdict, ShardDeathSpec, ShardSlowSpec,
    ShardSlowStormSpec, WorkerPanicSpec,
};
pub use resource::Resource;
pub use retry_budget::{RetryBudget, MILLI_PER_TOKEN};
pub use runtime::{ByteCounter, RunStats, Scratch, ScratchKind, Throttle};
pub use sim::{NodeClocks, SimCluster};
pub use spec::ClusterSpec;
