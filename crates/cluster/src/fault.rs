//! Deterministic fault injection and recovery policy for the threaded
//! runtime.
//!
//! The paper's testbed was ten commodity PCs with IDE disks and Fast
//! Ethernet — hardware that fails. The threaded runtime substitutes OS
//! threads and channels for that cluster, so this module substitutes for
//! its failures: a [`FaultPlan`] describes *which* faults occur (transient
//! chunk-read errors, slow reads, dropped or delayed interconnect
//! messages, scratch-disk write failures, compute-worker crashes), and a
//! [`FaultInjector`] realizes the plan deterministically from a single
//! `u64` seed, so any failing execution can be replayed exactly.
//!
//! Determinism model: every `(site, stream)` pair keeps its own draw
//! counter, where the *stream* identifies the calling actor (the storage
//! node reading a chunk, the GH sender, the compute node appending to
//! scratch); draw `n` of stream `w` at site `s` is
//! `splitmix64(seed ⊕ salt(s) ⊕ mix(w) ⊕ mix(n))` compared against the
//! site's probability. Keying the streams by caller — rather than one
//! global per-site counter — makes the draw sequence each actor sees a
//! pure function of the seed, independent of how the OS scheduler
//! interleaves threads, so chaos logs replay stably under CPU stress.
//! A retry of the same operation still gets a *fresh* draw — injected
//! faults are transient by construction. Two budgets bound the chaos: a
//! per-kind cap
//! (`max_read_errors`, …) and a global [`FaultPlan::max_faults`] cap.
//! Once a budget is exhausted the injector stops firing, so any execution
//! with enough retry attempts provably completes. Delays are counted in
//! the statistics but not against the budgets: they never threaten
//! correctness, only pacing.
//!
//! [`RecoveryPolicy`] is the other half: bounded retries with exponential
//! backoff and a per-operation deadline, used by the join runtimes around
//! every fetch, send, and scratch write.
//!
//! Silent corruption is injected the same way but detected differently:
//! the corruption kinds ([`FaultPlan::chunk_corrupt_prob`],
//! [`FaultPlan::frame_corrupt_prob`], [`FaultPlan::scratch_corrupt_prob`])
//! flip one payload byte *after* the producer checksummed it, so only the
//! [`crate::checksum`] verification at the consumer can catch the damage.
//! Corruptions only target payloads that carry a checksum — an undetectable
//! flip would silently corrupt results, which is exactly what the
//! chaos suite asserts cannot happen.

use crate::cancel::CancelToken;
use orv_obs::{names, obj, EventLog, JsonValue};
use orv_types::{Error, Result};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Marker every injected worker panic message carries, so test harnesses
/// can tell deliberate crashes from real bugs (see
/// [`silence_injected_panics`]).
pub const INJECTED_PANIC_MARKER: &str = "injected worker panic";

/// Crash one compute worker deterministically: the worker panics at its
/// checkpoint once it has completed `after_ops` operations (pairs for IJ,
/// batches/buckets for GH). One-shot — a worker crashes at most once per
/// spec.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerPanicSpec {
    /// Compute-worker index (IJ node index / GH compute node index).
    pub worker: usize,
    /// Number of completed operations before the panic fires.
    pub after_ops: u64,
}

/// Kill one federation engine shard deterministically: after the shard
/// has served `after_subqueries` sub-queries, every further sub-query it
/// is handed fails with a typed `Cluster` error. Permanent — unlike the
/// transient kinds, a dead shard never comes back; only replicas answer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardDeathSpec {
    /// Federation shard index.
    pub shard: usize,
    /// Sub-queries the shard serves before dying.
    pub after_subqueries: u64,
}

/// Make one federation shard a straggler: its next sub-query after
/// `after_subqueries` completed ones sleeps `delay_ms` (cancellably)
/// before executing. One-shot — the hedge path needs exactly one slow
/// flight to race against.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSlowSpec {
    /// Federation shard index.
    pub shard: usize,
    /// Sub-queries the shard serves before the slow one.
    pub after_subqueries: u64,
    /// Injected delay, milliseconds.
    pub delay_ms: u64,
}

/// A seeded client flood: an overload *storm* rather than a component
/// fault. The injector itself does not spawn clients — the load harness
/// (bench or chaos test) reads these specs off the armed plan and drives
/// `clients × queries_per_client` extra submissions once `after_queries`
/// baseline queries have been issued. Living inside [`FaultPlan`] means
/// the storm is serialized, logged and replayed with the same machinery
/// as every other fault kind.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientFloodSpec {
    /// Baseline queries issued before the flood starts.
    pub after_queries: u64,
    /// Concurrent flood clients the harness must add.
    pub clients: u64,
    /// Queries each flood client submits.
    pub queries_per_client: u64,
}

/// A slow-shard *storm*: unlike the one-shot [`ShardSlowSpec`], every
/// sub-query the shard serves after `after_subqueries`, up to
/// `storm_len` of them, sleeps `delay_ms` (cancellably) first — a
/// sustained straggler window, the load pattern that sets off retry
/// storms when retries are unbudgeted.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSlowStormSpec {
    /// Federation shard index.
    pub shard: usize,
    /// Sub-queries the shard serves before the storm opens.
    pub after_subqueries: u64,
    /// Injected delay per sub-query inside the storm, milliseconds.
    pub delay_ms: u64,
    /// Consecutive sub-queries the storm slows before it ends.
    pub storm_len: u64,
}

/// A complete, seed-reproducible description of the faults one execution
/// experiences. Serializable so a failing plan can be attached to a bug
/// report and replayed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the deterministic draw stream.
    pub seed: u64,
    /// Probability a chunk read fails with a transient I/O error.
    pub read_error_prob: f64,
    /// Cap on injected read errors.
    pub max_read_errors: u64,
    /// Probability a chunk read is slowed by [`FaultPlan::read_delay_ms`].
    pub read_delay_prob: f64,
    /// Duration of one injected slow read, milliseconds.
    pub read_delay_ms: u64,
    /// Probability an interconnect send is dropped before delivery.
    pub send_drop_prob: f64,
    /// Cap on injected send drops.
    pub max_send_drops: u64,
    /// Probability an interconnect send is delayed by
    /// [`FaultPlan::send_delay_ms`].
    pub send_delay_prob: f64,
    /// Duration of one injected send delay, milliseconds.
    pub send_delay_ms: u64,
    /// Probability a scratch bucket write fails with a transient error.
    pub scratch_error_prob: f64,
    /// Cap on injected scratch write errors.
    pub max_scratch_errors: u64,
    /// Probability one byte of a chunk page is flipped after the page was
    /// checksummed; only read-side verification can catch it.
    pub chunk_corrupt_prob: f64,
    /// Cap on injected chunk corruptions.
    pub max_chunk_corruptions: u64,
    /// Probability one byte of an interconnect frame is flipped in
    /// flight, after the sender sealed the frame checksum.
    pub frame_corrupt_prob: f64,
    /// Cap on injected frame corruptions.
    pub max_frame_corruptions: u64,
    /// Probability one byte of a scratch bucket read is flipped between
    /// the scratch disk and the consumer.
    pub scratch_corrupt_prob: f64,
    /// Cap on injected scratch corruptions.
    pub max_scratch_corruptions: u64,
    /// Deterministic compute-worker crashes.
    pub worker_panics: Vec<WorkerPanicSpec>,
    /// Deterministic federation shard deaths (permanent).
    pub shard_deaths: Vec<ShardDeathSpec>,
    /// Deterministic federation shard slowdowns (one-shot delays).
    pub shard_slows: Vec<ShardSlowSpec>,
    /// Seeded client floods (consumed by the load harness, not the
    /// injector).
    pub client_floods: Vec<ClientFloodSpec>,
    /// Sustained slow-shard storms (windows of consecutive delays).
    pub shard_slow_storms: Vec<ShardSlowStormSpec>,
    /// Global cap across *all* correctness-affecting faults (errors,
    /// drops, panics, shard deaths — not delays). Guarantees transience
    /// for every kind except shard deaths, which are deliberately
    /// permanent once fired.
    pub max_faults: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            read_error_prob: 0.0,
            max_read_errors: 0,
            read_delay_prob: 0.0,
            read_delay_ms: 0,
            send_drop_prob: 0.0,
            max_send_drops: 0,
            send_delay_prob: 0.0,
            send_delay_ms: 0,
            scratch_error_prob: 0.0,
            max_scratch_errors: 0,
            chunk_corrupt_prob: 0.0,
            max_chunk_corruptions: 0,
            frame_corrupt_prob: 0.0,
            max_frame_corruptions: 0,
            scratch_corrupt_prob: 0.0,
            max_scratch_corruptions: 0,
            worker_panics: Vec::new(),
            shard_deaths: Vec::new(),
            shard_slows: Vec::new(),
            client_floods: Vec::new(),
            shard_slow_storms: Vec::new(),
            max_faults: 0,
        }
    }
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A representative mixed plan derived entirely from `seed`: moderate
    /// transient read/send/scratch faults plus one compute-worker crash,
    /// capped so a runtime with default [`RecoveryPolicy`] retries always
    /// recovers. Same seed → same plan → same faults.
    pub fn from_seed(seed: u64) -> Self {
        let d = splitmix64(seed);
        FaultPlan {
            seed,
            read_error_prob: 0.25,
            max_read_errors: 2,
            read_delay_prob: 0.10,
            read_delay_ms: 1 + d % 3,
            send_drop_prob: 0.20,
            max_send_drops: 2,
            send_delay_prob: 0.10,
            send_delay_ms: 1 + (d >> 8) % 3,
            scratch_error_prob: 0.15,
            max_scratch_errors: 2,
            worker_panics: vec![WorkerPanicSpec {
                worker: (d >> 16) as usize % 2,
                after_ops: (d >> 24) % 3,
            }],
            max_faults: 7,
            ..Self::none()
        }
    }

    /// [`FaultPlan::from_seed`] plus silent corruption on every checksummed
    /// boundary (chunk pages, interconnect frames, scratch reads) — the
    /// corruption-heavy plan the chaos CI matrix runs. Pair it with a
    /// [`RecoveryPolicy`] whose `max_attempts` exceeds the sum of the
    /// per-kind caps that can hit one operation (errors + corruptions),
    /// e.g. 8, so recovery provably outlasts the budgets.
    pub fn corrupting(seed: u64) -> Self {
        FaultPlan {
            chunk_corrupt_prob: 0.25,
            max_chunk_corruptions: 2,
            frame_corrupt_prob: 0.20,
            max_frame_corruptions: 2,
            scratch_corrupt_prob: 0.20,
            max_scratch_corruptions: 2,
            max_faults: 13,
            ..Self::from_seed(seed)
        }
    }

    /// The seeded overload plan the chaos matrix runs: a 2× client flood
    /// plus one sustained slow-shard storm, derived entirely from
    /// `seed`. `baseline_clients` is the harness's steady-state client
    /// count (the flood doubles it); `shards` bounds the storm's victim
    /// shard. No correctness-affecting faults fire — overload runs must
    /// show *clean degradation*, so every admitted query still has to
    /// come back byte-identical to the oracle.
    pub fn load_storm(seed: u64, baseline_clients: u64, shards: usize) -> Self {
        let d = splitmix64(seed);
        FaultPlan {
            seed,
            client_floods: vec![ClientFloodSpec {
                after_queries: 2 + d % 4,
                clients: baseline_clients,
                queries_per_client: 4 + (d >> 8) % 4,
            }],
            shard_slow_storms: vec![ShardSlowStormSpec {
                shard: (d >> 16) as usize % shards.max(1),
                after_subqueries: (d >> 24) % 3,
                delay_ms: 40 + (d >> 32) % 40,
                storm_len: 6 + (d >> 40) % 6,
            }],
            ..Self::none()
        }
    }

    /// Build the injector realizing this plan.
    pub fn injector(self) -> Arc<FaultInjector> {
        FaultInjector::new(self)
    }

    /// Build the injector with an event stream: the plan itself plus
    /// every injected fault (kind, site, draw index) is logged, making a
    /// chaos run replayable from the log alone.
    pub fn injector_with_events(self, events: EventLog) -> Arc<FaultInjector> {
        FaultInjector::new_with_events(self, events)
    }

    /// Serialize the plan as a JSON value (the payload of the
    /// `fault_plan` event).
    pub fn to_json_value(&self) -> JsonValue {
        obj([
            ("seed", self.seed.into()),
            ("read_error_prob", self.read_error_prob.into()),
            ("max_read_errors", self.max_read_errors.into()),
            ("read_delay_prob", self.read_delay_prob.into()),
            ("read_delay_ms", self.read_delay_ms.into()),
            ("send_drop_prob", self.send_drop_prob.into()),
            ("max_send_drops", self.max_send_drops.into()),
            ("send_delay_prob", self.send_delay_prob.into()),
            ("send_delay_ms", self.send_delay_ms.into()),
            ("scratch_error_prob", self.scratch_error_prob.into()),
            ("max_scratch_errors", self.max_scratch_errors.into()),
            ("chunk_corrupt_prob", self.chunk_corrupt_prob.into()),
            ("max_chunk_corruptions", self.max_chunk_corruptions.into()),
            ("frame_corrupt_prob", self.frame_corrupt_prob.into()),
            ("max_frame_corruptions", self.max_frame_corruptions.into()),
            ("scratch_corrupt_prob", self.scratch_corrupt_prob.into()),
            (
                "max_scratch_corruptions",
                self.max_scratch_corruptions.into(),
            ),
            (
                "worker_panics",
                JsonValue::Array(
                    self.worker_panics
                        .iter()
                        .map(|w| {
                            obj([
                                ("worker", w.worker.into()),
                                ("after_ops", w.after_ops.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shard_deaths",
                JsonValue::Array(
                    self.shard_deaths
                        .iter()
                        .map(|s| {
                            obj([
                                ("shard", s.shard.into()),
                                ("after_subqueries", s.after_subqueries.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shard_slows",
                JsonValue::Array(
                    self.shard_slows
                        .iter()
                        .map(|s| {
                            obj([
                                ("shard", s.shard.into()),
                                ("after_subqueries", s.after_subqueries.into()),
                                ("delay_ms", s.delay_ms.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "client_floods",
                JsonValue::Array(
                    self.client_floods
                        .iter()
                        .map(|c| {
                            obj([
                                ("after_queries", c.after_queries.into()),
                                ("clients", c.clients.into()),
                                ("queries_per_client", c.queries_per_client.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shard_slow_storms",
                JsonValue::Array(
                    self.shard_slow_storms
                        .iter()
                        .map(|s| {
                            obj([
                                ("shard", s.shard.into()),
                                ("after_subqueries", s.after_subqueries.into()),
                                ("delay_ms", s.delay_ms.into()),
                                ("storm_len", s.storm_len.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("max_faults", self.max_faults.into()),
        ])
    }

    /// Reconstruct a plan from [`FaultPlan::to_json_value`] output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        let worker_panics = v
            .req("worker_panics")?
            .as_array()
            .ok_or_else(|| Error::Config("`worker_panics` is not an array".into()))?
            .iter()
            .map(|w| {
                Ok(WorkerPanicSpec {
                    worker: w.req_u64("worker")? as usize,
                    after_ops: w.req_u64("after_ops")?,
                })
            })
            .collect::<Result<_>>()?;
        Ok(FaultPlan {
            seed: v.req_u64("seed")?,
            read_error_prob: v.req_f64("read_error_prob")?,
            max_read_errors: v.req_u64("max_read_errors")?,
            read_delay_prob: v.req_f64("read_delay_prob")?,
            read_delay_ms: v.req_u64("read_delay_ms")?,
            send_drop_prob: v.req_f64("send_drop_prob")?,
            max_send_drops: v.req_u64("max_send_drops")?,
            send_delay_prob: v.req_f64("send_delay_prob")?,
            send_delay_ms: v.req_u64("send_delay_ms")?,
            scratch_error_prob: v.req_f64("scratch_error_prob")?,
            max_scratch_errors: v.req_u64("max_scratch_errors")?,
            // Absent in logs exported before the corruption kinds existed.
            chunk_corrupt_prob: opt_f64(v, "chunk_corrupt_prob"),
            max_chunk_corruptions: opt_u64(v, "max_chunk_corruptions"),
            frame_corrupt_prob: opt_f64(v, "frame_corrupt_prob"),
            max_frame_corruptions: opt_u64(v, "max_frame_corruptions"),
            scratch_corrupt_prob: opt_f64(v, "scratch_corrupt_prob"),
            max_scratch_corruptions: opt_u64(v, "max_scratch_corruptions"),
            worker_panics,
            // Absent in logs exported before the federation shard kinds.
            shard_deaths: v
                .get("shard_deaths")
                .and_then(|a| a.as_array())
                .map(|a| {
                    a.iter()
                        .map(|s| {
                            Ok(ShardDeathSpec {
                                shard: s.req_u64("shard")? as usize,
                                after_subqueries: s.req_u64("after_subqueries")?,
                            })
                        })
                        .collect::<Result<_>>()
                })
                .transpose()?
                .unwrap_or_default(),
            shard_slows: v
                .get("shard_slows")
                .and_then(|a| a.as_array())
                .map(|a| {
                    a.iter()
                        .map(|s| {
                            Ok(ShardSlowSpec {
                                shard: s.req_u64("shard")? as usize,
                                after_subqueries: s.req_u64("after_subqueries")?,
                                delay_ms: s.req_u64("delay_ms")?,
                            })
                        })
                        .collect::<Result<_>>()
                })
                .transpose()?
                .unwrap_or_default(),
            // Absent in logs exported before the overload-storm kinds.
            client_floods: v
                .get("client_floods")
                .and_then(|a| a.as_array())
                .map(|a| {
                    a.iter()
                        .map(|c| {
                            Ok(ClientFloodSpec {
                                after_queries: c.req_u64("after_queries")?,
                                clients: c.req_u64("clients")?,
                                queries_per_client: c.req_u64("queries_per_client")?,
                            })
                        })
                        .collect::<Result<_>>()
                })
                .transpose()?
                .unwrap_or_default(),
            shard_slow_storms: v
                .get("shard_slow_storms")
                .and_then(|a| a.as_array())
                .map(|a| {
                    a.iter()
                        .map(|s| {
                            Ok(ShardSlowStormSpec {
                                shard: s.req_u64("shard")? as usize,
                                after_subqueries: s.req_u64("after_subqueries")?,
                                delay_ms: s.req_u64("delay_ms")?,
                                storm_len: s.req_u64("storm_len")?,
                            })
                        })
                        .collect::<Result<_>>()
                })
                .transpose()?
                .unwrap_or_default(),
            max_faults: v.req_u64("max_faults")?,
        })
    }
}

fn opt_f64(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn opt_u64(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(|x| x.as_u64()).unwrap_or(0)
}

/// What the injector decides about one interconnect send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// Deliver normally.
    Deliver,
    /// The message is lost; the sender must retry (a fresh draw) or give
    /// up with a typed error.
    Drop,
    /// Deliver after sleeping this long.
    Delay(Duration),
}

/// Counts of faults actually injected, for assertions and reports.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient chunk-read errors injected.
    pub read_errors: u64,
    /// Slow reads injected.
    pub read_delays: u64,
    /// Interconnect sends dropped.
    pub send_drops: u64,
    /// Interconnect sends delayed.
    pub send_delays: u64,
    /// Scratch write errors injected.
    pub scratch_errors: u64,
    /// Chunk-page bytes flipped after checksumming.
    pub chunk_corruptions: u64,
    /// Interconnect-frame bytes flipped in flight.
    pub frame_corruptions: u64,
    /// Scratch-read bytes flipped after the bucket checksum.
    pub scratch_corruptions: u64,
    /// Worker panics fired.
    pub worker_panics: u64,
    /// Federation shards killed.
    pub shard_deaths: u64,
    /// Federation shard slowdowns injected.
    pub shard_slows: u64,
    /// Slow-shard storm delays injected (one per slowed sub-query).
    pub shard_slow_storm_delays: u64,
}

impl FaultStats {
    /// Total injected corruptions across all three boundaries.
    pub fn corruptions(&self) -> u64 {
        self.chunk_corruptions + self.frame_corruptions + self.scratch_corruptions
    }
}

/// splitmix64 — the one-instruction-wide PRNG the rest of the workspace
/// already uses for deterministic hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-site salts keeping the draw streams independent.
const SITE_READ: u64 = 0x52_45_41_44; // "READ"
const SITE_SEND: u64 = 0x53_45_4E_44; // "SEND"
const SITE_SCRATCH: u64 = 0x53_43_52_54; // "SCRT"
const SITE_CHUNK_CORRUPT: u64 = 0x43_43_4F_52; // "CCOR"
const SITE_FRAME_CORRUPT: u64 = 0x46_43_4F_52; // "FCOR"
const SITE_SCRATCH_CORRUPT: u64 = 0x53_43_4F_52; // "SCOR"

/// Realizes a [`FaultPlan`] with deterministic draws, per-kind caps and a
/// global budget. One injector is shared (via `Arc`) by every thread of
/// one execution; create a fresh injector per execution so budgets reset.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Draw counters keyed by `(site salt, stream)`. The map lock is held
    /// across draw → stats → emit so each stream's fault events land in
    /// the log in draw order (the replay test asserts monotonicity), and
    /// is always released before any injected sleep.
    draws: Mutex<HashMap<(u64, u64), u64>>,
    budget: AtomicU64,
    read_errors_left: AtomicU64,
    send_drops_left: AtomicU64,
    scratch_errors_left: AtomicU64,
    chunk_corruptions_left: AtomicU64,
    frame_corruptions_left: AtomicU64,
    scratch_corruptions_left: AtomicU64,
    panic_fired: Vec<AtomicBool>,
    worker_ops: Mutex<HashMap<usize, u64>>,
    shard_dead: Vec<AtomicBool>,
    shard_slow_fired: Vec<AtomicBool>,
    /// Storm delays already applied, one slot per
    /// [`ShardSlowStormSpec`]; saturates at the spec's `storm_len`.
    shard_storm_fired: Vec<AtomicU64>,
    shard_subqueries: Mutex<HashMap<usize, u64>>,
    stats: Mutex<FaultStats>,
    events: EventLog,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .finish()
    }
}

/// One corruption injection site: its event labels, draw salt, cap and
/// stats slot, bundled so [`FaultInjector::corrupt`] reads as one unit.
struct CorruptSite<'a> {
    kind: &'static str,
    site: &'static str,
    salt: u64,
    prob: f64,
    left: &'a AtomicU64,
    bump: fn(&mut FaultStats),
}

impl FaultInjector {
    /// Injector for `plan` (no event logging).
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Self::new_with_events(plan, EventLog::disabled())
    }

    /// Injector for `plan` logging every injected fault into `events`.
    /// Emits a `fault_plan` event up front so the run is replayable from
    /// the log alone.
    pub fn new_with_events(plan: FaultPlan, events: EventLog) -> Arc<Self> {
        let panic_fired = plan
            .worker_panics
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        let shard_dead = plan
            .shard_deaths
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        let shard_slow_fired = plan
            .shard_slows
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        let shard_storm_fired = plan
            .shard_slow_storms
            .iter()
            .map(|_| AtomicU64::new(0))
            .collect();
        events.emit(names::FAULT_PLAN, || vec![("plan", plan.to_json_value())]);
        Arc::new(FaultInjector {
            budget: AtomicU64::new(plan.max_faults),
            read_errors_left: AtomicU64::new(plan.max_read_errors),
            send_drops_left: AtomicU64::new(plan.max_send_drops),
            scratch_errors_left: AtomicU64::new(plan.max_scratch_errors),
            chunk_corruptions_left: AtomicU64::new(plan.max_chunk_corruptions),
            frame_corruptions_left: AtomicU64::new(plan.max_frame_corruptions),
            scratch_corruptions_left: AtomicU64::new(plan.max_scratch_corruptions),
            panic_fired,
            draws: Mutex::new(HashMap::new()),
            worker_ops: Mutex::new(HashMap::new()),
            shard_dead,
            shard_slow_fired,
            shard_storm_fired,
            shard_subqueries: Mutex::new(HashMap::new()),
            stats: Mutex::new(FaultStats::default()),
            events,
            plan,
        })
    }

    /// Log one injected fault: its kind, injection site, the draw stream
    /// (which actor drew) and the draw index that fired, which together
    /// with the `fault_plan` event pin the exact execution.
    fn emit_fault(&self, kind: &'static str, site: &'static str, stream: u64, draw: u64) {
        self.events.emit(names::FAULT_INJECTED, || {
            vec![
                ("kind", kind.into()),
                ("site", site.into()),
                ("stream", stream.into()),
                ("draw", draw.into()),
            ]
        });
    }

    /// A no-op injector (the empty plan); the default everywhere.
    pub fn disabled() -> Arc<Self> {
        FaultInjector::new(FaultPlan::none())
    }

    /// The plan this injector realizes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// The event log injected faults are recorded into. Runtimes emit
    /// their `corruption_detected` events here so detections land beside
    /// the injections they answer.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Deterministic Bernoulli draw on one `(site, stream)` stream: draw
    /// `n` of stream `stream` at salt `salt` fires iff
    /// `splitmix64(seed ⊕ salt·φ ⊕ stream·ψ ⊕ n·χ) < prob`. The counter
    /// key uses `base` (a site may run paired sub-draws — e.g. delay then
    /// error — off one shared counter while salting their hashes apart).
    /// Returns the draw index when the draw fires, `None` otherwise.
    fn chance(
        &self,
        draws: &mut HashMap<(u64, u64), u64>,
        salt: u64,
        base: u64,
        stream: u64,
        prob: f64,
    ) -> Option<u64> {
        if prob <= 0.0 {
            return None;
        }
        let e = draws.entry((base, stream)).or_insert(0);
        let n = *e;
        *e += 1;
        let h = splitmix64(
            self.plan.seed
                ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ n.wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        // 53 uniform mantissa bits → [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (u < prob).then_some(n)
    }

    /// Take one unit from a per-kind cap and the global budget; both must
    /// be available for a fault to fire.
    fn take(&self, kind_left: &AtomicU64) -> bool {
        if !take_one(kind_left) {
            return false;
        }
        if take_one(&self.budget) {
            true
        } else {
            // Give the per-kind unit back: the global budget is dry.
            kind_left.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Call at the top of every chunk read, passing the reading node's
    /// index as the draw stream. Sleeps for an injected slow read
    /// (cancellably — a cancelled query must not pay the injected
    /// latency); returns a typed transient error for an injected read
    /// fault.
    pub fn before_chunk_read(&self, stream: u64, cancel: &CancelToken) -> Result<()> {
        let delayed = {
            let mut draws = self.draws.lock();
            match self.chance(
                &mut draws,
                SITE_READ ^ 1,
                SITE_READ,
                stream,
                self.plan.read_delay_prob,
            ) {
                Some(draw) => {
                    self.stats.lock().read_delays += 1;
                    self.emit_fault("read_delay", "chunk_read", stream, draw);
                    true
                }
                None => false,
            }
        };
        if delayed {
            cancel.sleep(Duration::from_millis(self.plan.read_delay_ms))?;
        }
        let mut draws = self.draws.lock();
        if let Some(draw) = self.chance(
            &mut draws,
            SITE_READ,
            SITE_READ,
            stream,
            self.plan.read_error_prob,
        ) {
            if self.take(&self.read_errors_left) {
                self.stats.lock().read_errors += 1;
                self.emit_fault("read_error", "chunk_read", stream, draw);
                return Err(Error::Cluster("injected transient chunk-read fault".into()));
            }
        }
        Ok(())
    }

    /// Ask before every interconnect send, passing the sending node's
    /// index as the draw stream; a `Drop` verdict means the message was
    /// lost and the caller should retry with a fresh draw.
    pub fn send_verdict(&self, stream: u64) -> SendVerdict {
        let mut draws = self.draws.lock();
        if let Some(draw) = self.chance(
            &mut draws,
            SITE_SEND,
            SITE_SEND,
            stream,
            self.plan.send_drop_prob,
        ) {
            if self.take(&self.send_drops_left) {
                self.stats.lock().send_drops += 1;
                self.emit_fault("send_drop", "send", stream, draw);
                return SendVerdict::Drop;
            }
        }
        if let Some(draw) = self.chance(
            &mut draws,
            SITE_SEND ^ 1,
            SITE_SEND,
            stream,
            self.plan.send_delay_prob,
        ) {
            self.stats.lock().send_delays += 1;
            self.emit_fault("send_delay", "send", stream, draw);
            return SendVerdict::Delay(Duration::from_millis(self.plan.send_delay_ms));
        }
        SendVerdict::Deliver
    }

    /// Call before every scratch bucket write, passing the writing
    /// compute node's index as the draw stream; errors fire *before* any
    /// bytes land, so a retry never duplicates data.
    pub fn before_scratch_write(&self, stream: u64) -> Result<()> {
        let mut draws = self.draws.lock();
        if let Some(draw) = self.chance(
            &mut draws,
            SITE_SCRATCH,
            SITE_SCRATCH,
            stream,
            self.plan.scratch_error_prob,
        ) {
            if self.take(&self.scratch_errors_left) {
                self.stats.lock().scratch_errors += 1;
                self.emit_fault("scratch_error", "scratch_write", stream, draw);
                return Err(Error::Cluster(
                    "injected transient scratch-write fault".into(),
                ));
            }
        }
        Ok(())
    }

    /// Flip one byte of `bytes` if the site's draw fires and budget
    /// remains. The flip position and a guaranteed-nonzero xor mask are
    /// derived from the draw hash, so the damage is deterministic per
    /// seed; both are returned so wire-level callers can model a
    /// retransmission from the sender's pristine copy (`bytes[off] ^=
    /// mask` restores it exactly).
    fn corrupt(&self, site: CorruptSite<'_>, stream: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
        if bytes.is_empty() {
            return None;
        }
        let mut draws = self.draws.lock();
        let draw = self.chance(&mut draws, site.salt, site.salt, stream, site.prob)?;
        if !self.take(site.left) {
            return None;
        }
        let h = splitmix64(
            self.plan.seed
                ^ site.salt
                ^ stream.wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ draw.wrapping_mul(0xA076_1D64_78BD_642F),
        );
        let offset = (h % bytes.len() as u64) as usize;
        let mask = ((h >> 32) as u8) | 1; // nonzero: the byte really flips
        bytes[offset] ^= mask;
        (site.bump)(&mut self.stats.lock());
        self.events.emit(names::FAULT_INJECTED, || {
            vec![
                ("kind", site.kind.into()),
                ("site", site.site.into()),
                ("stream", stream.into()),
                ("draw", draw.into()),
                ("offset", offset.into()),
            ]
        });
        Some((offset, mask))
    }

    /// Maybe flip one byte of a chunk page *after* its checksum was
    /// computed at generation time (`stream` = the serving storage node).
    /// Call only on pages that carry a checksum — an unverifiable flip
    /// would silently corrupt results.
    pub fn corrupt_chunk_page(&self, stream: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
        self.corrupt(
            CorruptSite {
                kind: "chunk_corrupt",
                site: "chunk_page",
                salt: SITE_CHUNK_CORRUPT,
                prob: self.plan.chunk_corrupt_prob,
                left: &self.chunk_corruptions_left,
                bump: |s| s.chunk_corruptions += 1,
            },
            stream,
            bytes,
        )
    }

    /// Maybe flip one byte of an interconnect frame in flight, after the
    /// sender sealed the frame checksum (`stream` = the sending node).
    /// Returns the flip so the sender can retransmit from its pristine
    /// copy once verification catches the damage.
    pub fn corrupt_frame(&self, stream: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
        self.corrupt(
            CorruptSite {
                kind: "frame_corrupt",
                site: "frame",
                salt: SITE_FRAME_CORRUPT,
                prob: self.plan.frame_corrupt_prob,
                left: &self.frame_corruptions_left,
                bump: |s| s.frame_corruptions += 1,
            },
            stream,
            bytes,
        )
    }

    /// Maybe flip one byte of a scratch bucket on its way back from the
    /// scratch disk (`stream` = the reading compute node; the durable
    /// bucket stays pristine, so a re-read after verification fails
    /// recovers).
    pub fn corrupt_scratch_read(&self, stream: u64, bytes: &mut [u8]) -> Option<(usize, u8)> {
        self.corrupt(
            CorruptSite {
                kind: "scratch_corrupt",
                site: "scratch_read",
                salt: SITE_SCRATCH_CORRUPT,
                prob: self.plan.scratch_corrupt_prob,
                left: &self.scratch_corruptions_left,
                bump: |s| s.scratch_corruptions += 1,
            },
            stream,
            bytes,
        )
    }

    /// Compute-worker checkpoint: call once per completed unit of work.
    /// Panics (deliberately) when a [`WorkerPanicSpec`] for this worker is
    /// due — the runtimes contain the panic with `catch_unwind` and turn
    /// it into recovery or a typed error.
    pub fn worker_checkpoint(&self, worker: usize) {
        if self.plan.worker_panics.is_empty() {
            return;
        }
        let ops = {
            let mut map = self.worker_ops.lock();
            let e = map.entry(worker).or_insert(0);
            let prev = *e;
            *e += 1;
            prev
        };
        for (i, spec) in self.plan.worker_panics.iter().enumerate() {
            if spec.worker == worker
                && ops >= spec.after_ops
                && !self.panic_fired[i].swap(true, Ordering::Relaxed)
            {
                if !take_one(&self.budget) {
                    return;
                }
                self.stats.lock().worker_panics += 1;
                self.events.emit(names::FAULT_INJECTED, || {
                    vec![
                        ("kind", "worker_panic".into()),
                        ("site", "worker_checkpoint".into()),
                        ("stream", worker.into()),
                        ("draw", ops.into()),
                        ("worker", worker.into()),
                    ]
                });
                // orv-lint: allow(L001) -- the injected crash IS the fault: contain_panic catches it and the marker identifies it
                panic!("{INJECTED_PANIC_MARKER}: worker {worker} after {ops} ops");
            }
        }
    }

    /// Federation shard checkpoint: call once per sub-query the shard is
    /// handed, *before* executing it. Returns the shard's injected fate:
    ///
    /// * a due [`ShardSlowSpec`] sleeps `delay_ms` (cancellably) first;
    /// * a fired [`ShardDeathSpec`] fails this and **every later**
    ///   sub-query with a typed `Cluster` error — shard death is
    ///   permanent, so the router must fail over to replicas.
    ///
    /// The first death takes one unit of the global budget; staying dead
    /// afterwards is free (one fault, many observations).
    pub fn shard_checkpoint(&self, shard: usize, cancel: &CancelToken) -> Result<()> {
        if self.plan.shard_deaths.is_empty()
            && self.plan.shard_slows.is_empty()
            && self.plan.shard_slow_storms.is_empty()
        {
            return Ok(());
        }
        // A dead shard stays dead: fail fast without advancing counters.
        for (i, spec) in self.plan.shard_deaths.iter().enumerate() {
            if spec.shard == shard && self.shard_dead[i].load(Ordering::Acquire) {
                return Err(Error::Cluster(format!("injected: shard {shard} is down")));
            }
        }
        let ops = {
            let mut map = self.shard_subqueries.lock();
            let e = map.entry(shard).or_insert(0);
            let prev = *e;
            *e += 1;
            prev
        };
        for (i, spec) in self.plan.shard_slows.iter().enumerate() {
            if spec.shard == shard
                && ops >= spec.after_subqueries
                && !self.shard_slow_fired[i].swap(true, Ordering::Relaxed)
            {
                self.stats.lock().shard_slows += 1;
                self.events.emit(names::FAULT_INJECTED, || {
                    vec![
                        ("kind", "shard_slow".into()),
                        ("site", "shard_checkpoint".into()),
                        ("stream", shard.into()),
                        ("draw", ops.into()),
                        ("shard", shard.into()),
                    ]
                });
                cancel.sleep(Duration::from_millis(spec.delay_ms))?;
            }
        }
        // Storms slow a *window* of consecutive sub-queries; each delay
        // claims one slot of the spec's storm_len, so the storm ends
        // deterministically after exactly that many slowed sub-queries.
        for (i, spec) in self.plan.shard_slow_storms.iter().enumerate() {
            if spec.shard == shard
                && ops >= spec.after_subqueries
                && self.shard_storm_fired[i]
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < spec.storm_len).then_some(n + 1)
                    })
                    .is_ok()
            {
                self.stats.lock().shard_slow_storm_delays += 1;
                self.events.emit(names::FAULT_INJECTED, || {
                    vec![
                        ("kind", "shard_slow_storm".into()),
                        ("site", "shard_checkpoint".into()),
                        ("stream", shard.into()),
                        ("draw", ops.into()),
                        ("shard", shard.into()),
                    ]
                });
                cancel.sleep(Duration::from_millis(spec.delay_ms))?;
            }
        }
        for (i, spec) in self.plan.shard_deaths.iter().enumerate() {
            if spec.shard == shard
                && ops >= spec.after_subqueries
                && !self.shard_dead[i].swap(true, Ordering::AcqRel)
            {
                if !take_one(&self.budget) {
                    // Budget dry: the death never fires. Clear the flag so
                    // the fast path above keeps answering Ok.
                    self.shard_dead[i].store(false, Ordering::Release);
                    return Ok(());
                }
                self.stats.lock().shard_deaths += 1;
                self.events.emit(names::FAULT_INJECTED, || {
                    vec![
                        ("kind", "shard_death".into()),
                        ("site", "shard_checkpoint".into()),
                        ("stream", shard.into()),
                        ("draw", ops.into()),
                        ("shard", shard.into()),
                    ]
                });
                return Err(Error::Cluster(format!("injected: shard {shard} is down")));
            }
        }
        Ok(())
    }
}

/// Decrement `n` if positive; false when exhausted.
fn take_one(n: &AtomicU64) -> bool {
    n.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
        .is_ok()
}

/// Bounded-retry policy the join runtimes wrap around every fetch, send
/// and scratch write: up to `max_attempts` tries with exponential backoff
/// (capped at 250 ms per sleep) under an overall per-operation deadline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Total attempts per operation (1 = no retry).
    pub max_attempts: u32,
    /// First backoff sleep, milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Per-operation deadline, milliseconds; exceeding it fails the
    /// operation with `Error::Cluster` even if attempts remain.
    pub op_deadline_ms: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_attempts: 4,
            base_backoff_ms: 2,
            op_deadline_ms: 5_000,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry number `retry` (0-based), capped at 250 ms.
    pub fn backoff(&self, retry: u32) -> Duration {
        let ms = self.base_backoff_ms.saturating_mul(1u64 << retry.min(16));
        Duration::from_millis(ms.min(250))
    }

    /// Whether the per-operation deadline has passed for an operation
    /// started at `start`. Both join runtimes consult this instead of
    /// hand-rolling the comparison.
    pub fn deadline_exceeded(&self, start: Instant) -> bool {
        start.elapsed() >= Duration::from_millis(self.op_deadline_ms)
    }

    /// True once `retries` has used up the attempt budget (attempt count
    /// is `retries + 1`; a policy always grants at least one attempt).
    pub fn attempts_exhausted(&self, retries: u64) -> bool {
        retries + 1 >= self.max_attempts.max(1) as u64
    }

    /// Run `op` under this policy. Returns the final result plus the
    /// number of retries performed (0 when the first attempt succeeds).
    pub fn run<T>(&self, op: impl FnMut() -> Result<T>) -> (Result<T>, u64) {
        self.run_cancellable(&CancelToken::none(), op)
    }

    /// [`RecoveryPolicy::run`] observing a [`CancelToken`]: cancellation
    /// is checked before every attempt, backoff sleeps wake within one
    /// slice of a cancel, and a cancellation error from `op` itself is
    /// returned immediately — retrying cannot un-cancel a query.
    pub fn run_cancellable<T>(
        &self,
        cancel: &CancelToken,
        mut op: impl FnMut() -> Result<T>,
    ) -> (Result<T>, u64) {
        // orv-lint: allow(L006) -- deadline accounting must use real elapsed time; backoff draws stay seed-deterministic
        let start = Instant::now();
        let mut retries: u64 = 0;
        loop {
            if let Err(c) = cancel.check() {
                return (Err(c), retries);
            }
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if e.is_cancellation() => return (Err(e), retries),
                Err(e) => {
                    if self.attempts_exhausted(retries) {
                        return (Err(e), retries);
                    }
                    if self.deadline_exceeded(start) {
                        let err = Error::Cluster(format!(
                            "operation exceeded {} ms deadline after {} attempts: {e}",
                            self.op_deadline_ms,
                            retries + 1
                        ));
                        return (Err(err), retries);
                    }
                    if let Err(c) = cancel.sleep(self.backoff(retries as u32)) {
                        return (Err(c), retries);
                    }
                    retries += 1;
                }
            }
        }
    }
}

/// Render a panic payload (from `catch_unwind` / `JoinHandle::join`) as a
/// message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` containing any panic: a panic becomes
/// `Error::Cluster("<label> panicked: …")` instead of unwinding into the
/// coordinator. Worker-thread bodies wrap themselves in this so a dead
/// worker always produces a typed error, never a hung join.
pub fn contain_panic<T>(label: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(p) => Err(Error::Cluster(format!(
            "{label} panicked: {}",
            panic_message(p.as_ref())
        ))),
    }
}

/// Install (once, process-wide) a panic hook that swallows the default
/// report for *injected* worker panics — they are part of the test plan,
/// not bugs — while leaving every other panic's output untouched.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC_MARKER))
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_per_seed() {
        let a = FaultPlan {
            seed: 42,
            read_error_prob: 0.5,
            max_read_errors: 100,
            max_faults: 100,
            ..FaultPlan::none()
        };
        let i1 = a.clone().injector();
        let i2 = a.injector();
        let s1: Vec<bool> = (0..64)
            .map(|_| i1.before_chunk_read(0, &CancelToken::none()).is_err())
            .collect();
        let s2: Vec<bool> = (0..64)
            .map(|_| i2.before_chunk_read(0, &CancelToken::none()).is_err())
            .collect();
        assert_eq!(s1, s2);
        assert!(s1.iter().any(|&b| b), "p=0.5 over 64 draws must fire");
        assert!(!s1.iter().all(|&b| b), "p=0.5 over 64 draws must also pass");
    }

    #[test]
    fn per_stream_draws_are_schedule_independent() {
        // The replay-stability property: the outcomes one stream sees are
        // a pure function of the seed, no matter how many draws *other*
        // streams interleave — i.e. scheduling variation across workers
        // cannot move faults between actors.
        let mk = || {
            FaultPlan {
                seed: 42,
                read_error_prob: 0.5,
                max_read_errors: 1_000,
                max_faults: 1_000,
                ..FaultPlan::none()
            }
            .injector()
        };
        let quiet = mk();
        let alone: Vec<bool> = (0..32)
            .map(|_| quiet.before_chunk_read(7, &CancelToken::none()).is_err())
            .collect();
        let noisy = mk();
        let mut interleaved = Vec::new();
        for i in 0..32 {
            // Noise on other streams between every stream-7 draw.
            let _ = noisy.before_chunk_read(1, &CancelToken::none());
            if i % 3 == 0 {
                let _ = noisy.before_chunk_read(3, &CancelToken::none());
            }
            interleaved.push(noisy.before_chunk_read(7, &CancelToken::none()).is_err());
        }
        assert_eq!(alone, interleaved);
        // And distinct streams see distinct sequences.
        let other = mk();
        let stream1: Vec<bool> = (0..32)
            .map(|_| other.before_chunk_read(1, &CancelToken::none()).is_err())
            .collect();
        assert_ne!(alone, stream1);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FaultPlan {
            seed,
            read_error_prob: 0.5,
            max_read_errors: 100,
            max_faults: 100,
            ..FaultPlan::none()
        };
        let i1 = mk(1).injector();
        let i2 = mk(2).injector();
        let s1: Vec<bool> = (0..64)
            .map(|_| i1.before_chunk_read(0, &CancelToken::none()).is_err())
            .collect();
        let s2: Vec<bool> = (0..64)
            .map(|_| i2.before_chunk_read(0, &CancelToken::none()).is_err())
            .collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn budgets_bound_total_faults() {
        let plan = FaultPlan {
            seed: 7,
            read_error_prob: 1.0,
            max_read_errors: 100,
            send_drop_prob: 1.0,
            max_send_drops: 100,
            max_faults: 3,
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let mut fired = 0;
        for _ in 0..10 {
            fired += inj.before_chunk_read(0, &CancelToken::none()).is_err() as u32;
            fired += (inj.send_verdict(0) == SendVerdict::Drop) as u32;
        }
        assert_eq!(fired, 3, "global budget caps faults");
        assert_eq!(inj.stats().read_errors + inj.stats().send_drops, 3);
    }

    #[test]
    fn per_kind_caps_apply() {
        let plan = FaultPlan {
            seed: 9,
            read_error_prob: 1.0,
            max_read_errors: 2,
            scratch_error_prob: 1.0,
            max_scratch_errors: 1,
            max_faults: 100,
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let reads = (0..10)
            .filter(|_| inj.before_chunk_read(0, &CancelToken::none()).is_err())
            .count();
        let scratches = (0..10)
            .filter(|_| inj.before_scratch_write(0).is_err())
            .count();
        assert_eq!(reads, 2);
        assert_eq!(scratches, 1);
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for w in 0..4 {
            inj.worker_checkpoint(w);
            assert!(inj
                .before_chunk_read(w as u64, &CancelToken::none())
                .is_ok());
            assert!(inj.before_scratch_write(w as u64).is_ok());
            assert_eq!(inj.send_verdict(w as u64), SendVerdict::Deliver);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn worker_panic_fires_once_after_ops() {
        silence_injected_panics();
        let plan = FaultPlan {
            seed: 3,
            worker_panics: vec![WorkerPanicSpec {
                worker: 1,
                after_ops: 2,
            }],
            max_faults: 5,
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        // Worker 0 never panics.
        for _ in 0..5 {
            inj.worker_checkpoint(0);
        }
        // Worker 1 survives 2 checkpoints, dies on the 3rd, then stays up.
        inj.worker_checkpoint(1);
        inj.worker_checkpoint(1);
        let r = std::panic::catch_unwind(|| inj.worker_checkpoint(1));
        assert!(r.is_err(), "third checkpoint must panic");
        inj.worker_checkpoint(1); // one-shot: no second panic
        assert_eq!(inj.stats().worker_panics, 1);
    }

    #[test]
    fn shard_death_fires_after_subqueries_and_is_permanent() {
        let plan = FaultPlan {
            seed: 11,
            shard_deaths: vec![ShardDeathSpec {
                shard: 1,
                after_subqueries: 2,
            }],
            max_faults: 5,
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let c = CancelToken::none();
        // Shard 0 is unaffected forever.
        for _ in 0..6 {
            assert!(inj.shard_checkpoint(0, &c).is_ok());
        }
        // Shard 1 serves two sub-queries, then dies and stays dead.
        assert!(inj.shard_checkpoint(1, &c).is_ok());
        assert!(inj.shard_checkpoint(1, &c).is_ok());
        let err = inj.shard_checkpoint(1, &c).unwrap_err();
        assert!(err.to_string().contains("shard 1 is down"), "{err}");
        for _ in 0..4 {
            assert!(inj.shard_checkpoint(1, &c).is_err());
        }
        // Permanence is one fault, not many: exactly one budget unit.
        assert_eq!(inj.stats().shard_deaths, 1);
        assert_eq!(inj.budget.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn shard_death_respects_global_budget() {
        let plan = FaultPlan {
            seed: 11,
            shard_deaths: vec![ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            }],
            max_faults: 0,
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let c = CancelToken::none();
        for _ in 0..4 {
            assert!(inj.shard_checkpoint(0, &c).is_ok());
        }
        assert_eq!(inj.stats().shard_deaths, 0);
    }

    #[test]
    fn shard_slow_is_one_shot_and_cancellable() {
        let plan = FaultPlan {
            seed: 7,
            shard_slows: vec![ShardSlowSpec {
                shard: 2,
                after_subqueries: 1,
                delay_ms: 1,
            }],
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let c = CancelToken::none();
        assert!(inj.shard_checkpoint(2, &c).is_ok());
        assert!(inj.shard_checkpoint(2, &c).is_ok()); // sleeps 1ms
        assert!(inj.shard_checkpoint(2, &c).is_ok());
        assert_eq!(inj.stats().shard_slows, 1);

        // A cancelled query must not pay the injected latency.
        let plan = FaultPlan {
            seed: 7,
            shard_slows: vec![ShardSlowSpec {
                shard: 0,
                after_subqueries: 0,
                delay_ms: 60_000,
            }],
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = inj.shard_checkpoint(0, &cancelled).unwrap_err();
        assert!(err.is_cancellation(), "{err}");
    }

    #[test]
    fn shard_slow_storm_delays_a_window_then_ends() {
        let plan = FaultPlan {
            seed: 9,
            shard_slow_storms: vec![ShardSlowStormSpec {
                shard: 1,
                after_subqueries: 1,
                delay_ms: 1,
                storm_len: 3,
            }],
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let c = CancelToken::none();
        // Other shards are never slowed.
        for _ in 0..8 {
            assert!(inj.shard_checkpoint(0, &c).is_ok());
        }
        // Shard 1: one clean sub-query, then exactly storm_len slowed
        // ones, then the storm is over.
        for _ in 0..8 {
            assert!(inj.shard_checkpoint(1, &c).is_ok());
        }
        assert_eq!(inj.stats().shard_slow_storm_delays, 3);

        // A cancelled query must not pay the storm latency.
        let plan = FaultPlan {
            seed: 9,
            shard_slow_storms: vec![ShardSlowStormSpec {
                shard: 0,
                after_subqueries: 0,
                delay_ms: 60_000,
                storm_len: 1,
            }],
            ..FaultPlan::none()
        };
        let inj = plan.injector();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let err = inj.shard_checkpoint(0, &cancelled).unwrap_err();
        assert!(err.is_cancellation(), "{err}");
    }

    #[test]
    fn load_storm_plan_is_seeded_and_round_trips() {
        let plan = FaultPlan::load_storm(42, 8, 4);
        assert_eq!(plan.client_floods.len(), 1);
        assert_eq!(plan.client_floods[0].clients, 8, "flood doubles load");
        assert_eq!(plan.shard_slow_storms.len(), 1);
        assert!(plan.shard_slow_storms[0].shard < 4);
        assert!(plan.shard_slow_storms[0].storm_len >= 6);
        assert_eq!(plan.max_faults, 0, "overload plans inject no errors");
        // Same seed, same storm; different seed, different draw stream.
        assert_eq!(FaultPlan::load_storm(42, 8, 4), plan);
        assert_ne!(FaultPlan::load_storm(43, 8, 4), plan);
        // Round-trips through the fault_plan event payload.
        let back = FaultPlan::from_json_value(&plan.to_json_value()).unwrap();
        assert_eq!(back, plan);
        // Plans logged before the overload kinds still parse as empty.
        let mut v = plan.to_json_value();
        if let JsonValue::Object(map) = &mut v {
            map.retain(|k, _| k.as_str() != "client_floods" && k.as_str() != "shard_slow_storms");
        }
        let back = FaultPlan::from_json_value(&v).unwrap();
        assert!(back.client_floods.is_empty() && back.shard_slow_storms.is_empty());
    }

    #[test]
    fn contain_panic_yields_typed_error() {
        let ok: Result<u32> = contain_panic("w", || Ok(5));
        assert_eq!(ok.unwrap(), 5);
        let err = contain_panic::<u32>("worker 3", || panic!("boom"));
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("worker 3 panicked"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn recovery_retries_then_succeeds() {
        let policy = RecoveryPolicy {
            max_attempts: 5,
            base_backoff_ms: 1,
            op_deadline_ms: 5_000,
        };
        let mut failures_left = 3;
        let (out, retries) = policy.run(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(Error::Cluster("transient".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries, 3);
    }

    #[test]
    fn recovery_gives_up_after_max_attempts() {
        let policy = RecoveryPolicy {
            max_attempts: 3,
            base_backoff_ms: 1,
            op_deadline_ms: 5_000,
        };
        let mut calls = 0;
        let (out, retries) = policy.run(|| -> Result<()> {
            calls += 1;
            Err(Error::Cluster("always".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn recovery_respects_deadline() {
        let policy = RecoveryPolicy {
            max_attempts: 1_000,
            base_backoff_ms: 5,
            op_deadline_ms: 20,
        };
        let start = Instant::now();
        let (out, _) = policy.run(|| -> Result<()> { Err(Error::Cluster("slow".into())) });
        let msg = out.unwrap_err().to_string();
        assert!(msg.contains("deadline"), "{msg}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn from_seed_is_reproducible_and_bounded() {
        assert_eq!(FaultPlan::from_seed(11), FaultPlan::from_seed(11));
        assert_ne!(FaultPlan::from_seed(11), FaultPlan::from_seed(12));
        let p = FaultPlan::from_seed(11);
        assert!(
            p.max_faults > 0 && p.max_faults < 100,
            "transience requires a finite budget"
        );
    }

    #[test]
    fn fault_plan_json_round_trips() {
        for seed in [0, 11, 99] {
            let p = FaultPlan::from_seed(seed);
            let back = FaultPlan::from_json_value(&p.to_json_value()).unwrap();
            assert_eq!(back, p);
        }
        assert_eq!(
            FaultPlan::from_json_value(&FaultPlan::none().to_json_value()).unwrap(),
            FaultPlan::none()
        );
        // Shard kinds survive the trip, and logs from before they existed
        // (no `shard_deaths`/`shard_slows` keys) still parse as empty.
        let p = FaultPlan {
            shard_deaths: vec![ShardDeathSpec {
                shard: 1,
                after_subqueries: 3,
            }],
            shard_slows: vec![ShardSlowSpec {
                shard: 0,
                after_subqueries: 1,
                delay_ms: 40,
            }],
            ..FaultPlan::from_seed(5)
        };
        assert_eq!(FaultPlan::from_json_value(&p.to_json_value()).unwrap(), p);
        let mut old = FaultPlan::from_seed(5).to_json_value();
        if let JsonValue::Object(map) = &mut old {
            map.retain(|k, _| k.as_str() != "shard_deaths" && k.as_str() != "shard_slows");
        }
        let back = FaultPlan::from_json_value(&old).unwrap();
        assert!(back.shard_deaths.is_empty() && back.shard_slows.is_empty());
    }

    #[test]
    fn injected_faults_are_logged_with_draw_indices() {
        let events = EventLog::enabled();
        let plan = FaultPlan {
            seed: 5,
            read_error_prob: 1.0,
            max_read_errors: 2,
            send_drop_prob: 1.0,
            max_send_drops: 1,
            max_faults: 10,
            ..FaultPlan::none()
        };
        let inj = plan.clone().injector_with_events(events.clone());
        for _ in 0..4 {
            // Two interleaved streams per site.
            for stream in [0u64, 1] {
                let _ = inj.before_chunk_read(stream, &CancelToken::none());
                let _ = inj.send_verdict(stream);
            }
        }
        // The plan event pins the run.
        let plan_events = events.events_of_kind(names::FAULT_PLAN);
        assert_eq!(plan_events.len(), 1);
        let logged = FaultPlan::from_json_value(&plan_events[0].fields["plan"]).unwrap();
        assert_eq!(logged, plan);
        // One event per injected fault, every event tagged with its draw
        // stream, draw indices strictly increasing per (site, stream).
        let faults = events.events_of_kind(names::FAULT_INJECTED);
        let s = inj.stats();
        assert_eq!(faults.len() as u64, s.read_errors + s.send_drops);
        let mut per_stream: HashMap<(String, u64), Vec<u64>> = HashMap::new();
        for e in &faults {
            let site = e.fields["site"].as_str().unwrap().to_string();
            let stream = e.fields["stream"].as_u64().unwrap();
            let draw = e.fields["draw"].as_u64().unwrap();
            per_stream.entry((site, stream)).or_default().push(draw);
        }
        let read_errors: u64 = per_stream
            .iter()
            .filter(|((site, _), _)| site == "chunk_read")
            .map(|(_, draws)| draws.len() as u64)
            .sum();
        assert_eq!(read_errors, s.read_errors);
        for ((site, stream), draws) in &per_stream {
            assert!(
                draws.windows(2).all(|w| w[0] < w[1]),
                "draws not monotone at ({site}, {stream}): {draws:?}"
            );
        }
    }

    #[test]
    fn corruption_flips_exactly_one_byte_and_is_deterministic() {
        let plan = FaultPlan {
            seed: 21,
            chunk_corrupt_prob: 1.0,
            max_chunk_corruptions: 1,
            frame_corrupt_prob: 1.0,
            max_frame_corruptions: 1,
            scratch_corrupt_prob: 1.0,
            max_scratch_corruptions: 1,
            max_faults: 10,
            ..FaultPlan::none()
        };
        let clean: Vec<u8> = (0..64).collect();
        let run = |plan: FaultPlan| {
            let inj = plan.injector();
            let mut page = clean.clone();
            let flip = inj.corrupt_chunk_page(0, &mut page).expect("p=1 must fire");
            (page, flip)
        };
        let (page_a, flip_a) = run(plan.clone());
        let (page_b, flip_b) = run(plan.clone());
        assert_eq!(page_a, page_b, "same seed, same damage");
        assert_eq!(flip_a, flip_b);
        let diffs: Vec<usize> = (0..clean.len())
            .filter(|&i| page_a[i] != clean[i])
            .collect();
        assert_eq!(diffs, vec![flip_a.0], "exactly one byte flipped");
        assert_ne!(flip_a.1, 0, "mask must actually flip");

        // The returned flip restores the pristine payload (retransmit).
        let inj = plan.injector();
        let mut frame = clean.clone();
        let (off, mask) = inj.corrupt_frame(0, &mut frame).unwrap();
        assert_ne!(frame, clean);
        frame[off] ^= mask;
        assert_eq!(frame, clean);

        // Caps are per kind, budget is honoured, empty payloads skipped.
        assert!(inj.corrupt_frame(0, &mut frame.clone()).is_none(), "cap 1");
        assert!(inj.corrupt_scratch_read(0, &mut []).is_none());
        let mut s = clean.clone();
        assert!(inj.corrupt_scratch_read(0, &mut s).is_some());
        let stats = inj.stats();
        assert_eq!(stats.frame_corruptions, 1);
        assert_eq!(stats.scratch_corruptions, 1);
        assert_eq!(stats.corruptions(), 2);
    }

    #[test]
    fn corruptions_are_logged_like_other_faults() {
        let events = EventLog::enabled();
        let plan = FaultPlan {
            seed: 5,
            chunk_corrupt_prob: 1.0,
            max_chunk_corruptions: 2,
            max_faults: 10,
            ..FaultPlan::none()
        };
        let inj = plan.injector_with_events(events.clone());
        let mut page = vec![1u8, 2, 3, 4];
        for _ in 0..4 {
            let _ = inj.corrupt_chunk_page(3, &mut page);
        }
        let faults = events.events_of_kind(names::FAULT_INJECTED);
        assert_eq!(faults.len(), 2, "cap bounds logged corruptions");
        for e in &faults {
            assert_eq!(e.fields["kind"].as_str(), Some("chunk_corrupt"));
            assert_eq!(e.fields["site"].as_str(), Some("chunk_page"));
            assert_eq!(e.fields["stream"].as_u64(), Some(3));
            assert!(e.fields["offset"].as_u64().unwrap() < 4);
        }
    }

    #[test]
    fn corrupting_plan_round_trips_and_old_logs_still_parse() {
        let p = FaultPlan::corrupting(33);
        assert!(p.chunk_corrupt_prob > 0.0 && p.max_faults > FaultPlan::from_seed(33).max_faults);
        let back = FaultPlan::from_json_value(&p.to_json_value()).unwrap();
        assert_eq!(back, p);

        // A plan serialized before the corruption kinds existed parses
        // with all corruption knobs at zero.
        let mut old = FaultPlan::from_seed(4).to_json_value();
        if let JsonValue::Object(m) = &mut old {
            for k in [
                "chunk_corrupt_prob",
                "max_chunk_corruptions",
                "frame_corrupt_prob",
                "max_frame_corruptions",
                "scratch_corrupt_prob",
                "max_scratch_corruptions",
            ] {
                m.remove(k);
            }
        }
        let parsed = FaultPlan::from_json_value(&old).unwrap();
        assert_eq!(parsed, FaultPlan::from_seed(4));
    }

    #[test]
    fn cancelled_token_stops_recovery_immediately() {
        let policy = RecoveryPolicy {
            max_attempts: 1_000,
            base_backoff_ms: 60_000,
            op_deadline_ms: 600_000,
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let start = Instant::now();
        let (out, retries) = policy.run_cancellable(&cancel, || -> Result<()> {
            Err(Error::Cluster("transient".into()))
        });
        assert!(matches!(out, Err(Error::Cancelled)));
        assert_eq!(retries, 0);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn cancellation_error_from_op_is_not_retried() {
        let policy = RecoveryPolicy {
            max_attempts: 10,
            base_backoff_ms: 1,
            op_deadline_ms: 5_000,
        };
        let mut calls = 0;
        let (out, _) = policy.run(|| -> Result<()> {
            calls += 1;
            Err(Error::DeadlineExceeded)
        });
        assert!(matches!(out, Err(Error::DeadlineExceeded)));
        assert_eq!(calls, 1, "cancellation must short-circuit retries");
    }

    #[test]
    fn deadline_helper_matches_policy() {
        let p = RecoveryPolicy {
            op_deadline_ms: 10,
            ..RecoveryPolicy::default()
        };
        let start = Instant::now();
        assert!(!p.deadline_exceeded(start));
        std::thread::sleep(Duration::from_millis(15));
        assert!(p.deadline_exceeded(start));
        assert!(!p.attempts_exhausted(0));
        assert!(p.attempts_exhausted(3));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RecoveryPolicy {
            max_attempts: 10,
            base_backoff_ms: 2,
            op_deadline_ms: 1_000,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(30), Duration::from_millis(250), "capped");
    }
}
