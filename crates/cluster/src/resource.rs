//! FIFO bandwidth servers — the atoms of the cluster simulator.

/// A resource that serves requests at a fixed rate, one at a time, in
/// arrival order.
///
/// A request for `amount` units arriving at time `start` begins service at
/// `max(start, avail)` and completes `amount / rate` later. Disks serve
/// bytes/s, NICs serve bytes/s, CPUs serve ops/s — the same abstraction
/// covers them all.
#[derive(Clone, Debug)]
pub struct Resource {
    rate: f64,
    overhead: f64,
    avail: f64,
    busy: f64,
    served: f64,
}

impl Resource {
    /// A server with the given rate (units/second). Rate must be positive
    /// and finite.
    pub fn new(rate: f64) -> Self {
        Self::with_overhead(rate, 0.0)
    }

    /// A server that additionally charges `overhead` seconds per request —
    /// a disk seek, an NFS RPC round trip, a per-message network cost.
    pub fn with_overhead(rate: f64, overhead: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "resource rate must be positive"
        );
        assert!(
            overhead >= 0.0 && overhead.is_finite(),
            "overhead must be non-negative"
        );
        Resource {
            rate,
            overhead,
            avail: 0.0,
            busy: 0.0,
            served: 0.0,
        }
    }

    /// Serve a request of `amount` units arriving at `start`; returns the
    /// completion time.
    pub fn request(&mut self, start: f64, amount: f64) -> f64 {
        debug_assert!(amount >= 0.0 && start >= 0.0);
        let begin = self.avail.max(start);
        let service = self.overhead + amount / self.rate;
        self.avail = begin + service;
        self.busy += service;
        self.served += amount;
        self.avail
    }

    /// Configured rate (units/second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Earliest time a new request could begin service.
    pub fn avail(&self) -> f64 {
        self.avail
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Total units served.
    pub fn served(&self) -> f64 {
        self.served
    }

    /// Utilization over a makespan.
    pub fn utilization(&self, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            0.0
        } else {
            self.busy / makespan
        }
    }

    /// Per-request overhead in seconds.
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Reset bookkeeping (rate kept).
    pub fn reset(&mut self) {
        self.avail = 0.0;
        self.busy = 0.0;
        self.served = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_requests_queue() {
        let mut r = Resource::new(10.0);
        assert_eq!(r.request(0.0, 50.0), 5.0);
        // Arrives while busy: queues behind.
        assert_eq!(r.request(1.0, 10.0), 6.0);
        // Arrives after idle gap: starts at its own arrival.
        assert_eq!(r.request(10.0, 10.0), 11.0);
        assert_eq!(r.busy_time(), 7.0);
        assert_eq!(r.served(), 70.0);
    }

    #[test]
    fn zero_amount_is_instant_but_ordered() {
        let mut r = Resource::new(1.0);
        r.request(0.0, 5.0);
        // Zero work still cannot complete before the queue drains.
        assert_eq!(r.request(0.0, 0.0), 5.0);
    }

    #[test]
    fn utilization_and_reset() {
        let mut r = Resource::new(4.0);
        r.request(0.0, 8.0); // 2s busy
        assert_eq!(r.utilization(4.0), 0.5);
        assert_eq!(r.utilization(0.0), 0.0);
        r.reset();
        assert_eq!(r.busy_time(), 0.0);
        assert_eq!(r.avail(), 0.0);
        assert_eq!(r.rate(), 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Resource::new(0.0);
    }

    #[test]
    fn per_request_overhead_charged() {
        let mut r = Resource::with_overhead(100.0, 0.5);
        assert_eq!(r.request(0.0, 100.0), 1.5);
        assert_eq!(r.request(0.0, 0.0), 2.0); // overhead even for zero bytes
        assert_eq!(r.overhead(), 0.5);
        assert_eq!(r.busy_time(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_overhead_rejected() {
        let _ = Resource::with_overhead(1.0, -0.1);
    }

    #[test]
    fn throughput_approaches_rate_under_saturation() {
        let mut r = Resource::new(100.0);
        let mut t = 0.0;
        for _ in 0..1000 {
            t = r.request(0.0, 5.0);
        }
        // 5000 units at rate 100 → 50 seconds.
        assert!((t - 50.0).abs() < 1e-9);
        assert!((r.utilization(t) - 1.0).abs() < 1e-9);
    }
}
