//! Dependency-free CRC32C (Castagnoli) checksums.
//!
//! Every payload that crosses a failure boundary — a chunk page leaving a
//! storage node, an interconnect frame, a scratch bucket — is checksummed
//! at the producer and verified at every consumer, so a flipped bit is
//! detected where it can still be retried (re-read, re-send,
//! re-partition) instead of silently joining wrong rows. CRC32C is chosen
//! over CRC32 for its better error-detection properties on short bursts;
//! the implementation is the classic reflected table-driven one, built at
//! compile time.

/// Reflected CRC32C polynomial (Castagnoli).
const POLY: u32 = 0x82F6_3B78;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `bytes` in one shot. The empty payload hashes to 0.
pub fn crc32c(bytes: &[u8]) -> u32 {
    finish(update(begin(), bytes))
}

/// Start an incremental checksum (see [`update`] / [`finish`]).
pub fn begin() -> u32 {
    0xFFFF_FFFF
}

/// Fold `bytes` into an in-progress checksum state.
///
/// Used by [`crate::Scratch`] to maintain a running checksum per bucket:
/// appends update the state without ever re-reading the bucket.
pub fn update(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Finalize an incremental checksum state into the checksum value.
pub fn finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// Verify `bytes` against `expected`, describing `what` on mismatch.
pub fn verify(expected: u32, bytes: &[u8], what: &str) -> orv_types::Result<()> {
    let actual = crc32c(bytes);
    if actual == expected {
        Ok(())
    } else {
        Err(orv_types::Error::Integrity(format!(
            "{what}: crc32c mismatch (expected {expected:#010x}, got {actual:#010x}, {} bytes)",
            bytes.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 7, 500, 999, 1000] {
            let state = update(update(begin(), &data[..split]), &data[split..]);
            assert_eq!(finish(state), crc32c(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32c(&data);
        let mut corrupt = data.clone();
        for i in 0..corrupt.len() {
            for bit in 0..8 {
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32c(&corrupt), clean, "flip byte {i} bit {bit}");
                corrupt[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn verify_reports_context() {
        assert!(verify(crc32c(b"ok"), b"ok", "frame").is_ok());
        let err = verify(0xDEAD_BEEF, b"ok", "bucket L3").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bucket L3"), "{msg}");
        assert!(msg.contains("0xdeadbeef"), "{msg}");
        assert!(matches!(err, orv_types::Error::Integrity(_)));
    }
}
