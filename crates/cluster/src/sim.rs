//! The discrete-event cluster simulator.
//!
//! [`SimCluster`] instantiates one [`Resource`] per physical device named by
//! the [`ClusterSpec`] and exposes chunk-grained operations
//! ([`SimCluster::read_chunk`], [`transfer`](SimCluster::transfer),
//! [`scratch_write`](SimCluster::scratch_write), ...). Join-algorithm
//! simulators (in `orv-join::sim_exec`) drive these operations from
//! per-node logical clocks; [`NodeClocks`] keeps the interleaving honest by
//! always advancing the node that is furthest behind, so FIFO resource
//! queues see requests in (approximately) global time order.
//!
//! Because each operation is chunk-grained, *pipelining emerges*: a stream
//! of chunk fetches through disk → storage NIC → compute NIC converges to
//! the bottleneck stage's bandwidth, which is exactly the
//! `min(Net_bw, readIO_bw · n_s)` denominator of the paper's transfer-cost
//! term.

use crate::resource::Resource;
use crate::spec::ClusterSpec;
use orv_types::Result;

/// Simulated cluster state: every device is a FIFO bandwidth server.
pub struct SimCluster {
    spec: ClusterSpec,
    /// One per storage node (or a single shared server under NFS).
    storage_disks: Vec<Resource>,
    /// Storage-side NICs (one per storage node; one total under NFS).
    storage_nics: Vec<Resource>,
    /// Compute-side NICs.
    compute_nics: Vec<Resource>,
    /// Scratch disks on compute nodes. Under NFS these alias the shared
    /// server disk (handled in the op methods).
    scratch_disks: Vec<Resource>,
    /// Per-compute-node CPUs (rate already divided by the work factor).
    cpus: Vec<Resource>,
    /// Optional switch backplane.
    fabric: Option<Resource>,
}

impl SimCluster {
    /// Build the resource set for `spec`.
    pub fn new(spec: ClusterSpec) -> Result<Self> {
        spec.validate()?;
        let storage_count = if spec.shared_fs { 1 } else { spec.n_storage };
        // The shared NFS server pays a full RPC + random seek per request
        // (its clients interleave); dedicated storage disks stream
        // contiguous chunks and amortize seeks.
        let disk_overhead = if spec.shared_fs {
            spec.nfs_rpc_s
        } else {
            spec.disk_seek_s
        };
        let storage_disks =
            vec![Resource::with_overhead(spec.disk_read_bw, disk_overhead); storage_count];
        let storage_nics =
            vec![Resource::with_overhead(spec.nic_bw, spec.net_overhead_s); storage_count];
        let compute_nics =
            vec![Resource::with_overhead(spec.nic_bw, spec.net_overhead_s); spec.n_compute];
        let scratch_disks = if spec.shared_fs {
            Vec::new() // all scratch I/O goes to the shared server disk
        } else {
            // One scratch disk per compute node; reads and writes share it.
            // Bucket appends are buffered sequential writes — no per-request
            // seek is charged (unlike the synchronous NFS RPC path).
            vec![Resource::new(spec.disk_write_bw.min(spec.scratch_read_bw)); spec.n_compute]
        };
        let cpus = vec![Resource::new(spec.effective_cpu_rate()); spec.n_compute];
        let fabric = spec.fabric_bw.map(Resource::new);
        Ok(SimCluster {
            spec,
            storage_disks,
            storage_nics,
            compute_nics,
            scratch_disks,
            cpus,
            fabric,
        })
    }

    /// The spec this cluster was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    fn storage_index(&self, node: usize) -> usize {
        if self.spec.shared_fs {
            0
        } else {
            node % self.storage_disks.len()
        }
    }

    /// Read `bytes` of chunk data from `storage_node`'s disk, starting no
    /// earlier than `t`. Returns completion time.
    pub fn read_chunk(&mut self, storage_node: usize, bytes: f64, t: f64) -> f64 {
        let i = self.storage_index(storage_node);
        self.storage_disks[i].request(t, bytes)
    }

    /// Move `bytes` from `storage_node` to `compute_node` over the network.
    /// Switched Ethernet forwards cut-through, so the message occupies the
    /// storage NIC, the fabric and the compute NIC *concurrently*; the
    /// completion time is the latest stage's, not their sum. Streams of
    /// chunks therefore run at the bottleneck stage's bandwidth.
    pub fn transfer(
        &mut self,
        storage_node: usize,
        compute_node: usize,
        bytes: f64,
        t: f64,
    ) -> f64 {
        let si = self.storage_index(storage_node);
        let mut done = self.storage_nics[si].request(t, bytes);
        if let Some(fabric) = &mut self.fabric {
            done = done.max(fabric.request(t, bytes));
        }
        let ci = compute_node % self.compute_nics.len();
        done.max(self.compute_nics[ci].request(t, bytes))
    }

    /// Read a chunk from storage and ship it to a compute node. The BDS
    /// streams the chunk as it reads, so the disk and the network stages
    /// overlap (cut-through): completion is the latest stage's completion,
    /// and a stream of fetches runs at the bottleneck stage's bandwidth —
    /// the `min(Net_bw, readIO_bw·n_s)` of the cost models.
    pub fn fetch(&mut self, storage_node: usize, compute_node: usize, bytes: f64, t: f64) -> f64 {
        let disk_done = self.read_chunk(storage_node, bytes, t);
        let net_done = self.transfer(storage_node, compute_node, bytes, t);
        disk_done.max(net_done)
    }

    /// Write `bytes` of Grace-Hash bucket data to `compute_node`'s scratch
    /// disk (or the shared server under NFS, crossing the network again).
    pub fn scratch_write(&mut self, compute_node: usize, bytes: f64, t: f64) -> f64 {
        if self.spec.shared_fs {
            // Bucket data crosses the network (cut-through) and lands on
            // the server disk, paying the per-RPC overhead there.
            let net_done = self.net_hop(compute_node, t, bytes);
            self.storage_disks[0].request(net_done, bytes)
        } else {
            let si = compute_node % self.scratch_disks.len();
            self.scratch_disks[si].request(t, bytes)
        }
    }

    /// Read bucket data back from scratch.
    pub fn scratch_read(&mut self, compute_node: usize, bytes: f64, t: f64) -> f64 {
        if self.spec.shared_fs {
            let after_disk = self.storage_disks[0].request(t, bytes);
            self.net_hop(compute_node, after_disk, bytes)
        } else {
            let si = compute_node % self.scratch_disks.len();
            self.scratch_disks[si].request(t, bytes)
        }
    }

    /// Cut-through hop between a compute node and the storage side.
    fn net_hop(&mut self, compute_node: usize, t: f64, bytes: f64) -> f64 {
        let ci = compute_node % self.compute_nics.len();
        let mut done = self.compute_nics[ci].request(t, bytes);
        if let Some(f) = &mut self.fabric {
            done = done.max(f.request(t, bytes));
        }
        done.max(self.storage_nics[0].request(t, bytes))
    }

    /// Spend `ops` cost-model operations on `compute_node`'s CPU.
    pub fn cpu(&mut self, compute_node: usize, ops: f64, t: f64) -> f64 {
        let ci = compute_node % self.cpus.len();
        self.cpus[ci].request(t, ops)
    }

    /// Total busy time of the storage disks (diagnostics).
    pub fn storage_disk_busy(&self) -> f64 {
        self.storage_disks.iter().map(Resource::busy_time).sum()
    }

    /// Total bytes moved over compute NICs (diagnostics).
    pub fn bytes_received(&self) -> f64 {
        self.compute_nics.iter().map(Resource::served).sum()
    }

    /// Total CPU busy time across compute nodes (diagnostics).
    pub fn cpu_busy(&self) -> f64 {
        self.cpus.iter().map(Resource::busy_time).sum()
    }
}

/// Per-node logical clocks with earliest-first scheduling.
///
/// Join simulators keep one clock per compute node and repeatedly ask for
/// the node that is furthest behind (`pop_earliest`), execute that node's
/// next task against the [`SimCluster`], and push the node back with its
/// advanced clock. The makespan is the maximum clock at the end.
#[derive(Clone, Debug)]
pub struct NodeClocks {
    clocks: Vec<f64>,
}

impl NodeClocks {
    /// `n` clocks at time zero.
    pub fn new(n: usize) -> Self {
        NodeClocks {
            clocks: vec![0.0; n],
        }
    }

    /// The node with the smallest clock (ties to the lowest index);
    /// node 0 for an empty clock set.
    pub fn earliest(&self) -> usize {
        self.clocks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Current clock of `node`.
    pub fn get(&self, node: usize) -> f64 {
        self.clocks[node]
    }

    /// Set `node`'s clock (must not move backwards).
    pub fn set(&mut self, node: usize, t: f64) {
        debug_assert!(t >= self.clocks[node], "clock moved backwards");
        self.clocks[node] = t;
    }

    /// Largest clock — the makespan once all work is issued.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Number of clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True if no clocks.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ns: usize, nj: usize) -> ClusterSpec {
        let mut s = ClusterSpec::paper_testbed(ns, nj);
        // Round numbers for easy arithmetic.
        s.disk_read_bw = 100.0;
        s.disk_write_bw = 50.0;
        s.scratch_read_bw = 50.0;
        s.nic_bw = 100.0;
        s.cpu_ops_per_sec = 1000.0;
        s.disk_seek_s = 0.0;
        s.net_overhead_s = 0.0;
        s
    }

    #[test]
    fn single_fetch_is_fully_cut_through() {
        let mut c = SimCluster::new(spec(1, 1)).unwrap();
        // 100 bytes: disk (1s) and both NIC stages (1s each) overlap.
        let done = c.fetch(0, 0, 100.0, 0.0);
        assert!((done - 1.0).abs() < 1e-9, "done = {done}");
        // A second fetch queues behind the first on every stage.
        let done = c.fetch(0, 0, 100.0, 0.0);
        assert!((done - 2.0).abs() < 1e-9, "done = {done}");
    }

    #[test]
    fn chunk_stream_pipelines_to_bottleneck() {
        let mut s = spec(1, 1);
        s.nic_bw = 50.0; // network is the bottleneck
        let mut c = SimCluster::new(s).unwrap();
        let mut t = 0.0;
        for _ in 0..100 {
            t = c.fetch(0, 0, 100.0, 0.0);
        }
        // 10_000 bytes at bottleneck 50 B/s = 200s (+ pipeline fill ≈ 3s).
        assert!((200.0..206.0).contains(&t), "t = {t}");
    }

    #[test]
    fn parallel_storage_nodes_scale_read_bandwidth() {
        let mut one = SimCluster::new(spec(1, 4)).unwrap();
        let mut four = SimCluster::new(spec(4, 4)).unwrap();
        let mut t1: f64 = 0.0;
        let mut t4: f64 = 0.0;
        for i in 0..64 {
            t1 = t1.max(one.fetch(0, i % 4, 100.0, 0.0));
            t4 = t4.max(four.fetch(i % 4, i % 4, 100.0, 0.0));
        }
        assert!(
            t4 < t1 / 2.0,
            "4 disks should be much faster: t1={t1} t4={t4}"
        );
    }

    #[test]
    fn nfs_scratch_crosses_network_and_contends() {
        let mut s = spec(1, 4);
        s.shared_fs = true;
        let mut c = SimCluster::new(s).unwrap();
        // All four compute nodes write buckets concurrently; the single
        // server disk serializes them.
        let mut clocks = NodeClocks::new(4);
        for round in 0..10 {
            for n in 0..4 {
                let t = clocks.get(n);
                let done = c.scratch_write(n, 50.0, t);
                clocks.set(n, done);
                let _ = round;
            }
        }
        // 40 writes × 50 bytes = 2000 bytes through a 100 B/s disk ≥ 20s.
        assert!(clocks.makespan() >= 20.0);
    }

    #[test]
    fn cpu_work_factor_slows_compute() {
        let mut fast = SimCluster::new(spec(1, 1)).unwrap();
        let mut slow_spec = spec(1, 1);
        slow_spec.cpu_work_factor = 2.0;
        let mut slow = SimCluster::new(slow_spec).unwrap();
        assert_eq!(fast.cpu(0, 1000.0, 0.0), 1.0);
        assert_eq!(slow.cpu(0, 1000.0, 0.0), 2.0);
    }

    #[test]
    fn node_clocks_earliest_first() {
        let mut clocks = NodeClocks::new(3);
        clocks.set(0, 5.0);
        clocks.set(1, 2.0);
        assert_eq!(clocks.earliest(), 2); // node 2 still at 0
        clocks.set(2, 9.0);
        assert_eq!(clocks.earliest(), 1);
        assert_eq!(clocks.makespan(), 9.0);
        assert_eq!(clocks.len(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "backwards")]
    fn clocks_cannot_rewind() {
        let mut clocks = NodeClocks::new(1);
        clocks.set(0, 5.0);
        clocks.set(0, 4.0);
    }

    #[test]
    fn fabric_cap_limits_aggregate() {
        let mut s = spec(4, 4);
        s.fabric_bw = Some(100.0);
        let mut c = SimCluster::new(s).unwrap();
        let mut clocks = NodeClocks::new(4);
        // Each pair (i→i) independently has 200 B/s of NIC path, but the
        // fabric serializes everything at 100 B/s.
        for _ in 0..10 {
            for n in 0..4 {
                let t = clocks.get(n);
                let done = c.transfer(n, n, 100.0, t);
                clocks.set(n, done);
            }
        }
        // 4000 bytes through 100 B/s fabric ≥ 40s.
        assert!(clocks.makespan() >= 40.0, "makespan {}", clocks.makespan());
    }
}
