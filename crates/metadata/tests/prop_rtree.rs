//! Property test: R-tree range queries agree with a brute-force scan.

use orv_metadata::{RTree, Rect};
use proptest::prelude::*;

fn rect2(max: f64) -> impl Strategy<Value = Rect> {
    (0.0..max, 0.0..max, 0.0..(max / 4.0), 0.0..(max / 4.0))
        .prop_map(|(x, y, w, h)| Rect::new(vec![x, y], vec![x + w, y + h]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_matches_brute_force(
        rects in proptest::collection::vec(rect2(100.0), 0..200),
        query in rect2(100.0),
    ) {
        let mut tree = RTree::new(2);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(r.clone(), i);
        }
        prop_assert_eq!(tree.len(), rects.len());

        let mut got = tree.query(&query);
        got.sort_unstable();
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn for_each_visits_exactly_inserted(
        rects in proptest::collection::vec(rect2(50.0), 1..100),
    ) {
        let mut tree = RTree::new(2);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(r.clone(), i);
        }
        let mut seen = Vec::new();
        tree.for_each(|_, &v| seen.push(v));
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..rects.len()).collect::<Vec<_>>());
    }

    #[test]
    fn height_is_logarithmic(
        n in 1usize..400,
    ) {
        let mut tree = RTree::new(2);
        for i in 0..n {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert(Rect::new(vec![x, y], vec![x + 1.0, y + 1.0]), i);
        }
        // With M=8, height ≤ ceil(log_3(n)) + 1 comfortably; assert a loose
        // but meaningful bound to catch degenerate linear chains.
        let bound = ((n as f64).ln() / 3.0f64.ln()).ceil() as usize + 2;
        prop_assert!(tree.height() <= bound, "height {} > bound {bound} for n={n}", tree.height());
    }
}
