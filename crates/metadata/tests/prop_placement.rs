//! Property tests for rendezvous placement: replica-count and
//! distinctness invariants, determinism, and the minimal-movement
//! guarantee when a shard joins.

use orv_metadata::Placement;
use orv_types::{ChunkId, SubTableId, TableId};
use proptest::prelude::*;

fn id(table: u32, chunk: u32) -> SubTableId {
    SubTableId {
        table: TableId(table),
        chunk: ChunkId(chunk),
    }
}

/// `(shards, replication)` with `1 <= replication <= shards <= 9`.
fn topology() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=9).prop_flat_map(|n| (Just(n), 1usize..=n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn owners_are_exactly_r_distinct_shards(
        (shards, replication) in topology(),
        seed in any::<u64>(),
        table in 0u32..4,
        chunk in 0u32..512,
    ) {
        let p = Placement::new(shards, replication, seed).unwrap();
        let owners = p.owners(id(table, chunk));
        prop_assert_eq!(owners.len(), replication);
        let mut distinct = owners.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), replication, "owners must be distinct");
        for &s in &owners {
            prop_assert!(s < shards);
            prop_assert!(p.owns(s, id(table, chunk)));
        }
        prop_assert_eq!(p.primary(id(table, chunk)), owners[0]);
        prop_assert!(!p.owns(shards, id(table, chunk)));
    }

    #[test]
    fn assignment_is_a_pure_function_of_seed_and_topology(
        (shards, replication) in topology(),
        seed in any::<u64>(),
        chunk in 0u32..512,
    ) {
        let a = Placement::new(shards, replication, seed).unwrap();
        let b = Placement::new(shards, replication, seed).unwrap();
        prop_assert_eq!(a.owners(id(0, chunk)), b.owners(id(0, chunk)));
    }

    #[test]
    fn adding_a_shard_moves_few_owner_sets(
        shards in 3usize..=8,
        seed in any::<u64>(),
    ) {
        // Rendezvous hashing: a chunk's owner set changes when growing
        // N -> N+1 only if the new shard scores into the top R, which
        // happens with probability R/(N+1) per chunk. Assert the moved
        // fraction stays near that — far below the ~100% a mod-N scheme
        // would reshuffle.
        let replication = 2usize.min(shards);
        const CHUNKS: u32 = 240;
        let before = Placement::new(shards, replication, seed).unwrap();
        let after = Placement::new(shards + 1, replication, seed).unwrap();
        let moved = (0..CHUNKS)
            .filter(|&c| {
                let mut a = before.owners(id(0, c));
                let mut b = after.owners(id(0, c));
                a.sort_unstable();
                b.sort_unstable();
                a != b
            })
            .count();
        let expected = CHUNKS as f64 * replication as f64 / (shards + 1) as f64;
        let bound = (expected * 2.5 + 10.0).ceil() as usize;
        prop_assert!(
            moved <= bound,
            "moved {moved} of {CHUNKS} owner sets going {shards}->{} shards \
             (expected ~{expected:.0}, bound {bound})",
            shards + 1
        );
        // Surviving shards keep their copies of unmoved chunks: an
        // unmoved owner set never references the new shard.
        for c in 0..CHUNKS {
            let mut a = before.owners(id(0, c));
            let mut b = after.owners(id(0, c));
            a.sort_unstable();
            b.sort_unstable();
            if a == b {
                prop_assert!(!b.contains(&shards));
            }
        }
    }
}
