//! The shared, thread-safe MetaData service.
//!
//! All framework services (BDS instances, QES instances, the planner) hold
//! an `Arc<MetadataService>`. Reads vastly outnumber writes once a dataset
//! is registered, so the catalog sits behind a `parking_lot::RwLock`.
//! Besides the chunk catalog, the service stores *persistent artifacts* —
//! notably precomputed page-level join indices ("The page-index can be
//! precomputed for common join attributes").

use crate::catalog::Catalog;
use orv_chunk::ChunkMeta;
use orv_types::{BoundingBox, ChunkId, Error, Result, Schema, SubTableId, TableId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A stored page-level join index.
type JoinIndex = Arc<Vec<(SubTableId, SubTableId)>>;

/// Lock-free usage counters for the service; exported to an
/// observability registry via [`MetadataService::publish_into`].
#[derive(Default)]
struct MdCounters {
    /// R-tree range resolutions ([`MetadataService::find_chunks`]).
    rtree_probes: AtomicU64,
    /// Catalog reads (schema/chunk/table lookups).
    catalog_lookups: AtomicU64,
    /// Precomputed join-index fetches that hit.
    join_index_hits: AtomicU64,
    /// Precomputed join-index fetches that missed.
    join_index_misses: AtomicU64,
}

/// Thread-safe MetaData service.
#[derive(Default)]
pub struct MetadataService {
    catalog: RwLock<Catalog>,
    /// Precomputed page-level join indices, keyed by
    /// `(left table, right table, join attrs)`.
    join_indices: RwLock<HashMap<String, JoinIndex>>,
    /// Layout-description sources keyed by extractor name, with their
    /// coordinate attribute names — enough to regenerate every extractor
    /// when a persisted deployment is reopened.
    layouts: RwLock<HashMap<String, (String, Vec<String>)>>,
    counters: MdCounters,
}

impl MetadataService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table; returns its id.
    pub fn register_table(&self, name: impl Into<String>, schema: Arc<Schema>) -> Result<TableId> {
        self.catalog.write().register_table(name, schema)
    }

    /// Register a chunk.
    pub fn register_chunk(&self, meta: ChunkMeta) -> Result<()> {
        self.catalog.write().register_chunk(meta)
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.counters
            .catalog_lookups
            .fetch_add(1, Ordering::Relaxed);
        Ok(self.catalog.read().table_by_name(name)?.id)
    }

    /// Table name by id.
    pub fn table_name(&self, id: TableId) -> Result<String> {
        self.counters
            .catalog_lookups
            .fetch_add(1, Ordering::Relaxed);
        Ok(self.catalog.read().table(id)?.name.clone())
    }

    /// Schema of a table.
    pub fn schema(&self, id: TableId) -> Result<Arc<Schema>> {
        self.counters
            .catalog_lookups
            .fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(&self.catalog.read().table(id)?.schema))
    }

    /// Metadata of one chunk (cloned out of the catalog).
    pub fn chunk_meta(&self, id: SubTableId) -> Result<ChunkMeta> {
        self.counters
            .catalog_lookups
            .fetch_add(1, Ordering::Relaxed);
        Ok(self
            .catalog
            .read()
            .table(id.table)?
            .chunk(id.chunk)?
            .clone())
    }

    /// Ids of all chunks of `table` overlapping `range` — the "range part
    /// of the query" resolution, via the R-tree.
    pub fn find_chunks(&self, table: TableId, range: &BoundingBox) -> Result<Vec<ChunkId>> {
        self.counters.rtree_probes.fetch_add(1, Ordering::Relaxed);
        Ok(self.catalog.read().table(table)?.find_chunks(range))
    }

    /// All chunk ids of a table.
    pub fn all_chunks(&self, table: TableId) -> Result<Vec<ChunkId>> {
        Ok(self
            .catalog
            .read()
            .table(table)?
            .chunks()
            .iter()
            .map(|m| m.chunk)
            .collect())
    }

    /// Total records of a table.
    pub fn total_records(&self, table: TableId) -> Result<u64> {
        Ok(self.catalog.read().table(table)?.total_records())
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.catalog.read().num_tables()
    }

    /// Names of all registered tables, in id order.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .read()
            .tables()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Export all stored join indices (for persistence).
    pub(crate) fn export_join_indices(&self) -> Vec<(String, Vec<(SubTableId, SubTableId)>)> {
        self.join_indices
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.as_ref().clone()))
            .collect()
    }

    /// Import previously exported join indices (for persistence).
    pub(crate) fn import_join_indices(
        &self,
        indices: Vec<(String, Vec<(SubTableId, SubTableId)>)>,
    ) {
        let mut map = self.join_indices.write();
        for (k, v) in indices {
            map.insert(k, Arc::new(v));
        }
    }

    /// Store the DSL source of a layout (and its coordinate attribute
    /// names) so extractors can be regenerated after a restart.
    pub fn register_layout(&self, name: impl Into<String>, source: String, coords: Vec<String>) {
        self.layouts.write().insert(name.into(), (source, coords));
    }

    /// All stored layout sources as `(name, source, coords)`.
    pub fn layouts(&self) -> Vec<(String, String, Vec<String>)> {
        self.layouts
            .read()
            .iter()
            .map(|(n, (s, c))| (n.clone(), s.clone(), c.clone()))
            .collect()
    }

    /// Run `f` against the chunk metadata of a table without cloning.
    pub fn with_chunks<R>(&self, table: TableId, f: impl FnOnce(&[ChunkMeta]) -> R) -> Result<R> {
        let cat = self.catalog.read();
        Ok(f(cat.table(table)?.chunks()))
    }

    /// Store a precomputed page-level join index.
    pub fn put_join_index(
        &self,
        left: TableId,
        right: TableId,
        attrs: &[&str],
        pairs: Vec<(SubTableId, SubTableId)>,
    ) {
        let key = join_index_key(left, right, attrs);
        self.join_indices.write().insert(key, Arc::new(pairs));
    }

    /// Fetch a precomputed page-level join index, if one exists.
    pub fn get_join_index(
        &self,
        left: TableId,
        right: TableId,
        attrs: &[&str],
    ) -> Option<Arc<Vec<(SubTableId, SubTableId)>>> {
        let found = self
            .join_indices
            .read()
            .get(&join_index_key(left, right, attrs))
            .cloned();
        let counter = match found {
            Some(_) => &self.counters.join_index_hits,
            None => &self.counters.join_index_misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Publish the service's usage counters into an observability
    /// registry under `md/…`. Counters add, so repeated publishes (or
    /// several services sharing one registry) merge uniformly.
    pub fn publish_into(&self, metrics: &orv_obs::MetricsRegistry) {
        let c = |name: &str, v: &AtomicU64| {
            metrics
                .counter(&format!("md/{name}"))
                .add(v.swap(0, Ordering::Relaxed));
        };
        c("rtree_probes", &self.counters.rtree_probes);
        c("catalog_lookups", &self.counters.catalog_lookups);
        c("join_index_hits", &self.counters.join_index_hits);
        c("join_index_misses", &self.counters.join_index_misses);
    }

    /// Materialize a replicated shard placement over every chunk in the
    /// catalog: the federation router's routing table.
    pub fn build_placement(
        &self,
        shards: usize,
        replication: usize,
        seed: u64,
    ) -> Result<(crate::Placement, crate::PlacementMap)> {
        let placement = crate::Placement::new(shards, replication, seed)?;
        let map = crate::PlacementMap::build(&placement, self)?;
        Ok((placement, map))
    }

    /// Fetch a join index or fail with a descriptive error.
    pub fn require_join_index(
        &self,
        left: TableId,
        right: TableId,
        attrs: &[&str],
    ) -> Result<Arc<Vec<(SubTableId, SubTableId)>>> {
        self.get_join_index(left, right, attrs).ok_or_else(|| {
            Error::not_found(format!("join index for {left} ⋈ {right} on {attrs:?}"))
        })
    }
}

fn join_index_key(left: TableId, right: TableId, attrs: &[&str]) -> String {
    format!("{left}⋈{right}:{}", attrs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_chunk::ChunkLocation;
    use orv_types::{Interval, NodeId};

    fn service_with_table() -> (Arc<MetadataService>, TableId) {
        let svc = Arc::new(MetadataService::new());
        let schema = Arc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let t = svc.register_table("T1", schema).unwrap();
        for i in 0..4u32 {
            svc.register_chunk(ChunkMeta {
                table: t,
                chunk: ChunkId(i),
                node: NodeId(i % 2),
                location: ChunkLocation {
                    file: "t1.dat".into(),
                    offset: (i * 64) as u64,
                    len: 64,
                },
                attributes: vec!["x".into(), "p".into()],
                extractors: vec!["e".into()],
                bbox: BoundingBox::from_dims([(
                    "x",
                    Interval::new(i as f64 * 10.0, i as f64 * 10.0 + 9.0),
                )]),
                num_records: 8,
                checksum: None,
            })
            .unwrap();
        }
        (svc, t)
    }

    #[test]
    fn basic_lookups() {
        let (svc, t) = service_with_table();
        assert_eq!(svc.table_id("T1").unwrap(), t);
        assert_eq!(svc.table_name(t).unwrap(), "T1");
        assert_eq!(svc.schema(t).unwrap().arity(), 2);
        assert_eq!(svc.total_records(t).unwrap(), 32);
        assert_eq!(svc.all_chunks(t).unwrap().len(), 4);
        let meta = svc.chunk_meta(SubTableId::new(t.0, 2u32)).unwrap();
        assert_eq!(meta.location.offset, 128);
        assert_eq!(svc.num_tables(), 1);
    }

    #[test]
    fn range_resolution() {
        let (svc, t) = service_with_table();
        let q = BoundingBox::from_dims([("x", Interval::new(12.0, 25.0))]);
        assert_eq!(
            svc.find_chunks(t, &q).unwrap(),
            vec![ChunkId(1), ChunkId(2)]
        );
    }

    #[test]
    fn join_index_store() {
        let (svc, t) = service_with_table();
        assert!(svc.get_join_index(t, t, &["x"]).is_none());
        assert!(svc.require_join_index(t, t, &["x"]).is_err());
        let pairs = vec![(SubTableId::new(0u32, 0u32), SubTableId::new(1u32, 0u32))];
        svc.put_join_index(t, t, &["x"], pairs.clone());
        assert_eq!(*svc.get_join_index(t, t, &["x"]).unwrap(), pairs);
        // Different attrs → different key.
        assert!(svc.get_join_index(t, t, &["x", "y"]).is_none());
    }

    #[test]
    fn usage_counters_published() {
        let (svc, t) = service_with_table();
        let q = BoundingBox::from_dims([("x", Interval::new(0.0, 5.0))]);
        svc.find_chunks(t, &q).unwrap();
        svc.find_chunks(t, &q).unwrap();
        svc.schema(t).unwrap();
        assert!(svc.get_join_index(t, t, &["x"]).is_none());
        svc.put_join_index(t, t, &["x"], Vec::new());
        assert!(svc.get_join_index(t, t, &["x"]).is_some());
        let metrics = orv_obs::MetricsRegistry::new();
        svc.publish_into(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counters["md/rtree_probes"], 2);
        assert_eq!(snap.counters["md/catalog_lookups"], 1);
        assert_eq!(snap.counters["md/join_index_hits"], 1);
        assert_eq!(snap.counters["md/join_index_misses"], 1);
        // publish_into drains: a second publish adds nothing.
        svc.publish_into(&metrics);
        assert_eq!(metrics.snapshot().counters["md/rtree_probes"], 2);
    }

    #[test]
    fn concurrent_readers() {
        let (svc, t) = service_with_table();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let q = BoundingBox::from_dims([(
                        "x",
                        Interval::new((i % 40) as f64, (i % 40) as f64 + 1.0),
                    )]);
                    let _ = svc.find_chunks(t, &q).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
