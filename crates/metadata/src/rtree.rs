//! A from-scratch R-tree (Guttman 1984) over n-dimensional rectangles.
//!
//! The MetaData service indexes chunk bounding boxes with this structure so
//! "the range part of the query \[can\] retrieve ids of all matching
//! sub-tables ... efficiently using index structures such as R-Trees".
//!
//! Implementation notes:
//! * fixed dimensionality per tree, checked on insert;
//! * quadratic split (Guttman's medium-cost heuristic);
//! * `M = 8` maximum entries per node, `m = 3` minimum on split;
//! * closed rectangles; overlap shares at least a face point.

use orv_types::Interval;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 8;
/// Minimum entries in each half of a split.
const MIN_ENTRIES: usize = 3;

/// An axis-aligned rectangle in `dim` dimensions.
#[derive(Clone, PartialEq, Debug)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Build from bounds; `lo.len()` is the dimensionality.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "rect bounds must agree in dimension");
        Rect { lo, hi }
    }

    /// Build from per-dimension intervals.
    pub fn from_intervals(ivs: &[Interval]) -> Self {
        Rect {
            lo: ivs.iter().map(|iv| iv.lo).collect(),
            hi: ivs.iter().map(|iv| iv.hi).collect(),
        }
    }

    /// A point rectangle.
    pub fn point(p: Vec<f64>) -> Self {
        Rect {
            lo: p.clone(),
            hi: p,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Closed-rectangle overlap test.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// True if `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= blo && bhi <= ahi)
    }

    /// Hyper-volume (degenerate boxes have volume 0).
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Volume increase needed to also cover `other`.
    fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }
}

/// Replacement halves returned by a node split.
type SplitHalves<T> = Option<(Rect, Box<Node<T>>, Rect, Box<Node<T>>)>;

enum Node<T> {
    Leaf(Vec<(Rect, T)>),
    Inner(Vec<(Rect, Box<Node<T>>)>),
}

/// An R-tree mapping rectangles to payloads `T`.
pub struct RTree<T> {
    dim: usize,
    root: Node<T>,
    len: usize,
}

impl<T: Clone> RTree<T> {
    /// An empty tree over `dim`-dimensional rectangles.
    pub fn new(dim: usize) -> Self {
        RTree {
            dim,
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Insert `rect → value`. Panics if the dimension differs from the
    /// tree's.
    pub fn insert(&mut self, rect: Rect, value: T) {
        assert_eq!(rect.dim(), self.dim, "rect dimension mismatch");
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = insert_rec(&mut self.root, rect, value) {
            // Root split: grow the tree by one level.
            let old = std::mem::replace(&mut self.root, Node::Inner(Vec::new()));
            drop(old); // the split halves fully replace the old root
            self.root = Node::Inner(vec![(r1, n1), (r2, n2)]);
        }
    }

    /// All values whose rectangles overlap `query`.
    pub fn query(&self, query: &Rect) -> Vec<T> {
        assert_eq!(query.dim(), self.dim, "query dimension mismatch");
        let mut out = Vec::new();
        search(&self.root, query, &mut out);
        out
    }

    /// Visit every `(rect, value)` pair.
    pub fn for_each(&self, mut f: impl FnMut(&Rect, &T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&Rect, &T)) {
            match node {
                Node::Leaf(es) => {
                    for (r, v) in es {
                        f(r, v);
                    }
                }
                Node::Inner(es) => {
                    for (_, c) in es {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(es) = node {
            h += 1;
            node = &es[0].1;
        }
        h
    }
}

fn search<T: Clone>(node: &Node<T>, query: &Rect, out: &mut Vec<T>) {
    match node {
        Node::Leaf(es) => {
            for (r, v) in es {
                if r.overlaps(query) {
                    out.push(v.clone());
                }
            }
        }
        Node::Inner(es) => {
            for (r, child) in es {
                if r.overlaps(query) {
                    search(child, query, out);
                }
            }
        }
    }
}

/// Insert into `node`; on overflow, split and return the two replacement
/// halves `(rect1, node1, rect2, node2)`.
fn insert_rec<T>(node: &mut Node<T>, rect: Rect, value: T) -> SplitHalves<T> {
    match node {
        Node::Leaf(entries) => {
            entries.push((rect, value));
            if entries.len() > MAX_ENTRIES {
                let (g1, g2) = quadratic_split(std::mem::take(entries));
                let r1 = group_rect(&g1);
                let r2 = group_rect(&g2);
                Some((r1, Box::new(Node::Leaf(g1)), r2, Box::new(Node::Leaf(g2))))
            } else {
                None
            }
        }
        Node::Inner(entries) => {
            // ChooseLeaf: minimal enlargement, ties by smaller volume.
            let best = (0..entries.len())
                .min_by(|&a, &b| {
                    let ea = entries[a].0.enlargement(&rect);
                    let eb = entries[b].0.enlargement(&rect);
                    ea.total_cmp(&eb)
                        .then_with(|| entries[a].0.volume().total_cmp(&entries[b].0.volume()))
                })
                // orv-lint: allow(L001) -- inner nodes hold >= 1 entry by construction: splits emit two children, merges collapse empty inners
                .expect("inner node has children");
            entries[best].0 = entries[best].0.union(&rect);
            if let Some((r1, n1, r2, n2)) = insert_rec(&mut entries[best].1, rect, value) {
                entries[best] = (r1, n1);
                entries.push((r2, n2));
                if entries.len() > MAX_ENTRIES {
                    let (g1, g2) = quadratic_split(std::mem::take(entries));
                    let r1 = group_rect_nodes(&g1);
                    let r2 = group_rect_nodes(&g2);
                    return Some((r1, Box::new(Node::Inner(g1)), r2, Box::new(Node::Inner(g2))));
                }
            }
            None
        }
    }
}

fn group_rect<T>(es: &[(Rect, T)]) -> Rect {
    es.iter()
        .skip(1)
        .fold(es[0].0.clone(), |acc, (r, _)| acc.union(r))
}

fn group_rect_nodes<T>(es: &[(Rect, Box<Node<T>>)]) -> Rect {
    es.iter()
        .skip(1)
        .fold(es[0].0.clone(), |acc, (r, _)| acc.union(r))
}

/// Guttman's quadratic split over any entry type carrying a Rect first.
type Groups<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

fn quadratic_split<E>(mut entries: Vec<(Rect, E)>) -> Groups<E> {
    // PickSeeds: the pair wasting the most volume if grouped.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).volume()
                - entries[i].0.volume()
                - entries[j].0.volume();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove higher index first to keep the lower valid.
    let e2 = entries.swap_remove(s2.max(s1));
    let e1 = entries.swap_remove(s2.min(s1));
    let mut r1 = e1.0.clone();
    let mut r2 = e2.0.clone();
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];

    while let Some(entry) = entries.pop() {
        let remaining = entries.len() + 1;
        // Honor the minimum fill requirement.
        if g1.len() + remaining <= MIN_ENTRIES {
            r1 = r1.union(&entry.0);
            g1.push(entry);
            continue;
        }
        if g2.len() + remaining <= MIN_ENTRIES {
            r2 = r2.union(&entry.0);
            g2.push(entry);
            continue;
        }
        let d1 = r1.enlargement(&entry.0);
        let d2 = r2.enlargement(&entry.0);
        if d1 < d2 || (d1 == d2 && g1.len() <= g2.len()) {
            r1 = r1.union(&entry.0);
            g1.push(entry);
        } else {
            r2 = r2.union(&entry.0);
            g2.push(entry);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(x: f64, y: f64) -> Rect {
        Rect::new(vec![x, y], vec![x + 1.0, y + 1.0])
    }

    #[test]
    fn rect_algebra() {
        let a = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Rect::new(vec![1.0, 1.0], vec![3.0, 4.0]);
        assert!(a.overlaps(&b));
        assert!(!a.contains(&b));
        assert_eq!(a.union(&b), Rect::new(vec![0.0, 0.0], vec![3.0, 4.0]));
        assert_eq!(a.volume(), 4.0);
        assert_eq!(Rect::point(vec![1.0]).volume(), 0.0);
        // Touching rects overlap (closed).
        let c = Rect::new(vec![2.0, 0.0], vec![3.0, 1.0]);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn empty_tree_queries_empty() {
        let t: RTree<u32> = RTree::new(2);
        assert!(t.is_empty());
        assert!(t
            .query(&Rect::new(vec![0.0, 0.0], vec![9.0, 9.0]))
            .is_empty());
    }

    #[test]
    fn grid_insert_and_query() {
        let mut t = RTree::new(2);
        for x in 0..10 {
            for y in 0..10 {
                t.insert(cell(x as f64 * 2.0, y as f64 * 2.0), (x, y));
            }
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1, "tree must have split");
        // Query covering exactly cells (0..=1, 0..=1) origins 0,2.
        let q = Rect::new(vec![0.0, 0.0], vec![3.0, 3.0]);
        let mut hits = t.query(&q);
        hits.sort();
        assert_eq!(hits, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        // Query off the grid.
        let far = Rect::new(vec![100.0, 100.0], vec![101.0, 101.0]);
        assert!(t.query(&far).is_empty());
    }

    #[test]
    fn for_each_visits_everything() {
        let mut t = RTree::new(1);
        for i in 0..50 {
            t.insert(Rect::new(vec![i as f64], vec![i as f64 + 0.5]), i);
        }
        let mut seen = Vec::new();
        t.for_each(|_, &v| seen.push(v));
        seen.sort();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_rects_all_returned() {
        let mut t = RTree::new(2);
        for i in 0..20 {
            t.insert(cell(0.0, 0.0), i);
        }
        let hits = t.query(&cell(0.5, 0.5));
        assert_eq!(hits.len(), 20);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut t: RTree<u8> = RTree::new(2);
        t.insert(Rect::point(vec![0.0]), 0);
    }
}
