//! Replicated shard placement for federated serving.
//!
//! Assigns every chunk (as a [`SubTableId`]) to `R` of `N` engine shards
//! using rendezvous (highest-random-weight) hashing: each `(chunk, shard)`
//! pair gets a deterministic score from a seeded splitmix64 draw and the
//! chunk is owned by the `R` highest-scoring shards. Rendezvous hashing
//! gives the two properties the federation router needs:
//!
//! * **Distinct replicas** — the top-`R` set of `N` distinct shards can
//!   never repeat a shard, so losing one shard never loses both copies.
//! * **Minimal movement** — growing `N → N+1` only re-homes chunks for
//!   which the *new* shard enters some chunk's top-`R` set, which is
//!   ~`R/(N+1)` of all (chunk, rank) slots. `tests/prop_placement.rs`
//!   pins this down.
//!
//! The assignment is pure: `owners` is a function of `(seed, chunk,
//! shard count)` only, so every router, test and oracle computes the
//! identical map with no coordination state to corrupt.

use crate::MetadataService;
use orv_types::{Error, Result, SubTableId};
use std::collections::BTreeMap;

/// splitmix64 finalizer: the workspace-standard cheap stateless PRNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Pure rendezvous-hash placement: which shards own which chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    shards: usize,
    replication: usize,
    seed: u64,
}

impl Placement {
    /// A placement over `shards` engine shards with `replication` copies
    /// of every chunk. Requires `1 <= replication <= shards`.
    pub fn new(shards: usize, replication: usize, seed: u64) -> Result<Self> {
        if shards == 0 {
            return Err(Error::Config("placement needs at least one shard".into()));
        }
        if replication == 0 || replication > shards {
            return Err(Error::Config(format!(
                "replication {replication} out of range for {shards} shards"
            )));
        }
        Ok(Placement {
            shards,
            replication,
            seed,
        })
    }

    /// Number of engine shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Copies of every chunk.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The rendezvous score of one `(chunk, shard)` pair.
    fn score(&self, id: SubTableId, shard: usize) -> u64 {
        let key = splitmix64(self.seed)
            ^ splitmix64((id.table.0 as u64) << 32 | id.chunk.0 as u64)
            ^ splitmix64(0x5348_5244 ^ shard as u64); // "SHRD" salt
        splitmix64(key)
    }

    /// The `replication` shards owning `id`, best score first. The first
    /// entry is the chunk's *primary*; the rest are its replicas. All
    /// entries are distinct by construction.
    pub fn owners(&self, id: SubTableId) -> Vec<usize> {
        let mut scored: Vec<(u64, usize)> =
            (0..self.shards).map(|s| (self.score(id, s), s)).collect();
        // Descending score; shard index breaks (astronomically unlikely)
        // ties so the order is total and deterministic.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(self.replication)
            .map(|(_, s)| s)
            .collect()
    }

    /// The highest-ranked owner of `id`.
    pub fn primary(&self, id: SubTableId) -> usize {
        self.owners(id)[0]
    }

    /// Whether `shard` holds a copy of `id`.
    pub fn owns(&self, shard: usize, id: SubTableId) -> bool {
        self.owners(id).contains(&shard)
    }
}

/// A materialized placement: every shard's chunk set over one catalog.
///
/// This is the routing table the federation README/DESIGN talk about —
/// derived entirely from [`Placement::owners`], so it can be rebuilt from
/// the catalog at any time and never disagrees with per-chunk routing.
#[derive(Debug, Clone, Default)]
pub struct PlacementMap {
    by_shard: Vec<Vec<SubTableId>>,
}

impl PlacementMap {
    /// Materialize `placement` over every chunk of every table in the
    /// catalog behind `md`.
    pub fn build(placement: &Placement, md: &MetadataService) -> Result<Self> {
        let mut by_shard = vec![Vec::new(); placement.shards()];
        // BTreeMap iteration keeps shard chunk lists in (table, chunk)
        // order, so the map is reproducible byte-for-byte.
        let mut all = BTreeMap::new();
        for name in md.table_names() {
            let table = md.table_id(&name)?;
            for chunk in md.all_chunks(table)? {
                all.insert(SubTableId { table, chunk }, ());
            }
        }
        for (&id, ()) in &all {
            for shard in placement.owners(id) {
                by_shard[shard].push(id);
            }
        }
        Ok(PlacementMap { by_shard })
    }

    /// The chunks shard `s` holds, in `(table, chunk)` order.
    pub fn shard_chunks(&self, s: usize) -> &[SubTableId] {
        &self.by_shard[s]
    }

    /// Number of shards in the map.
    pub fn shards(&self) -> usize {
        self.by_shard.len()
    }

    /// Total chunk *copies* across all shards (`chunks × replication`).
    pub fn total_copies(&self) -> usize {
        self.by_shard.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<SubTableId> {
        (0..n).map(|c| SubTableId::new(0u32, c)).collect()
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(Placement::new(0, 1, 7).is_err());
        assert!(Placement::new(3, 0, 7).is_err());
        assert!(Placement::new(3, 4, 7).is_err());
        assert!(Placement::new(3, 3, 7).is_ok());
    }

    #[test]
    fn owners_are_distinct_and_exactly_r() {
        let p = Placement::new(5, 2, 42).unwrap();
        for id in ids(64) {
            let o = p.owners(id);
            assert_eq!(o.len(), 2);
            assert_ne!(o[0], o[1], "replicas of {id} collided");
            assert!(o.iter().all(|&s| s < 5));
            assert_eq!(p.primary(id), o[0]);
            assert!(p.owns(o[0], id) && p.owns(o[1], id));
        }
    }

    #[test]
    fn assignment_is_deterministic_and_seed_sensitive() {
        let a = Placement::new(4, 2, 1).unwrap();
        let b = Placement::new(4, 2, 1).unwrap();
        let c = Placement::new(4, 2, 2).unwrap();
        let sample = ids(128);
        assert!(sample.iter().all(|&id| a.owners(id) == b.owners(id)));
        assert!(
            sample.iter().any(|&id| a.owners(id) != c.owners(id)),
            "different seeds produced identical placements"
        );
    }

    #[test]
    fn load_spreads_over_shards() {
        let p = Placement::new(4, 2, 9).unwrap();
        let mut load = [0usize; 4];
        for id in ids(256) {
            for s in p.owners(id) {
                load[s] += 1;
            }
        }
        // 512 copies over 4 shards: every shard should get a real share.
        for (s, &l) in load.iter().enumerate() {
            assert!(l > 64, "shard {s} underloaded: {l}/512 copies");
        }
    }

    #[test]
    fn map_materializes_owners_consistently() {
        use orv_chunk::{ChunkLocation, ChunkMeta};
        use orv_types::{BoundingBox, ChunkId, Interval, NodeId, Schema};
        use std::sync::Arc;

        let md = MetadataService::new();
        let schema = Arc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let t = md.register_table("t1", schema).unwrap();
        for c in 0..12u32 {
            md.register_chunk(ChunkMeta {
                table: t,
                chunk: ChunkId(c),
                node: NodeId(0),
                location: ChunkLocation {
                    file: "t1.dat".into(),
                    offset: (c * 64) as u64,
                    len: 64,
                },
                attributes: vec!["x".into(), "p".into()],
                extractors: vec!["e".into()],
                bbox: BoundingBox::from_dims([("x", Interval::new(c as f64, c as f64 + 1.0))]),
                num_records: 8,
                checksum: None,
            })
            .unwrap();
        }
        let p = Placement::new(3, 2, 5).unwrap();
        let map = PlacementMap::build(&p, &md).unwrap();
        assert_eq!(map.shards(), 3);
        assert_eq!(map.total_copies(), 24);
        for s in 0..3 {
            for &id in map.shard_chunks(s) {
                assert!(
                    p.owns(s, id),
                    "map lists {id} on shard {s} but owners disagree"
                );
            }
            let mut sorted = map.shard_chunks(s).to_vec();
            sorted.sort();
            assert_eq!(sorted, map.shard_chunks(s), "shard {s} list unsorted");
        }
    }
}
