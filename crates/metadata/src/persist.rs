//! Crash-safe catalog persistence.
//!
//! "The MetaData Service stores information about chunks and may also be
//! used by other services to store persistent information." This module
//! snapshots a [`MetadataService`] — tables, chunk metadata and the
//! precomputed page-level join indices — to a JSON file and restores it,
//! rebuilding the R-trees on load. A restored deployment can answer
//! queries without re-scanning any data file.
//!
//! The catalog is the one artifact whose loss strands every dataset on
//! disk, so writes are crash-safe and reads are verified:
//!
//! * **Atomic replace** — the snapshot is written to a temp file in the
//!   same directory, fsynced, then renamed over the target. A crash
//!   mid-save leaves the previous catalog intact, never a half-written
//!   one.
//! * **Checksummed** — the file opens with a `ORVCAT1 <crc32c>` header
//!   over the JSON payload; [`MetadataService::load_json`] verifies it
//!   and reports damage as a typed [`Error::Integrity`] instead of a
//!   confusing parse error (or worse, a silently plausible catalog).
//!
//! The JSON itself is written and parsed with the workspace's own
//! dependency-free [`JsonValue`], same as the observability exports.

use crate::service::MetadataService;
use orv_chunk::{ChunkLocation, ChunkMeta};
use orv_cluster::checksum;
use orv_obs::{obj, JsonValue};
use orv_types::{
    AttrRole, Attribute, BoundingBox, ChunkId, DataType, Error, Interval, NodeId, Result, Schema,
    SubTableId, TableId,
};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// On-disk snapshot of the whole service.
pub struct CatalogSnapshot {
    /// Snapshot format version.
    pub version: u32,
    tables: Vec<TableSnapshot>,
    join_indices: Vec<(String, Vec<(SubTableId, SubTableId)>)>,
    /// Layout sources: `(extractor name, DSL source, coordinate attrs)`.
    layouts: Vec<(String, String, Vec<String>)>,
}

struct TableSnapshot {
    name: String,
    schema: Schema,
    chunks: Vec<ChunkMeta>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Header magic of the catalog file; the hex CRC32C of the payload
/// follows on the same line.
pub const CATALOG_MAGIC: &str = "ORVCAT1";

fn arr(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
    JsonValue::Array(items.into_iter().collect())
}

fn req_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue]> {
    v.req(key)?
        .as_array()
        .ok_or_else(|| Error::Format(format!("catalog field `{key}` is not an array")))
}

fn req_strings(v: &JsonValue, key: &str) -> Result<Vec<String>> {
    req_array(v, key)?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| Error::Format(format!("catalog field `{key}` holds a non-string")))
        })
        .collect()
}

/// Bounds can be infinite; `JsonValue` writes non-finite numbers as
/// `null`, so spell them out instead.
fn bound_to_json(x: f64) -> JsonValue {
    if x.is_finite() {
        x.into()
    } else if x.is_nan() {
        "nan".into()
    } else if x > 0.0 {
        "inf".into()
    } else {
        "-inf".into()
    }
}

fn bound_from_json(v: &JsonValue) -> Result<f64> {
    match v {
        JsonValue::Number(n) => Ok(*n),
        JsonValue::String(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(Error::Format(format!("bad interval bound `{other}`"))),
        },
        other => Err(Error::Format(format!("bad interval bound `{other}`"))),
    }
}

fn schema_to_json(schema: &Schema) -> JsonValue {
    arr(schema.attrs().iter().map(|a| {
        obj([
            ("name", a.name.as_str().into()),
            ("dtype", a.dtype.name().into()),
            (
                "role",
                match a.role {
                    AttrRole::Coordinate => "coordinate".into(),
                    AttrRole::Scalar => "scalar".into(),
                },
            ),
        ])
    }))
}

fn schema_from_json(v: &JsonValue) -> Result<Schema> {
    let attrs = v
        .as_array()
        .ok_or_else(|| Error::Format("catalog schema is not an array".into()))?
        .iter()
        .map(|a| {
            let dtype_name = a.req_str("dtype")?;
            let dtype = DataType::parse(dtype_name)
                .ok_or_else(|| Error::Format(format!("unknown dtype `{dtype_name}`")))?;
            let role = match a.req_str("role")? {
                "coordinate" => AttrRole::Coordinate,
                "scalar" => AttrRole::Scalar,
                other => return Err(Error::Format(format!("unknown attr role `{other}`"))),
            };
            Ok(Attribute {
                name: a.req_str("name")?.to_string(),
                dtype,
                role,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Schema::new(attrs)
}

fn bbox_to_json(bbox: &BoundingBox) -> JsonValue {
    JsonValue::Object(
        bbox.bounded_attrs()
            .map(|(name, iv)| {
                (
                    name.to_string(),
                    arr([bound_to_json(iv.lo), bound_to_json(iv.hi)]),
                )
            })
            .collect(),
    )
}

fn bbox_from_json(v: &JsonValue) -> Result<BoundingBox> {
    let dims = v
        .as_object()
        .ok_or_else(|| Error::Format("catalog bbox is not an object".into()))?;
    let mut bbox = BoundingBox::unbounded();
    for (name, bounds) in dims {
        let pair = bounds
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| Error::Format(format!("bbox dim `{name}` is not a [lo, hi] pair")))?;
        bbox.set(
            name.clone(),
            Interval::new(bound_from_json(&pair[0])?, bound_from_json(&pair[1])?),
        );
    }
    Ok(bbox)
}

fn chunk_to_json(c: &ChunkMeta) -> JsonValue {
    obj([
        ("table", c.table.0.into()),
        ("chunk", c.chunk.0.into()),
        ("node", c.node.0.into()),
        ("file", c.location.file.as_str().into()),
        ("offset", c.location.offset.into()),
        ("len", c.location.len.into()),
        (
            "attributes",
            arr(c.attributes.iter().map(|s| s.as_str().into())),
        ),
        (
            "extractors",
            arr(c.extractors.iter().map(|s| s.as_str().into())),
        ),
        ("bbox", bbox_to_json(&c.bbox)),
        ("num_records", c.num_records.into()),
        (
            "checksum",
            c.checksum.map(JsonValue::from).unwrap_or(JsonValue::Null),
        ),
    ])
}

fn chunk_from_json(v: &JsonValue) -> Result<ChunkMeta> {
    Ok(ChunkMeta {
        table: TableId(v.req_u64("table")? as u32),
        chunk: ChunkId(v.req_u64("chunk")? as u32),
        node: NodeId(v.req_u64("node")? as u32),
        location: ChunkLocation {
            file: v.req_str("file")?.to_string(),
            offset: v.req_u64("offset")?,
            len: v.req_u64("len")?,
        },
        attributes: req_strings(v, "attributes")?,
        extractors: req_strings(v, "extractors")?,
        bbox: bbox_from_json(v.req("bbox")?)?,
        num_records: v.req_u64("num_records")?,
        checksum: match v.req("checksum")? {
            JsonValue::Null => None,
            other => Some(
                other
                    .as_u64()
                    .ok_or_else(|| Error::Format("catalog chunk checksum is not a u32".into()))?
                    as u32,
            ),
        },
    })
}

fn subtable_to_json(id: SubTableId) -> JsonValue {
    obj([("table", id.table.0.into()), ("chunk", id.chunk.0.into())])
}

fn subtable_from_json(v: &JsonValue) -> Result<SubTableId> {
    Ok(SubTableId::new(
        v.req_u64("table")? as u32,
        v.req_u64("chunk")? as u32,
    ))
}

impl CatalogSnapshot {
    /// Serialize as a JSON value (the payload of the catalog file).
    pub fn to_json_value(&self) -> JsonValue {
        obj([
            ("version", self.version.into()),
            (
                "tables",
                arr(self.tables.iter().map(|t| {
                    obj([
                        ("name", t.name.as_str().into()),
                        ("schema", schema_to_json(&t.schema)),
                        ("chunks", arr(t.chunks.iter().map(chunk_to_json))),
                    ])
                })),
            ),
            (
                "join_indices",
                arr(self.join_indices.iter().map(|(key, pairs)| {
                    obj([
                        ("key", key.as_str().into()),
                        (
                            "pairs",
                            arr(pairs
                                .iter()
                                .map(|(a, b)| arr([subtable_to_json(*a), subtable_to_json(*b)]))),
                        ),
                    ])
                })),
            ),
            (
                "layouts",
                arr(self.layouts.iter().map(|(name, source, coords)| {
                    obj([
                        ("name", name.as_str().into()),
                        ("source", source.as_str().into()),
                        ("coords", arr(coords.iter().map(|c| c.as_str().into()))),
                    ])
                })),
            ),
        ])
    }

    /// Reconstruct a snapshot from [`CatalogSnapshot::to_json_value`]
    /// output.
    pub fn from_json_value(v: &JsonValue) -> Result<Self> {
        let tables = req_array(v, "tables")?
            .iter()
            .map(|t| {
                Ok(TableSnapshot {
                    name: t.req_str("name")?.to_string(),
                    schema: schema_from_json(t.req("schema")?)?,
                    chunks: req_array(t, "chunks")?
                        .iter()
                        .map(chunk_from_json)
                        .collect::<Result<_>>()?,
                })
            })
            .collect::<Result<_>>()?;
        let join_indices = req_array(v, "join_indices")?
            .iter()
            .map(|e| {
                let pairs = req_array(e, "pairs")?
                    .iter()
                    .map(|p| {
                        let pair = p
                            .as_array()
                            .filter(|a| a.len() == 2)
                            .ok_or_else(|| Error::Format("join-index pair malformed".into()))?;
                        Ok((subtable_from_json(&pair[0])?, subtable_from_json(&pair[1])?))
                    })
                    .collect::<Result<_>>()?;
                Ok((e.req_str("key")?.to_string(), pairs))
            })
            .collect::<Result<_>>()?;
        let layouts = req_array(v, "layouts")?
            .iter()
            .map(|l| {
                Ok((
                    l.req_str("name")?.to_string(),
                    l.req_str("source")?.to_string(),
                    req_strings(l, "coords")?,
                ))
            })
            .collect::<Result<_>>()?;
        Ok(CatalogSnapshot {
            version: v.req_u64("version")? as u32,
            tables,
            join_indices,
            layouts,
        })
    }
}

impl MetadataService {
    /// Capture a snapshot of tables, chunks and join indices.
    pub fn snapshot(&self) -> Result<CatalogSnapshot> {
        let mut tables = Vec::new();
        for name in self.table_names() {
            let id = self.table_id(&name)?;
            let schema = (*self.schema(id)?).clone();
            let chunks = self.with_chunks(id, |cs| cs.to_vec())?;
            tables.push(TableSnapshot {
                name,
                schema,
                chunks,
            });
        }
        Ok(CatalogSnapshot {
            version: SNAPSHOT_VERSION,
            tables,
            join_indices: self.export_join_indices(),
            layouts: self.layouts(),
        })
    }

    /// Write a checksummed JSON snapshot to `path`, atomically.
    ///
    /// The bytes land in a temp file beside `path` (same filesystem, so
    /// the final `rename` is atomic) and are fsynced before the rename: a
    /// crash at any point leaves either the old catalog or the new one,
    /// never a torn file.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<()> {
        let snapshot = self.snapshot()?;
        let payload = snapshot.to_json_value().to_string();
        let text = format!(
            "{CATALOG_MAGIC} {:08x}\n{payload}\n",
            checksum::crc32c(payload.as_bytes())
        );
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let write = (|| -> Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if write.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        write
    }

    /// Restore a service from a snapshot (R-trees rebuilt on the fly).
    ///
    /// Table ids are reassigned in snapshot order, which preserves the
    /// original ids since registration order is id order.
    pub fn from_snapshot(snapshot: CatalogSnapshot) -> Result<Self> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(Error::Format(format!(
                "unsupported catalog snapshot version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        let svc = MetadataService::new();
        for table in snapshot.tables {
            let id = svc.register_table(table.name, Arc::new(table.schema))?;
            for chunk in table.chunks {
                if chunk.table != id {
                    return Err(Error::Format(format!(
                        "snapshot chunk {} claims table {} but was stored under {id}",
                        chunk.chunk, chunk.table
                    )));
                }
                svc.register_chunk(chunk)?;
            }
        }
        svc.import_join_indices(snapshot.join_indices);
        for (name, source, coords) in snapshot.layouts {
            svc.register_layout(name, source, coords);
        }
        Ok(svc)
    }

    /// Read a snapshot from `path`, verifying its checksum first.
    ///
    /// A bad or missing header is [`Error::Format`]; a payload whose
    /// CRC32C disagrees with the header — truncation, a flipped bit — is
    /// a typed [`Error::Integrity`] before any parsing is attempted.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let (header, payload) = text
            .split_once('\n')
            .ok_or_else(|| Error::Format("catalog file has no header line".into()))?;
        let crc_hex = header
            .strip_prefix(CATALOG_MAGIC)
            .map(str::trim)
            .ok_or_else(|| {
                Error::Format(format!(
                    "catalog header does not start with `{CATALOG_MAGIC}`"
                ))
            })?;
        let expected = u32::from_str_radix(crc_hex, 16)
            .map_err(|_| Error::Format(format!("bad catalog checksum field `{crc_hex}`")))?;
        let payload = payload.trim_end();
        checksum::verify(expected, payload.as_bytes(), "catalog snapshot")?;
        let v = JsonValue::parse(payload)
            .map_err(|e| Error::Format(format!("cannot parse catalog snapshot: {e}")))?;
        Self::from_snapshot(CatalogSnapshot::from_json_value(&v)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_err(path: &Path) -> Error {
        match MetadataService::load_json(path) {
            Err(e) => e,
            Ok(_) => panic!("load must fail"),
        }
    }

    fn populated() -> MetadataService {
        let svc = MetadataService::new();
        let schema = Arc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap());
        let t = svc.register_table("T1", schema).unwrap();
        for i in 0..6u32 {
            svc.register_chunk(ChunkMeta {
                table: t,
                chunk: ChunkId(i),
                node: NodeId(i % 2),
                location: ChunkLocation {
                    file: "t1.dat".into(),
                    offset: (i as u64) * 256,
                    len: 256,
                },
                attributes: vec!["x".into(), "y".into(), "wp".into()],
                extractors: vec!["t1_layout".into()],
                bbox: BoundingBox::from_dims([
                    ("x", Interval::new(i as f64 * 4.0, i as f64 * 4.0 + 3.0)),
                    ("y", Interval::new(0.0, 7.0)),
                ]),
                num_records: 32,
                // One checksummed chunk, the rest bare: both forms must
                // survive the round-trip.
                checksum: (i == 0).then_some(0xDEAD_BEEF),
            })
            .unwrap();
        }
        svc.put_join_index(
            t,
            t,
            &["x", "y"],
            vec![(SubTableId::new(0u32, 0u32), SubTableId::new(0u32, 1u32))],
        );
        svc
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let svc = populated();
        let restored = MetadataService::from_snapshot(svc.snapshot().unwrap()).unwrap();
        let t = restored.table_id("T1").unwrap();
        assert_eq!(t, TableId(0));
        assert_eq!(restored.total_records(t).unwrap(), 192);
        assert_eq!(restored.schema(t).unwrap().arity(), 3);
        // R-tree works after restore.
        let q = BoundingBox::from_dims([("x", Interval::new(8.0, 11.0))]);
        assert_eq!(restored.find_chunks(t, &q).unwrap(), vec![ChunkId(2)]);
        // Join index survived.
        let idx = restored.get_join_index(t, t, &["x", "y"]).unwrap();
        assert_eq!(idx.len(), 1);
        // Chunk metadata intact, including the integrity checksum.
        let meta = restored.chunk_meta(SubTableId::new(0u32, 5u32)).unwrap();
        assert_eq!(meta.location.offset, 1280);
        assert_eq!(meta.extractors, vec!["t1_layout"]);
        assert_eq!(meta.checksum, None);
        let meta0 = restored.chunk_meta(SubTableId::new(0u32, 0u32)).unwrap();
        assert_eq!(meta0.checksum, Some(0xDEAD_BEEF));
    }

    #[test]
    fn snapshot_json_value_round_trips() {
        let snap = populated().snapshot().unwrap();
        let v = snap.to_json_value();
        let back =
            CatalogSnapshot::from_json_value(&JsonValue::parse(&v.to_string()).unwrap()).unwrap();
        assert_eq!(back.to_json_value(), v);
    }

    #[test]
    fn unbounded_interval_survives_round_trip() {
        assert_eq!(
            bound_from_json(&bound_to_json(f64::INFINITY)).unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            bound_from_json(&bound_to_json(f64::NEG_INFINITY)).unwrap(),
            f64::NEG_INFINITY
        );
        assert_eq!(bound_from_json(&bound_to_json(2.5)).unwrap(), 2.5);
        assert!(bound_from_json(&bound_to_json(f64::NAN)).unwrap().is_nan());
        assert!(bound_from_json(&JsonValue::Bool(true)).is_err());
    }

    #[test]
    fn json_file_roundtrip() {
        let svc = populated();
        let path = std::env::temp_dir().join(format!("orv-catalog-{}.json", std::process::id()));
        svc.save_json(&path).unwrap();
        let restored = MetadataService::load_json(&path).unwrap();
        assert_eq!(restored.num_tables(), 1);
        assert_eq!(restored.all_chunks(TableId(0)).unwrap().len(), 6);
        // Saving again atomically replaces the previous catalog.
        restored.save_json(&path).unwrap();
        assert_eq!(MetadataService::load_json(&path).unwrap().num_tables(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("orv-cat-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        populated().save_json(&path).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["catalog.json".to_string()], "{names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_catalog_is_rejected_with_integrity_error() {
        let path = std::env::temp_dir().join(format!("orv-cat-trunc-{}.json", std::process::id()));
        populated().save_json(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_err(&path);
        assert!(matches!(err, Error::Integrity(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flipped_catalog_is_rejected_with_integrity_error() {
        let path = std::env::temp_dir().join(format!("orv-cat-flip-{}.json", std::process::id()));
        populated().save_json(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the payload (past the header).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_err(&path);
        assert!(matches!(err, Error::Integrity(_)), "{err}");
        assert!(err.to_string().contains("catalog"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let svc = populated();
        let mut snap = svc.snapshot().unwrap();
        snap.version = 99;
        let err = match MetadataService::from_snapshot(snap) {
            Err(e) => e,
            Ok(_) => panic!("version mismatch must fail"),
        };
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corrupt_json_rejected() {
        let path =
            std::env::temp_dir().join(format!("orv-catalog-bad-{}.json", std::process::id()));
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_err(&path);
        assert!(matches!(err, Error::Format(_)), "no header: {err}");
        // A well-formed header whose payload is not JSON fails at parse,
        // not at checksum.
        let bad = "not json at all";
        let text = format!(
            "{CATALOG_MAGIC} {:08x}\n{bad}\n",
            orv_cluster::crc32c(bad.as_bytes())
        );
        std::fs::write(&path, text).unwrap();
        let err = load_err(&path);
        assert!(matches!(err, Error::Format(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
