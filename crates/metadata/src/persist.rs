//! Catalog persistence.
//!
//! "The MetaData Service stores information about chunks and may also be
//! used by other services to store persistent information." This module
//! snapshots a [`MetadataService`] — tables, chunk metadata and the
//! precomputed page-level join indices — to a JSON file and restores it,
//! rebuilding the R-trees on load. A restored deployment can answer
//! queries without re-scanning any data file.

use crate::service::MetadataService;
use orv_chunk::ChunkMeta;
use orv_types::{Error, Result, Schema, SubTableId};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// On-disk snapshot of the whole service.
#[derive(Serialize, Deserialize)]
pub struct CatalogSnapshot {
    /// Snapshot format version.
    pub version: u32,
    tables: Vec<TableSnapshot>,
    join_indices: Vec<(String, Vec<(SubTableId, SubTableId)>)>,
    /// Layout sources: `(extractor name, DSL source, coordinate attrs)`.
    #[serde(default)]
    layouts: Vec<(String, String, Vec<String>)>,
}

#[derive(Serialize, Deserialize)]
struct TableSnapshot {
    name: String,
    schema: Schema,
    chunks: Vec<ChunkMeta>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl MetadataService {
    /// Capture a snapshot of tables, chunks and join indices.
    pub fn snapshot(&self) -> Result<CatalogSnapshot> {
        let mut tables = Vec::new();
        for name in self.table_names() {
            let id = self.table_id(&name)?;
            let schema = (*self.schema(id)?).clone();
            let chunks = self.with_chunks(id, |cs| cs.to_vec())?;
            tables.push(TableSnapshot {
                name,
                schema,
                chunks,
            });
        }
        Ok(CatalogSnapshot {
            version: SNAPSHOT_VERSION,
            tables,
            join_indices: self.export_join_indices(),
            layouts: self.layouts(),
        })
    }

    /// Write a JSON snapshot to `path`.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<()> {
        let snapshot = self.snapshot()?;
        let json = serde_json::to_string(&snapshot)
            .map_err(|e| Error::Format(format!("cannot serialize catalog: {e}")))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Restore a service from a snapshot (R-trees rebuilt on the fly).
    ///
    /// Table ids are reassigned in snapshot order, which preserves the
    /// original ids since registration order is id order.
    pub fn from_snapshot(snapshot: CatalogSnapshot) -> Result<Self> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(Error::Format(format!(
                "unsupported catalog snapshot version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        let svc = MetadataService::new();
        for table in snapshot.tables {
            let id = svc.register_table(table.name, Arc::new(table.schema))?;
            for chunk in table.chunks {
                if chunk.table != id {
                    return Err(Error::Format(format!(
                        "snapshot chunk {} claims table {} but was stored under {id}",
                        chunk.chunk, chunk.table
                    )));
                }
                svc.register_chunk(chunk)?;
            }
        }
        svc.import_join_indices(snapshot.join_indices);
        for (name, source, coords) in snapshot.layouts {
            svc.register_layout(name, source, coords);
        }
        Ok(svc)
    }

    /// Read a JSON snapshot from `path`.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let snapshot: CatalogSnapshot = serde_json::from_str(&json)
            .map_err(|e| Error::Format(format!("cannot parse catalog snapshot: {e}")))?;
        Self::from_snapshot(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_chunk::ChunkLocation;
    use orv_types::{BoundingBox, ChunkId, Interval, NodeId, TableId};

    fn populated() -> MetadataService {
        let svc = MetadataService::new();
        let schema = Arc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap());
        let t = svc.register_table("T1", schema).unwrap();
        for i in 0..6u32 {
            svc.register_chunk(ChunkMeta {
                table: t,
                chunk: ChunkId(i),
                node: NodeId(i % 2),
                location: ChunkLocation {
                    file: "t1.dat".into(),
                    offset: (i as u64) * 256,
                    len: 256,
                },
                attributes: vec!["x".into(), "y".into(), "wp".into()],
                extractors: vec!["t1_layout".into()],
                bbox: BoundingBox::from_dims([
                    ("x", Interval::new(i as f64 * 4.0, i as f64 * 4.0 + 3.0)),
                    ("y", Interval::new(0.0, 7.0)),
                ]),
                num_records: 32,
            })
            .unwrap();
        }
        svc.put_join_index(
            t,
            t,
            &["x", "y"],
            vec![(SubTableId::new(0u32, 0u32), SubTableId::new(0u32, 1u32))],
        );
        svc
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let svc = populated();
        let restored = MetadataService::from_snapshot(svc.snapshot().unwrap()).unwrap();
        let t = restored.table_id("T1").unwrap();
        assert_eq!(t, TableId(0));
        assert_eq!(restored.total_records(t).unwrap(), 192);
        assert_eq!(restored.schema(t).unwrap().arity(), 3);
        // R-tree works after restore.
        let q = BoundingBox::from_dims([("x", Interval::new(8.0, 11.0))]);
        assert_eq!(restored.find_chunks(t, &q).unwrap(), vec![ChunkId(2)]);
        // Join index survived.
        let idx = restored.get_join_index(t, t, &["x", "y"]).unwrap();
        assert_eq!(idx.len(), 1);
        // Chunk metadata intact.
        let meta = restored.chunk_meta(SubTableId::new(0u32, 5u32)).unwrap();
        assert_eq!(meta.location.offset, 1280);
        assert_eq!(meta.extractors, vec!["t1_layout"]);
    }

    #[test]
    fn json_file_roundtrip() {
        let svc = populated();
        let path = std::env::temp_dir().join(format!("orv-catalog-{}.json", std::process::id()));
        svc.save_json(&path).unwrap();
        let restored = MetadataService::load_json(&path).unwrap();
        assert_eq!(restored.num_tables(), 1);
        assert_eq!(restored.all_chunks(TableId(0)).unwrap().len(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let svc = populated();
        let mut snap = svc.snapshot().unwrap();
        snap.version = 99;
        let err = match MetadataService::from_snapshot(snap) {
            Err(e) => e,
            Ok(_) => panic!("version mismatch must fail"),
        };
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn corrupt_json_rejected() {
        let path =
            std::env::temp_dir().join(format!("orv-catalog-bad-{}.json", std::process::id()));
        std::fs::write(&path, b"{not json").unwrap();
        assert!(MetadataService::load_json(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
