//! Table/chunk catalog backing the MetaData service.

use crate::rtree::{RTree, Rect};
use orv_chunk::ChunkMeta;
use orv_types::{BoundingBox, ChunkId, Error, Result, Schema, TableId};
use std::collections::HashMap;
use std::sync::Arc;

/// Catalog entry for one virtual table.
pub struct TableEntry {
    /// The table's id.
    pub id: TableId,
    /// Human name (`"T1"`, `"pressure"`, ...).
    pub name: String,
    /// Schema of the virtual table.
    pub schema: Arc<Schema>,
    /// Chunk metadata, indexed by chunk id.
    chunks: Vec<ChunkMeta>,
    /// R-tree over chunk bounding boxes, on the table's coordinate
    /// attributes (in schema order).
    index: RTree<ChunkId>,
    /// Names of the indexed coordinate attributes.
    coord_names: Vec<String>,
}

impl TableEntry {
    fn new(id: TableId, name: String, schema: Arc<Schema>) -> Self {
        let coord_names: Vec<String> = schema
            .coordinate_indices()
            .into_iter()
            .map(|i| schema.attrs()[i].name.clone())
            .collect();
        let dim = coord_names.len().max(1);
        TableEntry {
            id,
            name,
            schema,
            chunks: Vec::new(),
            index: RTree::new(dim),
            coord_names,
        }
    }

    fn rect_of(&self, bbox: &BoundingBox) -> Rect {
        if self.coord_names.is_empty() {
            return Rect::point(vec![0.0]);
        }
        let ivs: Vec<_> = self.coord_names.iter().map(|n| bbox.get(n)).collect();
        Rect::from_intervals(&ivs)
    }

    /// All chunk metadata, in chunk-id order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Metadata for one chunk.
    pub fn chunk(&self, id: ChunkId) -> Result<&ChunkMeta> {
        self.chunks
            .get(id.index())
            .ok_or_else(|| Error::not_found(format!("chunk {id} of table {}", self.name)))
    }

    /// Ids of chunks whose bounding boxes overlap `range` (on the indexed
    /// coordinate attributes), via the R-tree; chunks are then confirmed
    /// against the full box (covering scalar-attribute constraints too).
    pub fn find_chunks(&self, range: &BoundingBox) -> Vec<ChunkId> {
        let mut ids = self.index.query(&self.rect_of(range));
        ids.retain(|id| self.chunks[id.index()].bbox.overlaps(range));
        ids.sort();
        ids
    }

    /// Total records across all chunks.
    pub fn total_records(&self) -> u64 {
        self.chunks.iter().map(|c| c.num_records).sum()
    }
}

/// The full catalog: tables by id, with name lookup.
#[derive(Default)]
pub struct Catalog {
    tables: Vec<TableEntry>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table; returns its assigned id.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        schema: Arc<Schema>,
    ) -> Result<TableId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(Error::Config(format!("table `{name}` already registered")));
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.tables.push(TableEntry::new(id, name, schema));
        Ok(id)
    }

    /// Register a chunk under its table. Chunk ids must arrive in order
    /// (0, 1, 2, ...) — the generator produces them that way.
    pub fn register_chunk(&mut self, meta: ChunkMeta) -> Result<()> {
        let entry = self
            .tables
            .get_mut(meta.table.index())
            .ok_or_else(|| Error::not_found(format!("table {}", meta.table)))?;
        if meta.chunk.index() != entry.chunks.len() {
            return Err(Error::Config(format!(
                "chunk {} of table {} registered out of order (expected c{})",
                meta.chunk,
                meta.table,
                entry.chunks.len()
            )));
        }
        let rect = entry.rect_of(&meta.bbox);
        entry.index.insert(rect, meta.chunk);
        entry.chunks.push(meta);
        Ok(())
    }

    /// Look up a table by id.
    pub fn table(&self, id: TableId) -> Result<&TableEntry> {
        self.tables
            .get(id.index())
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    /// Look up a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&TableEntry> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| Error::not_found(format!("table `{name}`")))?;
        self.table(*id)
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = &TableEntry> {
        self.tables.iter()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_chunk::ChunkLocation;
    use orv_types::{Interval, NodeId};

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap())
    }

    fn chunk_meta(table: TableId, chunk: u32, x0: f64, y0: f64, side: f64) -> ChunkMeta {
        ChunkMeta {
            table,
            chunk: ChunkId(chunk),
            node: NodeId(0),
            location: ChunkLocation {
                file: "f".into(),
                offset: 0,
                len: 64,
            },
            attributes: vec!["x".into(), "y".into(), "wp".into()],
            extractors: vec!["e".into()],
            bbox: BoundingBox::from_dims([
                ("x", Interval::new(x0, x0 + side)),
                ("y", Interval::new(y0, y0 + side)),
            ]),
            num_records: 16,
            checksum: None,
        }
    }

    #[test]
    fn register_and_find() {
        let mut cat = Catalog::new();
        let t = cat.register_table("T1", schema()).unwrap();
        // 4×4 grid of 10-unit chunks.
        let mut id = 0;
        for gx in 0..4 {
            for gy in 0..4 {
                cat.register_chunk(chunk_meta(t, id, gx as f64 * 10.0, gy as f64 * 10.0, 9.0))
                    .unwrap();
                id += 1;
            }
        }
        let entry = cat.table_by_name("T1").unwrap();
        assert_eq!(entry.chunks().len(), 16);
        assert_eq!(entry.total_records(), 256);
        // Range covering the first column of chunks (x in [0,9]).
        let q = BoundingBox::from_dims([("x", Interval::new(0.0, 9.0))]);
        let found = entry.find_chunks(&q);
        assert_eq!(found, vec![ChunkId(0), ChunkId(1), ChunkId(2), ChunkId(3)]);
        // Point query.
        let q =
            BoundingBox::from_dims([("x", Interval::point(15.0)), ("y", Interval::point(25.0))]);
        assert_eq!(entry.find_chunks(&q), vec![ChunkId(6)]);
    }

    #[test]
    fn scalar_constraints_prune_after_rtree() {
        let mut cat = Catalog::new();
        let t = cat.register_table("T1", schema()).unwrap();
        let mut m0 = chunk_meta(t, 0, 0.0, 0.0, 9.0);
        m0.bbox.set("wp", Interval::new(0.0, 0.4));
        let mut m1 = chunk_meta(t, 1, 10.0, 0.0, 9.0);
        m1.bbox.set("wp", Interval::new(0.5, 0.9));
        cat.register_chunk(m0).unwrap();
        cat.register_chunk(m1).unwrap();
        let entry = cat.table(t).unwrap();
        // wp constraint alone (coordinates unbounded): only chunk 1 matches.
        let q = BoundingBox::from_dims([("wp", Interval::new(0.45, 1.0))]);
        assert_eq!(entry.find_chunks(&q), vec![ChunkId(1)]);
    }

    #[test]
    fn duplicate_table_and_out_of_order_chunk_rejected() {
        let mut cat = Catalog::new();
        let t = cat.register_table("T1", schema()).unwrap();
        assert!(cat.register_table("T1", schema()).is_err());
        let m = chunk_meta(t, 5, 0.0, 0.0, 1.0);
        assert!(cat.register_chunk(m).is_err());
        let m = chunk_meta(TableId(9), 0, 0.0, 0.0, 1.0);
        assert!(cat.register_chunk(m).is_err());
    }

    #[test]
    fn lookups_error_cleanly() {
        let cat = Catalog::new();
        assert!(cat.table(TableId(0)).is_err());
        assert!(cat.table_by_name("nope").is_err());
        assert_eq!(cat.num_tables(), 0);
    }
}
