//! The MetaData Service.
//!
//! Stores information about chunks (location, size, attributes, extractors,
//! bounding boxes), answers range queries over chunk bounding boxes using an
//! [R-tree](rtree::RTree) (Guttman '84 — the paper's reference \[6\]), and
//! holds persistent artifacts other services produce, such as precomputed
//! page-level join indices.

pub mod catalog;
pub mod persist;
pub mod placement;
pub mod rtree;
pub mod service;

pub use catalog::{Catalog, TableEntry};
pub use persist::CatalogSnapshot;
pub use placement::{Placement, PlacementMap};
pub use rtree::{RTree, Rect};
pub use service::MetadataService;
