//! Figure 5 — execution time vs number of compute nodes (threads), for a
//! low-`n_e·c_S` dataset where IJ leads. Expected shape: both algorithms
//! speed up with threads and the absolute gap shrinks ∝ 1/n_j.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orv_bench::deploy_pair;
use orv_bench::figures::family_partitions;
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};

fn bench(c: &mut Criterion) {
    let (p, q) = family_partitions(32, 1);
    let (d, t1, t2) = deploy_pair([256, 128, 1], p, q, 2, &["oilp"], &["wp"]).unwrap();
    let mut group = c.benchmark_group("fig5_compute_nodes");
    group.sample_size(10);
    for nj in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("IJ", nj), &nj, |b, &nj| {
            b.iter(|| {
                indexed_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &IndexedJoinConfig {
                        n_compute: nj,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("GH", nj), &nj, |b, &nj| {
            b.iter(|| {
                grace_hash_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &GraceHashConfig {
                        n_compute: nj,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
