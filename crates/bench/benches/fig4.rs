//! Figure 4 — execution time vs `n_e · c_S` — measured on the threaded
//! runtime at laptop scale (the paper-scale curves come from
//! `cargo run --release -p orv-bench --bin figures -- --fig 4`).
//!
//! Expected shape: IJ time grows with the family index `i` (its lookup
//! count is `n_e·c_S = 2^i·T`) while GH stays flat; they cross somewhere
//! in the middle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orv_bench::deploy_pair;
use orv_bench::figures::family_partitions;
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_ne_cs");
    group.sample_size(10);
    for i in [0u32, 2, 4] {
        let (p, q) = family_partitions(32, i);
        let (d, t1, t2) = deploy_pair([128, 128, 1], p, q, 2, &["oilp"], &["wp"]).unwrap();
        group.bench_with_input(BenchmarkId::new("IJ", i), &i, |b, _| {
            b.iter(|| {
                indexed_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &IndexedJoinConfig {
                        n_compute: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("GH", i), &i, |b, _| {
            b.iter(|| {
                grace_hash_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &GraceHashConfig {
                        n_compute: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
