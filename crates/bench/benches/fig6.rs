//! Figure 6 — execution time vs total tuples `T`. Expected shape: both
//! algorithms scale linearly in T (double the grid, double the time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use orv_bench::deploy_pair;
use orv_bench::figures::family_partitions;
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};

fn bench(c: &mut Criterion) {
    let (p, q) = family_partitions(32, 1);
    let mut group = c.benchmark_group("fig6_total_tuples");
    group.sample_size(10);
    for gx in [64u64, 128, 256] {
        let grid = [gx, 128, 1];
        let t = grid.iter().product::<u64>();
        let (d, t1, t2) = deploy_pair(grid, p, q, 2, &["oilp"], &["wp"]).unwrap();
        group.throughput(Throughput::Elements(t));
        group.bench_with_input(BenchmarkId::new("IJ", t), &t, |b, _| {
            b.iter(|| {
                indexed_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &IndexedJoinConfig {
                        n_compute: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("GH", t), &t, |b, _| {
            b.iter(|| {
                grace_hash_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &GraceHashConfig {
                        n_compute: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
