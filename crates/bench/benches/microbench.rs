//! Microbenchmarks for the cost-model constants: the per-operation costs
//! of hash-table build and probe (`α_build`, `α_lookup`), and the
//! supporting structures (extractor decode, R-tree query, LRU touch).
//! These are the γ/F quantities Section 5 treats as CPU-dependent
//! constants.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use orv_chunk::{Extractor as _, LayoutExtractor, SubTable};
use orv_join::{HashJoiner, JoinCounters, LruCache};
use orv_layout::parse_layout;
use orv_metadata::{RTree, Rect};
use orv_types::{Schema, SubTableId, Value};
use std::sync::Arc;

fn subtable(rows: usize, seed: u64) -> SubTable {
    let schema = Arc::new(Schema::grid(&["x", "y"], &["wp"]).unwrap());
    let cols = vec![
        (0..rows)
            .map(|i| Value::I32((i as u64 ^ seed) as i32))
            .collect(),
        (0..rows).map(|i| Value::I32(i as i32)).collect(),
        (0..rows).map(|i| Value::F32(i as f32)).collect(),
    ];
    SubTable::from_columns(SubTableId::new(0u32, 0u32), schema, cols).unwrap()
}

fn bench_hash_ops(c: &mut Criterion) {
    let rows = 64 * 1024;
    let left = Arc::new(subtable(rows, 0));
    let right = subtable(rows, 0);
    let counters = JoinCounters::new();
    let mut group = c.benchmark_group("alpha_constants");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("alpha_build", |b| {
        b.iter(|| HashJoiner::build(Arc::clone(&left), &["x", "y"], &counters, 1).unwrap())
    });
    let joiner = HashJoiner::build(Arc::clone(&left), &["x", "y"], &counters, 1).unwrap();
    group.bench_function("alpha_lookup", |b| {
        b.iter(|| {
            joiner
                .probe(&right, &["x", "y"], &counters, |_| {})
                .unwrap()
        })
    });
    group.finish();
}

fn bench_extractor(c: &mut Criterion) {
    let desc = parse_layout("layout t { field x: i32; field y: i32; field wp: f32; }").unwrap();
    let extractor = LayoutExtractor::generate(&desc, &["x", "y"]).unwrap();
    let st = subtable(64 * 1024, 0);
    let cols: Vec<Vec<Value>> = (0..3).map(|i| st.column(i).to_vec()).collect();
    let bytes = extractor.layout().encode(&cols).unwrap();
    let mut group = c.benchmark_group("extractor");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("decode_64k_rows", |b| {
        b.iter(|| {
            extractor
                .extract(SubTableId::new(0u32, 0u32), &bytes)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut tree = RTree::new(2);
    for x in 0..64 {
        for y in 0..64 {
            tree.insert(
                Rect::new(
                    vec![x as f64, y as f64],
                    vec![x as f64 + 1.0, y as f64 + 1.0],
                ),
                x * 64 + y,
            );
        }
    }
    c.bench_function("rtree_range_query_4k_entries", |b| {
        b.iter(|| tree.query(&Rect::new(vec![10.0, 10.0], vec![20.0, 20.0])))
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_get_put_cycle", |b| {
        let mut cache: LruCache<u32, u64> = LruCache::new(1024);
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 1) % 2048;
            if cache.get(&k).is_none() {
                cache.put(k, k as u64, 1);
            }
        })
    });
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_hash_ops, bench_extractor, bench_rtree, bench_lru
}
criterion_main!(benches);
