//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **A1 scheduling** — the paper's two-stage lexicographic schedule vs a
//!   component-blind round-robin vs randomized local order. The two-stage
//!   schedule is what keeps every sub-table cache-resident while needed.
//! * **A2 cache size** — shrink the compute-node cache below the §5.1
//!   memory assumption (`2·c_R + b·c_S`) and watch repeat fetches appear.
//! * **A3 edge ratio / OPAS** — a high-edge-ratio dataset where IJ's
//!   advantage collapses (Section 6.2's closing caveat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orv_bench::deploy_pair;
use orv_bench::figures::family_partitions;
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig, SchedulePolicy};

fn a1_scheduling(c: &mut Criterion) {
    let (p, q) = family_partitions(32, 2);
    let (d, t1, t2) = deploy_pair([128, 128, 1], p, q, 2, &["oilp"], &["wp"]).unwrap();
    let mut group = c.benchmark_group("a1_schedule_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("two_stage_lex", SchedulePolicy::TwoStageLexicographic),
        ("random_order", SchedulePolicy::RandomPairOrder(42)),
        ("pair_round_robin", SchedulePolicy::PairRoundRobin),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                indexed_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &IndexedJoinConfig {
                        n_compute: 2,
                        // Tight cache: bad schedules now pay refetches.
                        cache_capacity: 256 << 10,
                        policy,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn a2_cache_size(c: &mut Criterion) {
    let (p, q) = family_partitions(32, 2);
    let (d, t1, t2) = deploy_pair([128, 128, 1], p, q, 2, &["oilp"], &["wp"]).unwrap();
    let mut group = c.benchmark_group("a2_cache_capacity");
    group.sample_size(10);
    for (name, capacity) in [
        ("unbounded", 1u64 << 30),
        ("assumption_met_64k", 64 << 10),
        ("starved_4k", 4 << 10),
        ("none", 0),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &capacity, |b, &cap| {
            b.iter(|| {
                indexed_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &IndexedJoinConfig {
                        n_compute: 2,
                        cache_capacity: cap,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn a3_edge_ratio(c: &mut Criterion) {
    // Orthogonal slab partitions: every left chunk overlaps every right
    // chunk in its row — the OPAS regime where IJ degrades.
    let (d, t1, t2) = deploy_pair(
        [128, 128, 1],
        [128, 4, 1],
        [4, 128, 1],
        2,
        &["oilp"],
        &["wp"],
    )
    .unwrap();
    let mut group = c.benchmark_group("a3_high_edge_ratio");
    group.sample_size(10);
    group.bench_function("IJ", |b| {
        b.iter(|| {
            indexed_join(
                &d,
                t1.table,
                t2.table,
                &["x", "y", "z"],
                &IndexedJoinConfig {
                    n_compute: 2,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_function("GH", |b| {
        b.iter(|| {
            grace_hash_join(
                &d,
                t1.table,
                t2.table,
                &["x", "y", "z"],
                &GraceHashConfig {
                    n_compute: 2,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = a1_scheduling, a2_cache_size, a3_edge_ratio
}
criterion_main!(benches);
