//! Figure 8 — effect of computing power, via the paper's own trick: the
//! hash build/probe instructions are repeated `k` times to emulate a CPU
//! `k×` slower. Expected shape: IJ (whose lookup term dominates here)
//! degrades faster than GH as the work factor grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orv_bench::deploy_pair;
use orv_bench::figures::family_partitions;
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};

fn bench(c: &mut Criterion) {
    let (p, q) = family_partitions(32, 3); // tangled dataset: IJ is CPU-bound
    let (d, t1, t2) = deploy_pair([128, 128, 1], p, q, 2, &["oilp"], &["wp"]).unwrap();
    let mut group = c.benchmark_group("fig8_computing_power");
    group.sample_size(10);
    for work_factor in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("IJ", work_factor),
            &work_factor,
            |b, &wf| {
                b.iter(|| {
                    indexed_join(
                        &d,
                        t1.table,
                        t2.table,
                        &["x", "y", "z"],
                        &IndexedJoinConfig {
                            n_compute: 2,
                            work_factor: wf,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("GH", work_factor),
            &work_factor,
            |b, &wf| {
                b.iter(|| {
                    grace_hash_join(
                        &d,
                        t1.table,
                        t2.table,
                        &["x", "y", "z"],
                        &GraceHashConfig {
                            n_compute: 2,
                            work_factor: wf,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
