//! Figure 7 — execution time vs number of attributes (record size).
//! Expected shape: times grow with record size through the transfer and
//! bucket-I/O terms; CPU terms are per-tuple and unaffected.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orv_bench::deploy_pair;
use orv_bench::figures::family_partitions;
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};

fn bench(c: &mut Criterion) {
    let (p, q) = family_partitions(32, 1);
    let mut group = c.benchmark_group("fig7_attributes");
    group.sample_size(10);
    for n_scalars in [1usize, 9, 18] {
        // 3 coordinates + n scalars = 4..21 attributes of 4 bytes each.
        let names: Vec<String> = (0..n_scalars).map(|i| format!("s{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let (d, t1, t2) = deploy_pair([128, 128, 1], p, q, 2, &refs, &refs).unwrap();
        let attrs_total = 3 + n_scalars;
        group.bench_with_input(BenchmarkId::new("IJ", attrs_total), &attrs_total, |b, _| {
            b.iter(|| {
                indexed_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &IndexedJoinConfig {
                        n_compute: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("GH", attrs_total), &attrs_total, |b, _| {
            b.iter(|| {
                grace_hash_join(
                    &d,
                    t1.table,
                    t2.table,
                    &["x", "y", "z"],
                    &GraceHashConfig {
                        n_compute: 2,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fast Criterion profile: these benches exist to show *shapes*
/// (who wins, how the curve moves), not microsecond-exact numbers.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
