//! Experiment harness: regenerates every figure of the paper's evaluation.
//!
//! Each `figN` module returns a series of [`Point`]s containing four
//! values per x-coordinate: the simulated IJ and GH times (discrete-event
//! cluster, paper-testbed constants, paper scale) and the analytic
//! cost-model predictions. The `figures` binary prints them; the
//! `validate` binary cross-checks sim vs model and (at laptop scale)
//! threaded runtime vs model.
//!
//! The Figure 4 dataset family deserves a note. The paper varies
//! `n_e · c_S` at constant grid size *and* constant edge ratio. We use
//! partitions `p_i = (64, 64/2^i, 1)` and `q_i = (64/2^i, 64, 1)`:
//!
//! * chunk volume `c_i = 4096 / 2^i` (both tables equal),
//! * per-component overlap `E_C = 4^i`, components `N_C = T/4096`,
//! * hence `n_e·c_S = 2^i · T` — doubling each step — while the edge
//!   ratio `n_e·c_R·c_S/T² = 4096/T` stays exactly constant,
//!
//! which is precisely the paper's experimental design.

pub mod figures;
pub mod runtime_check;

pub use figures::{
    ablation_cache_series, fig4_series, fig5_series, fig6_series, fig7_series, fig8_series,
    fig9_series, Figure, Point,
};

use orv_bds::{generate_dataset, DatasetHandle, DatasetSpec, Deployment};
use orv_types::Result;

/// Deploy the canonical two-table experiment dataset on `nodes` in-memory
/// storage nodes.
pub fn deploy_pair(
    grid: [u64; 3],
    p1: [u64; 3],
    p2: [u64; 3],
    nodes: usize,
    scalars1: &[&str],
    scalars2: &[&str],
) -> Result<(Deployment, DatasetHandle, DatasetHandle)> {
    let d = Deployment::in_memory(nodes);
    let t1 = generate_dataset(
        &DatasetSpec::builder("t1")
            .grid(grid)
            .partition(p1)
            .scalar_attrs(scalars1)
            .seed(1)
            .build(),
        &d,
    )?;
    let t2 = generate_dataset(
        &DatasetSpec::builder("t2")
            .grid(grid)
            .partition(p2)
            .scalar_attrs(scalars2)
            .seed(2)
            .build(),
        &d,
    )?;
    Ok((d, t1, t2))
}
