//! Regenerate every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p orv-bench --bin figures            # all figures
//! cargo run --release -p orv-bench --bin figures -- --fig 4 # one figure
//! cargo run --release -p orv-bench --bin figures -- --json  # JSON output
//! ```

use orv_bench::{
    fig4_series, fig5_series, fig6_series, fig7_series, fig8_series, fig9_series, Figure,
};
use serde::Serialize;

// Read only through the `Serialize` derive, which rustc's dead-code
// pass does not count as a use.
#[allow(dead_code)]
#[derive(Serialize)]
struct JsonPoint {
    x: f64,
    ij_sim: f64,
    gh_sim: f64,
    ij_model: f64,
    gh_model: f64,
}

#[allow(dead_code)]
#[derive(Serialize)]
struct JsonFigure {
    id: u32,
    title: String,
    x_label: String,
    points: Vec<JsonPoint>,
}

fn print_figure(fig: &Figure) {
    println!("\n=== Figure {}: {} ===", fig.id, fig.title);
    println!(
        "{:>16}  {:>12} {:>12} {:>12} {:>12}   winner(sim)",
        fig.x_label, "IJ sim [s]", "GH sim [s]", "IJ model", "GH model"
    );
    for p in &fig.points {
        let winner = if p.ij_sim < p.gh_sim { "IJ" } else { "GH" };
        println!(
            "{:>16.4e}  {:>12.3} {:>12.3} {:>12.3} {:>12.3}   {winner}",
            p.x, p.ij_sim, p.gh_sim, p.ij_model, p.gh_model
        );
    }
}

/// The Section 6.2 decision plane: for each average right-sub-table degree
/// `n_e/m_S` and combined record size, the threshold `IO_bw/F` below which
/// IJ is preferred. "Existing trends indicate that processing power
/// increases at a much faster rate than I/O bandwidth" — i.e. real systems
/// drift downwards in this table, into IJ territory.
fn print_crossover_plane() {
    use orv_bench::figures::GAMMA_LOOKUP;
    println!("\n=== Section 6.2: IO_bw/F threshold below which IJ wins ===");
    println!("(threshold = 2·(RS_R+RS_S) / (γ2·(n_e/m_S − 1)), γ2 = {GAMMA_LOOKUP})");
    let record_sizes = [16.0f64, 32.0, 84.0, 168.0];
    print!("{:>12}", "n_e/m_S ↓");
    for rs in record_sizes {
        print!("  RS={rs:>5.0}B");
    }
    println!();
    for degree in [1.0f64, 2.0, 4.0, 8.0, 32.0, 128.0] {
        print!("{degree:>12.0}");
        for rs in record_sizes {
            if degree <= 1.0 {
                print!("  {:>8}", "always");
            } else {
                let threshold = 2.0 * rs / (GAMMA_LOOKUP * (degree - 1.0));
                print!("  {threshold:>8.1e}");
            }
        }
        println!();
    }
    // Reference points: bytes-per-op of two real machines.
    let piii = 25.0e6 / 933.0e6;
    println!(
        "\nreference IO_bw/F: paper testbed (25 MB/s IDE / 933 MHz) = {piii:.2e}; \
         modern NVMe/5 GHz ≈ {:.2e}",
        3.0e9 / 5.0e9 * 0.2 // ~GB/s per core-op-rate, still drifting down per core
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--plane") {
        print_crossover_plane();
        return;
    }
    if args.iter().any(|a| a == "--ablations") {
        let fig = orv_bench::ablation_cache_series().expect("ablation series");
        print_figure(&fig);
        println!("(GH columns are the cache-oblivious reference; IJ model = ideal cache)");
        return;
    }
    let only: Option<u32> = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let all: Vec<fn() -> orv_types::Result<Figure>> = vec![
        fig4_series,
        fig5_series,
        fig6_series,
        fig7_series,
        fig8_series,
        fig9_series,
    ];
    let mut out = Vec::new();
    for f in all {
        let fig = f().expect("figure generation failed");
        if only.is_some_and(|id| id != fig.id) {
            continue;
        }
        out.push(fig);
    }
    if json {
        let payload: Vec<JsonFigure> = out
            .iter()
            .map(|f| JsonFigure {
                id: f.id,
                title: f.title.clone(),
                x_label: f.x_label.clone(),
                points: f
                    .points
                    .iter()
                    .map(|p| JsonPoint {
                        x: p.x,
                        ij_sim: p.ij_sim,
                        gh_sim: p.gh_sim,
                        ij_model: p.ij_model,
                        gh_model: p.gh_model,
                    })
                    .collect(),
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&payload).unwrap());
    } else {
        for fig in &out {
            print_figure(fig);
        }
        println!();
    }
}
