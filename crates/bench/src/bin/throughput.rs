//! Concurrent-serving throughput: aggregate queries/sec through the
//! [`QueryService`] at 1, 4 and 8 clients over one shared warm cache.
//!
//! ```text
//! cargo run --release -p orv-bench --bin throughput
//! ```
//!
//! The workload is the paper's serving mode: many clients repeatedly
//! querying one unconstrained join view whose working set fits the
//! Caching Service, so every query after warm-up is answered without
//! re-fetching a single sub-table. Each client's *response delivery* is
//! paced by a per-client [`Throttle`] sized to a few multiples of the
//! on-core execution time — the Fast-Ethernet-era ratio the paper's
//! testbed had, scaled to a laptop. That is what makes concurrency pay
//! on any core count: while one client drains its response over its
//! (modeled) link, the workers execute the next client's query, so
//! aggregate throughput rises until the core saturates and then
//! plateaus. Wall-clock enters only the measurements, never control
//! flow, so the run is as deterministic as the thread scheduler allows.
//!
//! Emits `BENCH_throughput.json` (the first entry of the bench
//! trajectory for the serving layer) with per-client-count runs, cache
//! counters and speedups; CI validates ≥ 2× aggregate qps at 4 clients
//! vs 1 and ≥ 4× at 8 (constant misses across all scales — warm hits
//! must never re-fetch). Also emits `BENCH_latency.json` — the
//! 8-client run's
//! [`ServingReport`]: per-phase latency percentiles (p50/p95/p99 of the
//! `lat/*` histograms), the full metrics registry, and the flight
//! recorder's retained traces. CI schema-checks it and tracks the
//! `lat/total_secs` p99 as a non-gating trend.

use orv_bds::{generate_dataset, DatasetSpec, Deployment};
use orv_cluster::Throttle;
use orv_join::JoinAlgorithm;
use orv_obs::{names, ServingReport};
use orv_query::{FederatedService, FederationConfig, QueryEngine, QueryService, ServiceConfig};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Queries each client issues inside the timed window.
const QUERIES_PER_CLIENT: usize = 24;
/// Modeled response-transfer time as a multiple of on-core execution
/// time. 15× keeps each client link-bound through 8 clients (period per
/// client = max(N·e, e + 15e)), predicting ~4× aggregate qps at 4
/// clients and ~8× at 8 on one core, with the plateau at 16.
const TRANSFER_RATIO: f64 = 15.0;
const SQL: &str = "SELECT * FROM v1";

struct Run {
    clients: usize,
    queries: usize,
    total_secs: f64,
    qps: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    submitted: u64,
    completed: u64,
}

fn build_service(clients: usize) -> QueryService {
    let d = Deployment::in_memory(1);
    for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([32, 32, 1])
                .partition([4, 4, 1])
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let engine = QueryEngine::new(d).force_algorithm(Some(JoinAlgorithm::IndexedJoin));
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .expect("create view");
    QueryService::new(
        engine,
        ServiceConfig {
            workers: clients,
            queue_cap: 2 * clients + 4,
            default_deadline: None,
            ..ServiceConfig::default()
        },
    )
    .expect("service")
}

/// Warm the shared cache, then estimate warm on-core execution time and
/// the response payload size.
fn warm_and_measure(svc: &QueryService) -> (f64, u64) {
    let first = svc.execute(SQL).expect("warm-up query");
    let bytes = (first.rows.len() * first.columns.len() * 8) as u64;
    let mut exec_secs = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let r = svc.execute(SQL).expect("measure query");
        exec_secs = exec_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(r.rows.len(), first.rows.len(), "warm runs must agree");
    }
    (exec_secs.max(1e-5), bytes)
}

fn run_clients(clients: usize) -> (Run, ServingReport) {
    let svc = Arc::new(build_service(clients));
    let (exec_secs, bytes) = warm_and_measure(&svc);
    let link_rate = bytes as f64 / (TRANSFER_RATIO * exec_secs);
    let oracle_rows = svc.execute(SQL).expect("oracle").rows;
    let before = svc.counters();

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let svc = Arc::clone(&svc);
        let barrier = Arc::clone(&barrier);
        let oracle_len = oracle_rows.len();
        handles.push(std::thread::spawn(move || {
            // Each client owns its (modeled) downlink.
            let link = Throttle::new(Some(link_rate));
            barrier.wait();
            for _ in 0..QUERIES_PER_CLIENT {
                let r = svc.execute(SQL).expect("client query");
                assert_eq!(r.rows.len(), oracle_len, "result drifted under load");
                link.consume(bytes);
            }
        }));
    }
    barrier.wait();
    let t = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    let total_secs = t.elapsed().as_secs_f64();

    let queries = clients * QUERIES_PER_CLIENT;
    let after = svc.counters();
    assert!(after.admission_balances(), "admission imbalance: {after:?}");
    assert!(
        after.completion_balances(),
        "completion imbalance: {after:?}"
    );
    assert_eq!(
        after.completed - before.completed,
        queries as u64,
        "every client query must complete"
    );
    let cache = svc.engine().cache_stats();
    assert_eq!(
        cache.lookups(),
        cache.hits + cache.misses,
        "cache counter imbalance"
    );
    let report = ServingReport::build(svc.engine().obs().metrics.snapshot(), svc.recorder());
    (
        Run {
            clients,
            queries,
            total_secs,
            qps: queries as f64 / total_secs,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            submitted: after.submitted,
            completed: after.completed,
        },
        report,
    )
}

/// The federated serving trend line: the same dataset behind a
/// 3-shard/R=2 [`FederatedService`], hammered by `clients` threads with a
/// chunk-decomposed base-table scan. Non-gating — recorded so the trend
/// is visible run over run, not asserted (the router adds fan-out/merge
/// overhead that is the price of shard fault tolerance, and the single
/// in-process storage cluster underneath makes absolute qps here
/// incomparable to the cached single-engine runs above).
fn run_federated(clients: usize) -> Run {
    let sql = "SELECT * FROM t1 WHERE x IN [0, 15]";
    let d = Deployment::in_memory(1);
    for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([32, 32, 1])
                .partition([4, 4, 1])
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let fed = Arc::new(
        FederatedService::new(
            d,
            FederationConfig {
                service: ServiceConfig {
                    workers: 2,
                    queue_cap: 4 * clients + 8,
                    default_deadline: None,
                    ..ServiceConfig::default()
                },
                ..FederationConfig::default()
            },
        )
        .expect("federation"),
    );
    let oracle_len = fed
        .execute(sql)
        .expect("warm federated query")
        .into_result()
        .rows
        .len();

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let fed = Arc::clone(&fed);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..QUERIES_PER_CLIENT {
                let r = fed.execute(sql).expect("federated client query");
                assert!(r.is_complete(), "no faults injected: must be complete");
                assert_eq!(r.result().rows.len(), oracle_len, "result drifted");
            }
        }));
    }
    barrier.wait();
    let t = Instant::now();
    for h in handles {
        h.join().expect("federated client thread");
    }
    let total_secs = t.elapsed().as_secs_f64();
    let queries = clients * QUERIES_PER_CLIENT;
    let counters = fed.shard(0).counters();
    Run {
        clients,
        queries,
        total_secs,
        qps: queries as f64 / total_secs,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        submitted: counters.submitted,
        completed: counters.completed,
    }
}

/// One leg of the overload experiment: `clients` threads hammering a
/// fixed-capacity service, each query deadline-bounded by a watchdog.
struct OverloadRun {
    clients: usize,
    offered: u64,
    completed: u64,
    rejected: u64,
    total_secs: f64,
    goodput_qps: f64,
    watchdog_hangs: u64,
}

/// Drive `clients` threads against `svc`, tolerating typed overload
/// rejections (honoring their `retry_after` hint with one bounded
/// retry) and counting anything slower than the watchdog as a hang.
fn drive_overload(svc: &Arc<QueryService>, clients: usize) -> OverloadRun {
    const WATCHDOG: std::time::Duration = std::time::Duration::from_secs(30);
    use std::sync::atomic::{AtomicU64, Ordering};
    let offered = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let hangs = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let svc = Arc::clone(svc);
        let offered = Arc::clone(&offered);
        let completed = Arc::clone(&completed);
        let rejected = Arc::clone(&rejected);
        let hangs = Arc::clone(&hangs);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..QUERIES_PER_CLIENT {
                offered.fetch_add(1, Ordering::Relaxed);
                // One bounded retry on a typed rejection, honoring the
                // hint — the client protocol the resilience layer asks
                // of callers. A second rejection is accepted as shed.
                let mut attempts_left = 2;
                loop {
                    match svc.submit(SQL) {
                        Ok(ticket) => match ticket.wait_timeout(WATCHDOG) {
                            Some(Ok(_)) => {
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(Err(_)) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                hangs.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(e) => {
                            attempts_left -= 1;
                            if attempts_left > 0 {
                                let hint = e.retry_after_ms().unwrap_or(1);
                                std::thread::sleep(std::time::Duration::from_millis(hint));
                                continue;
                            }
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    break;
                }
            }
        }));
    }
    barrier.wait();
    let t = Instant::now();
    for h in handles {
        h.join().expect("overload client thread");
    }
    let total_secs = t.elapsed().as_secs_f64();
    let completed = completed.load(Ordering::Relaxed);
    OverloadRun {
        clients,
        offered: offered.load(Ordering::Relaxed),
        completed,
        rejected: rejected.load(Ordering::Relaxed),
        total_secs,
        goodput_qps: completed as f64 / total_secs,
        watchdog_hangs: hangs.load(Ordering::Relaxed),
    }
}

/// The overload-resilience figure: goodput at capacity vs goodput under
/// a 2× client flood against the *same* fixed-capacity service. The
/// shedder may reject work — the gate is that the work it *does* admit
/// still completes at ≥ 70% of capacity goodput, with zero hangs.
fn run_overload() -> (OverloadRun, OverloadRun, f64) {
    const WORKERS: usize = 4;
    let d = Deployment::in_memory(1);
    for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([32, 32, 1])
                .partition([4, 4, 1])
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let engine = QueryEngine::new(d).force_algorithm(Some(JoinAlgorithm::IndexedJoin));
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .expect("create view");
    let svc = Arc::new(
        QueryService::new(
            engine,
            ServiceConfig {
                workers: WORKERS,
                queue_cap: 2 * WORKERS,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("overload service"),
    );
    svc.execute(SQL).expect("warm-up query");
    let capacity = drive_overload(&svc, WORKERS);
    let overload = drive_overload(&svc, 2 * WORKERS);
    let ratio = overload.goodput_qps / capacity.goodput_qps;
    (capacity, overload, ratio)
}

fn overload_json(capacity: &OverloadRun, overload: &OverloadRun, ratio: f64) -> String {
    let leg = |r: &OverloadRun| {
        format!(
            "{{\"clients\": {}, \"offered\": {}, \"completed\": {}, \"rejected\": {}, \"total_secs\": {:.6}, \"goodput_qps\": {:.3}, \"watchdog_hangs\": {}}}",
            r.clients, r.offered, r.completed, r.rejected, r.total_secs, r.goodput_qps, r.watchdog_hangs
        )
    };
    format!(
        "{{\n  \"bench\": \"overload\",\n  \"workload\": {{\"sql\": \"{SQL}\", \"queries_per_client\": {QUERIES_PER_CLIENT}}},\n  \"capacity\": {},\n  \"overload\": {},\n  \"goodput_ratio\": {ratio:.4},\n  \"watchdog_hangs\": {}\n}}\n",
        leg(capacity),
        leg(overload),
        capacity.watchdog_hangs + overload.watchdog_hangs,
    )
}

fn json(runs: &[Run], exec_secs: f64, federated: &Run) -> String {
    let base_qps = runs[0].qps;
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"throughput\",\n");
    out.push_str(&format!(
        "  \"workload\": {{\"sql\": \"{SQL}\", \"grid\": [32, 32, 1], \"partition\": [4, 4, 1], \"queries_per_client\": {QUERIES_PER_CLIENT}, \"transfer_ratio\": {TRANSFER_RATIO}}},\n"
    ));
    out.push_str(&format!("  \"warm_exec_secs\": {exec_secs:.6},\n"));
    // Non-gating trend line: federated serving overhead is tracked, not
    // asserted. Keep this a separate top-level key — CI's gate reads
    // exactly the "runs" array.
    out.push_str(&format!(
        "  \"federated\": {{\"clients\": {}, \"queries\": {}, \"total_secs\": {:.6}, \"qps\": {:.3}, \"shards\": 3, \"replication\": 2}},\n",
        federated.clients, federated.queries, federated.total_secs, federated.qps
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"queries\": {}, \"total_secs\": {:.6}, \"qps\": {:.3}, \"speedup_vs_1\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \"submitted\": {}, \"completed\": {}}}{}\n",
            r.clients,
            r.queries,
            r.total_secs,
            r.qps,
            r.qps / base_qps,
            r.cache_hits,
            r.cache_misses,
            r.cache_evictions,
            r.submitted,
            r.completed,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    println!("== QueryService throughput (shared warm cache, per-client links) ==");
    // Measure the warm execution time once for the report header; each
    // run re-derives its own link rate so all scales see the same ratio.
    let probe = build_service(1);
    let (exec_secs, bytes) = warm_and_measure(&probe);
    drop(probe);
    println!(
        "warm exec ≈ {:.2} ms, response ≈ {} KiB, modeled link ≈ {:.1} KiB/s\n",
        exec_secs * 1e3,
        bytes / 1024,
        bytes as f64 / (TRANSFER_RATIO * exec_secs) / 1024.0
    );
    println!(
        "{:>8} {:>9} {:>11} {:>9} {:>12} {:>11} {:>11}",
        "clients", "queries", "total [s]", "qps", "speedup", "cache hit", "cache miss"
    );
    let (runs, mut reports): (Vec<Run>, Vec<ServingReport>) =
        [1usize, 4, 8].iter().map(|&n| run_clients(n)).unzip();
    let base_qps = runs[0].qps;
    for r in &runs {
        println!(
            "{:>8} {:>9} {:>11.3} {:>9.1} {:>11.2}x {:>11} {:>11}",
            r.clients,
            r.queries,
            r.total_secs,
            r.qps,
            r.qps / base_qps,
            r.cache_hits,
            r.cache_misses
        );
    }
    let speedup4 = runs[1].qps / base_qps;
    let speedup8 = runs[2].qps / base_qps;
    println!("\n4-client aggregate speedup: {speedup4:.2}x (gate: >= 2.0x — concurrency must pay)");
    println!("8-client aggregate speedup: {speedup8:.2}x (gate: >= 4.0x — the sharded cache path must not serialize warm hits)");
    let federated = run_federated(8);
    println!(
        "federated (3 shards, R=2, 8 clients): {:.1} qps over {} queries (trend line, non-gating)",
        federated.qps, federated.queries
    );
    let payload = json(&runs, exec_secs, &federated);
    std::fs::write("BENCH_throughput.json", &payload).expect("cannot write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json ({} bytes)", payload.len());

    // Overload-resilience figure: the same service, first at capacity,
    // then under a 2× client flood. The shedder may turn work away; the
    // admitted work must still flow.
    let (capacity, overload, goodput_ratio) = run_overload();
    println!(
        "overload: capacity {:.1} qps ({} clients) vs flood {:.1} qps ({} clients, {} rejected) — goodput ratio {:.2} (gate: >= 0.7)",
        capacity.goodput_qps,
        capacity.clients,
        overload.goodput_qps,
        overload.clients,
        overload.rejected,
        goodput_ratio
    );
    let overload_payload = overload_json(&capacity, &overload, goodput_ratio);
    std::fs::write("BENCH_overload.json", &overload_payload)
        .expect("cannot write BENCH_overload.json");
    println!(
        "wrote BENCH_overload.json ({} bytes)",
        overload_payload.len()
    );
    assert_eq!(
        capacity.watchdog_hangs + overload.watchdog_hangs,
        0,
        "no query may outlive the watchdog"
    );
    assert!(
        goodput_ratio >= 0.7,
        "goodput under 2x overload must stay >= 70% of capacity, got {goodput_ratio:.2}"
    );

    // Serving-path latency report: the 8-client (contended) run is the
    // distribution worth tracking. The report must self-validate and
    // carry the core serving phases before CI ever sees it.
    let mut latency = reports.pop().expect("8-client report");
    latency.notes.insert("bench".into(), "throughput".into());
    latency.notes.insert("clients".into(), 8u64.into());
    latency.notes.insert("sql".into(), SQL.into());
    latency.notes.insert(
        "queries_per_client".into(),
        (QUERIES_PER_CLIENT as u64).into(),
    );
    latency.validate().expect("serving report must validate");
    for name in [
        names::LAT_ADMISSION,
        names::LAT_QUEUE_WAIT,
        names::LAT_EXEC,
        names::LAT_TOTAL,
    ] {
        assert!(
            latency.latency(name).is_some(),
            "the contended run must record `{name}`"
        );
    }
    println!("\n{}", latency.render_table());
    let lat_json = latency.to_json();
    std::fs::write("BENCH_latency.json", &lat_json).expect("cannot write BENCH_latency.json");
    println!("wrote BENCH_latency.json ({} bytes)", lat_json.len());

    assert!(
        speedup4 >= 2.0,
        "aggregate qps at 4 clients must be >= 2x the 1-client baseline, got {speedup4:.2}x"
    );
    assert!(
        speedup8 >= 4.0,
        "aggregate qps at 8 clients must be >= 4x the 1-client baseline, got {speedup8:.2}x"
    );
}
