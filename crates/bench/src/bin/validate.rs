//! Cost-model validation: model vs simulation vs threaded runtime.
//!
//! ```text
//! cargo run --release -p orv-bench --bin validate
//! ```
//!
//! Emits three sections:
//!
//! 1. **Model vs simulation** — relative error of the Section 5 closed
//!    forms against the discrete-event simulation across the Figure 4
//!    family (the paper's "models fit actual execution times closely").
//! 2. **Crossover agreement** — where the model and the simulation place
//!    the IJ/GH crossover along the `n_e·c_S` axis.
//! 3. **Threaded runtime** — measured laptop-scale wall times with the
//!    planner's pick vs the empirical winner (DESIGN.md experiment A4).

use orv_bench::runtime_check::run_family;
use orv_bench::{fig4_series, fig5_series, fig6_series, fig7_series, fig8_series};

fn main() {
    println!("== 1. Model vs simulation (relative error, paper-scale sim) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10}",
        "figure", "IJ mean err", "GH mean err", "IJ max", "GH max"
    );
    for (name, fig) in [
        ("fig4", fig4_series()),
        ("fig5", fig5_series()),
        ("fig6", fig6_series()),
        ("fig7", fig7_series()),
        ("fig8", fig8_series()),
    ] {
        let fig = fig.expect("series");
        let errs: Vec<(f64, f64)> = fig
            .points
            .iter()
            .map(|p| {
                (
                    (p.ij_model - p.ij_sim).abs() / p.ij_sim,
                    (p.gh_model - p.gh_sim).abs() / p.gh_sim,
                )
            })
            .collect();
        let mean = |f: fn(&(f64, f64)) -> f64| errs.iter().map(f).sum::<f64>() / errs.len() as f64;
        let max = |f: fn(&(f64, f64)) -> f64| errs.iter().map(f).fold(0.0f64, f64::max);
        println!(
            "{:>8} {:>13.1}% {:>13.1}% {:>9.1}% {:>9.1}%",
            name,
            100.0 * mean(|e| e.0),
            100.0 * mean(|e| e.1),
            100.0 * max(|e| e.0),
            100.0 * max(|e| e.1),
        );
    }

    println!("\n== 2. Crossover agreement along n_e·c_S (fig4 family) ==");
    let fig4 = fig4_series().expect("fig4");
    let cross_of = |key: fn(&orv_bench::Point) -> (f64, f64)| -> Option<f64> {
        fig4.points.windows(2).find_map(|w| {
            let (a_ij, a_gh) = key(&w[0]);
            let (b_ij, b_gh) = key(&w[1]);
            ((a_ij < a_gh) && (b_ij >= b_gh)).then_some((w[0].x + w[1].x) / 2.0)
        })
    };
    match (
        cross_of(|p| (p.ij_sim, p.gh_sim)),
        cross_of(|p| (p.ij_model, p.gh_model)),
    ) {
        (Some(sim), Some(model)) => {
            println!("simulation crossover ≈ {sim:.3e}, model crossover ≈ {model:.3e}");
            println!(
                "agreement: within a factor of {:.2}",
                (sim / model).max(model / sim)
            );
        }
        other => println!("crossover not bracketed: {other:?}"),
    }

    println!("\n== 3. Threaded runtime (grid 256×256×1, 2 storage, 4 compute threads) ==");
    let (rows, cal) = run_family([256, 256, 1], 5, 2, 4).expect("runtime family");
    println!(
        "host calibration: α_build = {:.1} ns, α_lookup = {:.1} ns",
        cal.alpha_build * 1e9,
        cal.alpha_lookup * 1e9
    );
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "i", "n_e·c_S", "IJ [s]", "GH [s]", "tuples", "pick", "correct"
    );
    let mut correct = 0;
    for r in &rows {
        println!(
            "{:>3} {:>12.3e} {:>12.4} {:>12.4} {:>10} {:>8} {:>8}",
            r.i, r.ne_cs, r.ij_measured, r.gh_measured, r.tuples, r.planner_pick, r.pick_correct
        );
        correct += r.pick_correct as u32;
    }
    println!(
        "planner picked the empirically faster algorithm in {correct}/{} cases",
        rows.len()
    );
}
