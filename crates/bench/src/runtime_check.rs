//! Laptop-scale validation on the real threaded runtime.
//!
//! Runs the Figure 4 dataset family at a size the host can chew through in
//! seconds, measuring actual wall-clock times of both threaded QES
//! implementations, and compares the *orderings* against the cost models
//! fed with host-calibrated `α` constants. This is the "models fit actual
//! execution times closely" claim of Section 6.1, transplanted to the host
//! we actually have.

use crate::deploy_pair;
use crate::figures::family_partitions;
use orv_costmodel::{calibrate_host, choose_algorithm, Calibration, CostParams, SystemParams};
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig, JoinAlgorithm};
use orv_types::Result;

/// One validation row.
#[derive(Clone, Copy, Debug)]
pub struct CheckRow {
    /// Fig-4 family index.
    pub i: u32,
    /// `n_e · c_S` of the dataset.
    pub ne_cs: f64,
    /// Measured threaded IJ wall time, seconds.
    pub ij_measured: f64,
    /// Measured threaded GH wall time, seconds.
    pub gh_measured: f64,
    /// Result tuples (must equal `T` for both).
    pub tuples: u64,
    /// The planner's pick for this dataset on the host model.
    pub planner_pick: JoinAlgorithm,
    /// Whether the pick matched the empirically faster algorithm.
    pub pick_correct: bool,
}

/// Run the family at `grid` scale over `nodes` storage / `n_compute`
/// compute threads. Returns the rows plus the calibration used.
pub fn run_family(
    grid: [u64; 3],
    max_i: u32,
    nodes: usize,
    n_compute: usize,
) -> Result<(Vec<CheckRow>, Calibration)> {
    let cal = calibrate_host(500_000);
    let mut rows = Vec::new();
    for i in 0..=max_i {
        // Laptop-scale instance of the same family (64-point base).
        let (p, q) = family_partitions(64, i);
        let (d, t1, t2) = deploy_pair(grid, p, q, nodes, &["oilp"], &["wp"])?;

        let ij = indexed_join(
            &d,
            t1.table,
            t2.table,
            &["x", "y", "z"],
            &IndexedJoinConfig {
                n_compute,
                ..Default::default()
            },
        )?;
        let gh = grace_hash_join(
            &d,
            t1.table,
            t2.table,
            &["x", "y", "z"],
            &GraceHashConfig {
                n_compute,
                ..Default::default()
            },
        )?;
        assert_eq!(ij.stats.result_tuples, gh.stats.result_tuples);

        // Model the host: the network is memory-speed, but GH's bucket
        // "I/O" is really per-byte serialization CPU, which calibration
        // measures (`encode_bw`/`decode_bw`); those stand in for the
        // write/read bandwidths.
        let dparams = CostParams {
            t: t1.total_tuples() as f64,
            c_r: t1.tuples_per_chunk() as f64,
            c_s: t2.tuples_per_chunk() as f64,
            n_e: d
                .metadata()
                .get_join_index(t1.table, t2.table, &["x", "y", "z"])
                .map(|p| p.len() as f64)
                .unwrap_or(0.0)
                .max(1.0),
            rs_r: t1.record_size() as f64,
            rs_s: t2.record_size() as f64,
        };
        let host_net = 8.0e9; // bytes/s: crossbeam channels, memory class
        let sparams = SystemParams {
            net_bw: host_net,
            read_io_bw: cal.decode_bw,
            write_io_bw: cal.encode_bw,
            n_s: nodes as f64,
            n_j: n_compute as f64,
            alpha_build: cal.alpha_build,
            alpha_lookup: cal.alpha_lookup,
        };
        let choice = choose_algorithm(&dparams, &sparams)?;
        let pick = if choice.indexed_join {
            JoinAlgorithm::IndexedJoin
        } else {
            JoinAlgorithm::GraceHash
        };
        let empirically_ij = ij.stats.wall_secs < gh.stats.wall_secs;
        rows.push(CheckRow {
            i,
            ne_cs: dparams.ne_cs(),
            ij_measured: ij.stats.wall_secs,
            gh_measured: gh.stats.wall_secs,
            tuples: ij.stats.result_tuples,
            planner_pick: pick,
            pick_correct: (pick == JoinAlgorithm::IndexedJoin) == empirically_ij,
        });
    }
    Ok((rows, cal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_runs_and_outputs_t_tuples() {
        let (rows, cal) = run_family([64, 64, 1], 2, 2, 2).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.tuples, 64 * 64);
            assert!(r.ij_measured > 0.0 && r.gh_measured > 0.0);
        }
        assert!(cal.alpha_build > 0.0);
        // n_e·c_S doubles along the family.
        assert!((rows[1].ne_cs / rows[0].ne_cs - 2.0).abs() < 1e-9);
    }
}
