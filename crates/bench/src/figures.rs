//! Sweep definitions for Figures 4–9.

use orv_cluster::ClusterSpec;
use orv_costmodel::{CostParams, GraceHashModel, IndexedJoinModel, SystemParams};
use orv_join::{simulate_grace_hash, simulate_indexed_join, SimProblem};
use orv_types::Result;

/// CPU operations per hash-table insert on the paper testbed (γ1), chosen
/// so `α_build = γ1/F ≈ 0.30 µs` on the 933 MHz PIII.
pub const GAMMA_BUILD: f64 = 280.0;
/// CPU operations per lookup (γ2): `α_lookup ≈ 0.25 µs`.
pub const GAMMA_LOOKUP: f64 = 230.0;

/// One x-coordinate of a figure: simulated and modelled times for both
/// algorithms.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// The swept quantity (axis meaning depends on the figure).
    pub x: f64,
    /// Discrete-event simulation of IJ, seconds.
    pub ij_sim: f64,
    /// Discrete-event simulation of GH, seconds.
    pub gh_sim: f64,
    /// Section 5.1 model, seconds.
    pub ij_model: f64,
    /// Section 5.2 model, seconds.
    pub gh_model: f64,
}

/// A reproduced figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Paper figure number.
    pub id: u32,
    /// Title.
    pub title: String,
    /// Meaning of `Point::x`.
    pub x_label: String,
    /// The series.
    pub points: Vec<Point>,
}

/// The Figure 4 dataset family at an arbitrary scale: partitions
/// `p_i = (base, base/2^i, 1)`, `q_i = (base/2^i, base, 1)` over a fixed
/// grid — `n_e·c_S = 2^i·T` at constant edge ratio, with both chunk
/// volumes equal (`c = base²/2^i`).
pub fn family_partitions(base: u64, i: u32) -> ([u64; 3], [u64; 3]) {
    let narrow = base >> i;
    assert!(narrow >= 1, "family defined while base/2^i ≥ 1");
    ([base, narrow, 1], [narrow, base, 1])
}

/// The paper-scale Figure 4 family: 16 MB chunks at `i = 0` shrinking to
/// 512 KB at `i = 5` — realistic chunk sizes, so per-request overheads
/// stay negligible as they were on the testbed.
pub fn fig4_partitions(i: u32) -> ([u64; 3], [u64; 3]) {
    family_partitions(1024, i)
}

fn problem(grid: [u64; 3], p: [u64; 3], q: [u64; 3], rs: f64) -> SimProblem {
    SimProblem::from_regular(grid, p, q, rs, rs, GAMMA_BUILD, GAMMA_LOOKUP)
}

fn cost_params(pr: &SimProblem) -> CostParams {
    CostParams {
        t: pr.t,
        c_r: pr.c_r,
        c_s: pr.c_s,
        n_e: pr.n_e(),
        rs_r: pr.rs_r,
        rs_s: pr.rs_s,
    }
}

fn point(x: f64, pr: &SimProblem, spec: &ClusterSpec) -> Result<Point> {
    let d = cost_params(pr);
    let s = SystemParams::from_cluster(spec, GAMMA_BUILD, GAMMA_LOOKUP);
    Ok(Point {
        x,
        ij_sim: simulate_indexed_join(pr, spec)?.total_secs,
        gh_sim: simulate_grace_hash(pr, spec)?.total_secs,
        ij_model: IndexedJoinModel::evaluate(&d, &s)?.total(),
        gh_model: GraceHashModel::evaluate(&d, &s)?.total(),
    })
}

/// Figure 4: execution time vs `n_e · c_S` (5 storage + 5 compute nodes,
/// constant grid, constant edge ratio).
pub fn fig4_series() -> Result<Figure> {
    let grid = [8192, 8192, 1];
    let spec = ClusterSpec::paper_testbed(5, 5);
    let mut points = Vec::new();
    for i in 0..=5u32 {
        let (p, q) = fig4_partitions(i);
        let pr = problem(grid, p, q, 16.0);
        points.push(point(pr.n_e() * pr.c_s, &pr, &spec)?);
    }
    Ok(Figure {
        id: 4,
        title: "Varying dataset parameter combination n_e · c_S".into(),
        x_label: "n_e · c_S (tuple lookups)".into(),
        points,
    })
}

/// Figure 5: execution time vs number of compute nodes (low `n_e·c_S`
/// dataset, 5 storage nodes).
pub fn fig5_series() -> Result<Figure> {
    let grid = [8192, 8192, 1];
    let (p, q) = fig4_partitions(1);
    let mut points = Vec::new();
    for nj in 1..=8usize {
        let spec = ClusterSpec::paper_testbed(5, nj);
        let pr = problem(grid, p, q, 16.0);
        points.push(point(nj as f64, &pr, &spec)?);
    }
    Ok(Figure {
        id: 5,
        title: "Vary number of Compute Nodes".into(),
        x_label: "compute nodes (n_j)".into(),
        points,
    })
}

/// Figure 6: execution time vs total tuples `T`, up to the paper's
/// 2-billion-tuple maximum.
pub fn fig6_series() -> Result<Figure> {
    let (p, q) = fig4_partitions(1);
    let spec = ClusterSpec::paper_testbed(5, 5);
    let mut points = Vec::new();
    for k in 0..=5u32 {
        // Grids from 67M to 2.1B tuples, doubling.
        let gx = 8192u64 << (k / 2 + u32::from(k % 2 == 1));
        let gy = 8192u64 << (k / 2);
        let grid = [gx, gy, 1];
        let pr = problem(grid, p, q, 16.0);
        points.push(point(pr.t, &pr, &spec)?);
    }
    Ok(Figure {
        id: 6,
        title: "Vary number of tuples".into(),
        x_label: "total tuples (T)".into(),
        points,
    })
}

/// Figure 7: execution time vs number of attributes (4-byte attributes,
/// 4 → 21 as in the oil-reservoir schema).
pub fn fig7_series() -> Result<Figure> {
    let grid = [8192, 8192, 1];
    let (p, q) = fig4_partitions(1);
    let spec = ClusterSpec::paper_testbed(5, 5);
    let mut points = Vec::new();
    for attrs in [4u32, 6, 9, 12, 15, 18, 21] {
        let pr = problem(grid, p, q, attrs as f64 * 4.0);
        points.push(point(attrs as f64, &pr, &spec)?);
    }
    Ok(Figure {
        id: 7,
        title: "Vary number of attributes".into(),
        x_label: "attributes per record".into(),
        points,
    })
}

/// Figure 8: effect of computing power. x is the *relative* computing
/// power (1 = the PIII baseline); lower x means build/probe instructions
/// repeated `1/x` times, exactly the paper's slowdown trick.
pub fn fig8_series() -> Result<Figure> {
    let grid = [8192, 8192, 1];
    let (p, q) = fig4_partitions(3); // moderately tangled dataset
    let mut points = Vec::new();
    for rel_power in [0.125f64, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut spec = ClusterSpec::paper_testbed(5, 5);
        spec.cpu_work_factor = 1.0 / rel_power;
        let pr = problem(grid, p, q, 16.0);
        points.push(point(rel_power, &pr, &spec)?);
    }
    Ok(Figure {
        id: 8,
        title: "Effect of computing power".into(),
        x_label: "relative computing power (F / F_PIII)".into(),
        points,
    })
}

/// Figure 9: a single NFS file server serves all I/O; compute nodes have
/// no local disks. x is the number of compute nodes.
pub fn fig9_series() -> Result<Figure> {
    let grid = [4096, 4096, 1];
    // Finer partitions than fig4's baseline: bucket traffic becomes many
    // small NFS RPCs, which is what the shared server chokes on.
    let (p, q) = fig4_partitions(4);
    let mut points = Vec::new();
    for nj in 1..=8usize {
        let spec = ClusterSpec::paper_testbed_nfs(nj);
        let pr = problem(grid, p, q, 16.0);
        // The Section 5 models assume per-node scratch disks; under NFS the
        // single server serializes bucket I/O, so the models' write/read
        // terms lose their 1/n_j parallelism. Feed them the effective
        // per-node bandwidth (server bandwidth ÷ n_j) to keep them honest.
        let d = cost_params(&pr);
        let mut s = SystemParams::from_cluster(&spec, GAMMA_BUILD, GAMMA_LOOKUP);
        s.write_io_bw /= nj as f64;
        s.read_io_bw /= nj as f64;
        points.push(Point {
            x: nj as f64,
            ij_sim: simulate_indexed_join(&pr, &spec)?.total_secs,
            gh_sim: simulate_grace_hash(&pr, &spec)?.total_secs,
            ij_model: IndexedJoinModel::evaluate(&d, &s)?.total(),
            gh_model: GraceHashModel::evaluate(&d, &s)?.total(),
        });
    }
    Ok(Figure {
        id: 9,
        title: "Shared Filesystem".into(),
        x_label: "compute nodes (n_j)".into(),
        points,
    })
}

/// Ablation A2 at paper scale: shrink the compute-node sub-table cache
/// below the §5.1 working set (`lefts_per_right · c_R + c_S` bytes) and
/// watch IJ degrade toward — and past — Grace Hash, which is cache-
/// oblivious. `x` is the cache size in bytes; the "model" columns hold the
/// ideal-cache predictions as reference lines.
pub fn ablation_cache_series() -> Result<Figure> {
    use orv_join::simulate_indexed_join_with_cache;
    let grid = [8192, 8192, 1];
    let (p, q) = fig4_partitions(3); // 2 MB chunks, 8 lefts per right
    let spec = ClusterSpec::paper_testbed(5, 5);
    let pr = problem(grid, p, q, 16.0);
    let d = cost_params(&pr);
    let s = SystemParams::from_cluster(&spec, GAMMA_BUILD, GAMMA_LOOKUP);
    let ij_model = IndexedJoinModel::evaluate(&d, &s)?;
    let gh_model = GraceHashModel::evaluate(&d, &s)?.total();
    let gh_sim = simulate_grace_hash(&pr, &spec)?.total_secs;
    let chunk_bytes = pr.c_r * pr.rs_r;
    let mut points = Vec::new();
    // From comfortably-fits (16 chunks) down to thrashing (2 chunks).
    for chunks_cached in [16.0f64, 10.0, 9.0, 6.0, 4.0, 2.0] {
        let cache = chunks_cached * chunk_bytes;
        points.push(Point {
            x: cache,
            ij_sim: simulate_indexed_join_with_cache(&pr, &spec, cache)?.total_secs,
            gh_sim,
            ij_model: ij_model.total(),
            gh_model,
        });
    }
    Ok(Figure {
        id: 102,
        title: "Ablation A2: IJ under cache starvation (GH as reference)".into(),
        x_label: "cache bytes per compute node".into(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_family_has_paper_properties() {
        // n_e·c_S doubles each step; edge ratio constant.
        let grid = [8192, 8192, 1];
        let mut prev_necs = 0.0;
        let mut er0 = None;
        for i in 0..=5 {
            let (p, q) = fig4_partitions(i);
            let pr = problem(grid, p, q, 16.0);
            let necs = pr.n_e() * pr.c_s;
            if i > 0 {
                assert!((necs / prev_necs - 2.0).abs() < 1e-9, "step {i}");
            }
            prev_necs = necs;
            let d = cost_params(&pr);
            let er = d.edge_ratio();
            match er0 {
                None => er0 = Some(er),
                Some(e) => assert!((er - e).abs() < 1e-12, "edge ratio drifted at {i}"),
            }
            // Chunk volumes equal on both sides.
            assert_eq!(pr.c_r, pr.c_s);
        }
    }

    #[test]
    fn fig4_crossover_exists_and_models_agree_on_winner() {
        let f = fig4_series().unwrap();
        assert_eq!(f.points.len(), 6);
        // IJ wins on the left end, GH on the right end — in both sim and
        // model (the paper's headline result).
        let first = f.points.first().unwrap();
        let last = f.points.last().unwrap();
        assert!(first.ij_sim < first.gh_sim, "{first:?}");
        assert!(first.ij_model < first.gh_model, "{first:?}");
        assert!(last.gh_sim < last.ij_sim, "{last:?}");
        assert!(last.gh_model < last.ij_model, "{last:?}");
        // GH is insensitive to n_e·c_S: its curve is flat.
        let gh_spread = f
            .points
            .iter()
            .map(|p| p.gh_sim)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                (lo.min(v), hi.max(v))
            });
        assert!(gh_spread.1 / gh_spread.0 < 1.35, "GH spread {gh_spread:?}");
    }

    #[test]
    fn fig5_gap_shrinks_with_more_nodes() {
        let f = fig5_series().unwrap();
        let gap: Vec<f64> = f
            .points
            .iter()
            .map(|p| (p.gh_sim - p.ij_sim).abs())
            .collect();
        assert!(gap.last().unwrap() < gap.first().unwrap());
        // Both improve with more nodes.
        assert!(f.points.last().unwrap().ij_sim < f.points[0].ij_sim);
        assert!(f.points.last().unwrap().gh_sim < f.points[0].gh_sim);
    }

    #[test]
    fn fig6_is_linear_in_t() {
        let f = fig6_series().unwrap();
        for w in f.points.windows(2) {
            let t_ratio = w[1].x / w[0].x;
            for (a, b) in [
                (w[0].ij_sim, w[1].ij_sim),
                (w[0].gh_sim, w[1].gh_sim),
                (w[0].ij_model, w[1].ij_model),
                (w[0].gh_model, w[1].gh_model),
            ] {
                assert!(
                    ((b / a) / t_ratio - 1.0).abs() < 0.15,
                    "nonlinear: {a} → {b}"
                );
            }
        }
        assert!(f.points.last().unwrap().x >= 2.0e9, "reaches 2B tuples");
    }

    #[test]
    fn fig7_grows_with_record_size() {
        let f = fig7_series().unwrap();
        for w in f.points.windows(2) {
            assert!(w[1].ij_sim > w[0].ij_sim);
            assert!(w[1].gh_sim > w[0].gh_sim);
        }
    }

    #[test]
    fn fig8_ij_overtakes_gh_with_computing_power() {
        let f = fig8_series().unwrap();
        let slowest = f.points.first().unwrap();
        let fastest = f.points.last().unwrap();
        // At very low computing power the CPU-heavy IJ lookup term
        // dominates; with fast CPUs IJ wins.
        assert!(slowest.gh_sim < slowest.ij_sim, "{slowest:?}");
        assert!(fastest.ij_sim < fastest.gh_sim, "{fastest:?}");
        // Models agree on both endpoints.
        assert!(slowest.gh_model < slowest.ij_model);
        assert!(fastest.ij_model < fastest.gh_model);
    }

    #[test]
    fn ablation_cache_starvation_crosses_gh() {
        let f = ablation_cache_series().unwrap();
        // Monotone: less cache, slower IJ.
        for w in f.points.windows(2) {
            assert!(w[1].ij_sim >= w[0].ij_sim - 1e-9, "{:?}", w);
        }
        let first = f.points.first().unwrap();
        let last = f.points.last().unwrap();
        // With the working set resident, IJ matches its ideal model...
        assert!((first.ij_sim - first.ij_model).abs() / first.ij_model < 0.1);
        // ...and under starvation IJ falls behind the cache-oblivious GH.
        assert!(last.ij_sim > last.gh_sim, "{last:?}");
    }

    #[test]
    fn fig9_gh_degrades_and_ij_is_better() {
        let f = fig9_series().unwrap();
        // GH at 8 nodes is no better than at 2 nodes (the paper observed
        // it getting *worse*).
        let gh2 = f.points[1].gh_sim;
        let gh8 = f.points[7].gh_sim;
        assert!(gh8 >= gh2, "GH must not improve under NFS: {gh2} → {gh8}");
        // IJ beats GH at every point beyond the first.
        for p in &f.points[1..] {
            assert!(p.ij_sim < p.gh_sim, "{p:?}");
        }
    }
}
