//! Host calibration of `α_build` and `α_lookup`.
//!
//! The cost-model constants are CPU dependent (`α = γ/F`). This module
//! measures them on the machine the threaded runtime actually runs on, by
//! timing the same operations the in-memory hash join performs: inserting
//! `(key → row-index)` pairs into a hash table and probing it. The
//! validation harness feeds the measured constants back into the models
//! before comparing them with measured join times.

use orv_types::Value;
use std::collections::HashMap;
use std::time::Instant;

/// Measured per-operation costs on this host.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Seconds per hash-table insert.
    pub alpha_build: f64,
    /// Seconds per hash-table lookup.
    pub alpha_lookup: f64,
    /// Record serialization bandwidth, bytes/s — the host-side stand-in
    /// for `writeIO_bw` when buckets live in memory (Grace Hash still pays
    /// this CPU cost per byte spilled).
    pub encode_bw: f64,
    /// Record deserialization bandwidth, bytes/s — stand-in for the
    /// bucket-read `readIO_bw`.
    pub decode_bw: f64,
    /// Operations timed per measurement.
    pub ops: u64,
}

impl Calibration {
    /// Convert to operation counts `γ` for a CPU of rate `f` ops/s.
    pub fn gammas(&self, f: f64) -> (f64, f64) {
        (self.alpha_build * f, self.alpha_lookup * f)
    }
}

/// Time `n` hash-table inserts and `n` lookups over 2-attribute integer
/// keys (the `(x, y)` join-key shape of the paper's queries).
///
/// Keys are pre-materialized so only the hash-table operations are timed.
pub fn calibrate_host(n: u64) -> Calibration {
    let n = n.max(1);
    let keys: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::I32((i % 1024) as i32), Value::I32((i / 1024) as i32)])
        .collect();

    // orv-lint: allow(L006) -- calibration exists to measure real hardware timings
    let start = Instant::now();
    let mut table: HashMap<&[Value], Vec<u32>> = HashMap::with_capacity(keys.len());
    for (i, k) in keys.iter().enumerate() {
        table.entry(k.as_slice()).or_default().push(i as u32);
    }
    let alpha_build = start.elapsed().as_secs_f64() / n as f64;

    // orv-lint: allow(L006) -- calibration exists to measure real hardware timings
    let start = Instant::now();
    let mut found = 0u64;
    for k in &keys {
        if let Some(rows) = table.get(k.as_slice()) {
            found += rows.len() as u64;
        }
    }
    let alpha_lookup = start.elapsed().as_secs_f64() / n as f64;
    assert_eq!(found, n, "calibration self-check: every key must resolve");

    // Serialization throughput: the wire/bucket format is packed
    // little-endian values, 16 bytes per 4-attribute record here.
    let record: Vec<Value> = vec![Value::I32(7), Value::I32(9), Value::I32(3), Value::F32(0.5)];
    let rec_bytes: usize = record.iter().map(|v| v.data_type().width()).sum();
    let reps = n as usize;
    // orv-lint: allow(L006) -- calibration exists to measure real hardware timings
    let start = Instant::now();
    let mut buf = Vec::with_capacity(reps * rec_bytes);
    for _ in 0..reps {
        for v in &record {
            v.encode_le(&mut buf);
        }
    }
    let encode_bw = buf.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // orv-lint: allow(L006) -- calibration exists to measure real hardware timings
    let start = Instant::now();
    let mut checksum = 0u64;
    for chunk in buf.chunks_exact(rec_bytes) {
        let mut off = 0;
        for v in &record {
            let ty = v.data_type();
            // orv-lint: allow(L001) -- decoding the buffer this same loop just encoded; length is reps * rec_bytes by construction
            let val = Value::decode_le(ty, &chunk[off..]).expect("calibration decode");
            checksum ^= val.key_bits();
            off += ty.width();
        }
    }
    let decode_bw = buf.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(checksum);

    Calibration {
        alpha_build,
        alpha_lookup,
        encode_bw,
        decode_bw,
        ops: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_yields_sane_constants() {
        let c = calibrate_host(200_000);
        assert!(c.alpha_build > 0.0 && c.alpha_build < 1e-4, "{c:?}");
        assert!(c.alpha_lookup > 0.0 && c.alpha_lookup < 1e-4, "{c:?}");
        assert!(c.encode_bw > 1.0e6, "{c:?}");
        assert!(c.decode_bw > 1.0e6, "{c:?}");
        assert_eq!(c.ops, 200_000);
    }

    #[test]
    fn gammas_scale_with_cpu_rate() {
        let c = Calibration {
            alpha_build: 1e-7,
            alpha_lookup: 5e-8,
            encode_bw: 1.0e9,
            decode_bw: 1.0e9,
            ops: 1,
        };
        let (g1, g2) = c.gammas(1.0e9);
        assert!((g1 - 100.0).abs() < 1e-9);
        assert!((g2 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_one_op() {
        let c = calibrate_host(0);
        assert_eq!(c.ops, 1);
    }
}
