//! Analytic cost models for the Indexed Join and Grace Hash QES
//! (paper Section 5) and the crossover analysis (Section 6.2).
//!
//! The Query Planning Service uses these models to pick the faster
//! algorithm for a given dataset/cluster/query combination:
//!
//! ```text
//! Total_IJ = Transfer + BuildHT + Lookup
//!   Transfer = T·(RS_R+RS_S) / min(Net_bw(n_s,n_j), readIO_bw·n_s)
//!   BuildHT  = α_build · T / n_j
//!   Lookup   = α_lookup · n_e · c_S / n_j
//!
//! Total_GH = Transfer + Write + Read + Cpu
//!   Write = T·(RS_R+RS_S) / (writeIO_bw · n_j)
//!   Read  = T·(RS_R+RS_S) / (readIO_bw · n_j)
//!   Cpu   = (α_build + α_lookup) · T / n_j
//! ```
//!
//! and prefer IJ when (Section 6.2, with `IO_bw = readIO = writeIO` and
//! `m_S = T/c_S`):
//!
//! ```text
//! IO_bw / F  <  2·(RS_R+RS_S) / (γ2 · (n_e/m_S − 1))
//! ```

pub mod calibrate;
pub mod crossover;
pub mod grace;
pub mod indexed;
pub mod params;

pub use calibrate::{calibrate_host, Calibration};
pub use crossover::{choose_algorithm, crossover_ne_cs, prefers_indexed_join, Choice};
pub use grace::GraceHashModel;
pub use indexed::IndexedJoinModel;
pub use params::{CostParams, SystemParams};
