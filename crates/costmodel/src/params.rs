//! The dataset and system parameters of Table 1.

use orv_cluster::ClusterSpec;
use orv_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// Dataset-side parameters (Table 1, upper half).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of tuples in tables `R` and `S` (the paper assumes equal
    /// cardinality and record-level join selectivity 1).
    pub t: f64,
    /// Tuples in an `R` (left/inner) sub-table (`c_R`).
    pub c_r: f64,
    /// Tuples in an `S` (right/outer) sub-table (`c_S`).
    pub c_s: f64,
    /// Number of edges in the sub-table connectivity graph (`n_e`).
    pub n_e: f64,
    /// Record size of `R`, bytes (`RS_R`).
    pub rs_r: f64,
    /// Record size of `S`, bytes (`RS_S`).
    pub rs_s: f64,
}

impl CostParams {
    /// Number of `S` sub-tables, `m_S = T / c_S`.
    pub fn m_s(&self) -> f64 {
        self.t / self.c_s
    }

    /// Number of `R` sub-tables, `m_R = T / c_R`.
    pub fn m_r(&self) -> f64 {
        self.t / self.c_r
    }

    /// The dataset factor Figure 4 sweeps: `n_e · c_S`.
    pub fn ne_cs(&self) -> f64 {
        self.n_e * self.c_s
    }

    /// The earlier works' edge ratio `n_e · c_R · c_S / T²`.
    pub fn edge_ratio(&self) -> f64 {
        self.n_e * self.c_r * self.c_s / (self.t * self.t)
    }

    /// Total bytes that must cross the network: `T · (RS_R + RS_S)`.
    pub fn total_bytes(&self) -> f64 {
        self.t * (self.rs_r + self.rs_s)
    }

    /// Validate positivity.
    pub fn validate(&self) -> Result<()> {
        let fields = [self.t, self.c_r, self.c_s, self.n_e, self.rs_r, self.rs_s];
        if fields.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(Error::Config("all cost parameters must be positive".into()));
        }
        Ok(())
    }
}

/// System-side parameters (Table 1, lower half).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Aggregate transfer bandwidth between storage and join nodes,
    /// `Net_bw(n_s, n_j)`, bytes/s.
    pub net_bw: f64,
    /// Disk read bandwidth per node (`readIO_bw`), bytes/s.
    pub read_io_bw: f64,
    /// Disk write bandwidth per node (`writeIO_bw`), bytes/s.
    pub write_io_bw: f64,
    /// Number of storage nodes (`n_s`).
    pub n_s: f64,
    /// Number of joiner nodes (`n_j`).
    pub n_j: f64,
    /// Seconds per hash-table build operation (`α_build = γ1 / F`).
    pub alpha_build: f64,
    /// Seconds per hash-table lookup (`α_lookup = γ2 / F`).
    pub alpha_lookup: f64,
}

impl SystemParams {
    /// Derive from a cluster description plus the CPU operation counts
    /// `γ1` (per build) and `γ2` (per lookup): `α = γ / (F / work_factor)`.
    pub fn from_cluster(spec: &ClusterSpec, gamma_build: f64, gamma_lookup: f64) -> Self {
        let f = spec.effective_cpu_rate();
        SystemParams {
            net_bw: spec.aggregate_net_bw(),
            read_io_bw: spec.disk_read_bw,
            write_io_bw: spec.disk_write_bw,
            n_s: if spec.shared_fs {
                1.0
            } else {
                spec.n_storage as f64
            },
            n_j: spec.n_compute as f64,
            alpha_build: gamma_build / f,
            alpha_lookup: gamma_lookup / f,
        }
    }

    /// The transfer denominator `min(Net_bw(n_s,n_j), readIO_bw · n_s)`.
    pub fn transfer_bw(&self) -> f64 {
        self.net_bw.min(self.read_io_bw * self.n_s)
    }

    /// Validate positivity.
    pub fn validate(&self) -> Result<()> {
        let fields = [
            self.net_bw,
            self.read_io_bw,
            self.write_io_bw,
            self.n_s,
            self.n_j,
            self.alpha_build,
            self.alpha_lookup,
        ];
        if fields.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(Error::Config(
                "all system parameters must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn dataset() -> CostParams {
        CostParams {
            t: 1.0e6,
            c_r: 4096.0,
            c_s: 4096.0,
            n_e: 244.0,
            rs_r: 16.0,
            rs_s: 16.0,
        }
    }

    #[test]
    fn derived_quantities() {
        let d = dataset();
        assert!((d.m_s() - 244.14).abs() < 0.01);
        assert_eq!(d.ne_cs(), 244.0 * 4096.0);
        assert_eq!(d.total_bytes(), 32.0e6);
        let er = d.edge_ratio();
        assert!((er - 244.0 * 4096.0 * 4096.0 / 1.0e12).abs() < 1e-12);
        d.validate().unwrap();
    }

    #[test]
    fn from_cluster_derives_alphas() {
        let spec = ClusterSpec::paper_testbed(5, 5);
        let s = SystemParams::from_cluster(&spec, 280.0, 230.0);
        assert_eq!(s.n_s, 5.0);
        assert_eq!(s.n_j, 5.0);
        assert!((s.alpha_build - 280.0 / 933.0e6).abs() < 1e-15);
        // Transfer bandwidth capped by the NIC side here.
        assert_eq!(s.transfer_bw(), (5.0 * 11.9e6f64).min(5.0 * 25.0e6));
        s.validate().unwrap();
    }

    #[test]
    fn work_factor_scales_alphas() {
        let mut spec = ClusterSpec::paper_testbed(5, 5);
        spec.cpu_work_factor = 2.0;
        let s = SystemParams::from_cluster(&spec, 280.0, 230.0);
        assert!((s.alpha_build - 2.0 * 280.0 / 933.0e6).abs() < 1e-15);
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let mut d = dataset();
        d.n_e = 0.0;
        assert!(d.validate().is_err());
        let spec = ClusterSpec::paper_testbed(1, 1);
        let mut s = SystemParams::from_cluster(&spec, 1.0, 1.0);
        s.net_bw = f64::INFINITY;
        assert!(s.validate().is_err());
    }

    #[test]
    fn nfs_cluster_has_single_storage_side() {
        let spec = ClusterSpec::paper_testbed_nfs(4);
        let s = SystemParams::from_cluster(&spec, 1.0, 1.0);
        assert_eq!(s.n_s, 1.0);
        assert_eq!(s.transfer_bw(), 11.9e6f64.min(25.0e6));
    }
}
