//! The Indexed Join cost model (Section 5.1).

use crate::params::{CostParams, SystemParams};
use orv_types::Result;

/// Cost terms of one Indexed Join execution, seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexedJoinModel {
    /// `Transfer_IJ`: moving both tables storage → compute once.
    pub transfer: f64,
    /// `BuildHT_IJ = α_build · T / n_j`.
    pub build: f64,
    /// `Lookup_IJ = α_lookup · n_e · c_S / n_j`.
    pub lookup: f64,
}

impl IndexedJoinModel {
    /// Evaluate the model.
    pub fn evaluate(d: &CostParams, s: &SystemParams) -> Result<Self> {
        d.validate()?;
        s.validate()?;
        Ok(IndexedJoinModel {
            transfer: d.total_bytes() / s.transfer_bw(),
            build: s.alpha_build * d.t / s.n_j,
            lookup: s.alpha_lookup * d.n_e * d.c_s / s.n_j,
        })
    }

    /// `Cpu_IJ = BuildHT + Lookup`.
    pub fn cpu(&self) -> f64 {
        self.build + self.lookup
    }

    /// `Total_IJ = Transfer + Cpu`.
    pub fn total(&self) -> f64 {
        self.transfer + self.cpu()
    }

    /// The Section 5.1 extension the paper sketches ("it would not be
    /// difficult to extend it for cache misses as that will only involve
    /// re-retrieving some sub-tables from BDS instances"): a miss rate of
    /// `m ∈ [0, 1)` means a fraction `m` of all sub-table touches must be
    /// re-fetched, so the transfer term scales by `1/(1-0)`-style touch
    /// accounting. Under the ideal schedule each sub-table is touched
    /// `2·n_e / (m_R + m_S)` times on average but fetched once; with miss
    /// rate `m`, the expected fetch count per touch beyond the first is
    /// `m`, giving `Transfer · (1 + m·(touches − 1))`. Hash tables for
    /// re-fetched left sub-tables are also rebuilt.
    pub fn total_with_miss_rate(&self, d: &CostParams, m: f64) -> f64 {
        assert!((0.0..=1.0).contains(&m), "miss rate must be in [0, 1]");
        let touches_per_subtable = 2.0 * d.n_e / (d.m_r() + d.m_s());
        let refetch_factor = 1.0 + m * (touches_per_subtable - 1.0).max(0.0);
        // Rebuild cost: the same fraction of left-side touches rebuilds.
        let rebuild = self.build * m * (d.n_e / d.m_r() - 1.0).max(0.0);
        self.transfer * refetch_factor + self.build + rebuild + self.lookup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_cluster::ClusterSpec;

    fn d() -> CostParams {
        CostParams {
            t: 1.0e6,
            c_r: 4096.0,
            c_s: 4096.0,
            n_e: 244.0,
            rs_r: 16.0,
            rs_s: 16.0,
        }
    }

    fn s() -> SystemParams {
        SystemParams::from_cluster(&ClusterSpec::paper_testbed(5, 5), 280.0, 230.0)
    }

    #[test]
    fn terms_match_formulas() {
        let m = IndexedJoinModel::evaluate(&d(), &s()).unwrap();
        let expect_transfer = 32.0e6 / (5.0f64 * 11.9e6).min(5.0 * 25.0e6);
        assert!((m.transfer - expect_transfer).abs() < 1e-9);
        let alpha_b = 280.0 / 933.0e6;
        assert!((m.build - alpha_b * 1.0e6 / 5.0).abs() < 1e-12);
        let alpha_l = 230.0 / 933.0e6;
        assert!((m.lookup - alpha_l * 244.0 * 4096.0 / 5.0).abs() < 1e-12);
        assert!((m.total() - (m.transfer + m.build + m.lookup)).abs() < 1e-12);
    }

    #[test]
    fn lookup_scales_with_ne_cs() {
        let mut big = d();
        big.n_e *= 8.0;
        let m1 = IndexedJoinModel::evaluate(&d(), &s()).unwrap();
        let m8 = IndexedJoinModel::evaluate(&big, &s()).unwrap();
        assert!((m8.lookup / m1.lookup - 8.0).abs() < 1e-9);
        assert_eq!(m8.transfer, m1.transfer, "transfer insensitive to n_e");
        assert_eq!(m8.build, m1.build);
    }

    #[test]
    fn total_is_monotone_in_t_and_record_size() {
        let base = IndexedJoinModel::evaluate(&d(), &s()).unwrap().total();
        let mut bigger_t = d();
        bigger_t.t *= 2.0;
        bigger_t.n_e *= 2.0; // more sub-tables → proportionally more edges
        assert!(IndexedJoinModel::evaluate(&bigger_t, &s()).unwrap().total() > base);
        let mut fatter = d();
        fatter.rs_r = 84.0;
        assert!(IndexedJoinModel::evaluate(&fatter, &s()).unwrap().total() > base);
    }

    #[test]
    fn more_compute_nodes_shrink_cpu_only() {
        let few = SystemParams { n_j: 2.0, ..s() };
        let many = SystemParams { n_j: 8.0, ..s() };
        let m2 = IndexedJoinModel::evaluate(&d(), &few).unwrap();
        let m8 = IndexedJoinModel::evaluate(&d(), &many).unwrap();
        assert!((m2.cpu() / m8.cpu() - 4.0).abs() < 1e-9);
        assert_eq!(m2.transfer, m8.transfer);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut bad = d();
        bad.t = -1.0;
        assert!(IndexedJoinModel::evaluate(&bad, &s()).is_err());
    }

    #[test]
    fn miss_rate_extension_degrades_gracefully() {
        // A tangled dataset where sub-tables are touched several times.
        let mut tangled = d();
        tangled.n_e = 4096.0; // each sub-table touched ~17×
        let m = IndexedJoinModel::evaluate(&tangled, &s()).unwrap();
        let ideal = m.total_with_miss_rate(&tangled, 0.0);
        assert!((ideal - m.total()).abs() < 1e-9, "m=0 reduces to Total_IJ");
        let half = m.total_with_miss_rate(&tangled, 0.5);
        let worst = m.total_with_miss_rate(&tangled, 1.0);
        assert!(ideal < half && half < worst);
        // With m=1 (no cache at all) every touch transfers: transfer term
        // scales to touches-per-subtable.
        let touches = 2.0 * tangled.n_e / (tangled.m_r() + tangled.m_s());
        assert!(worst >= m.transfer * touches * 0.99);
    }

    #[test]
    fn miss_rate_is_noop_for_one_to_one_graphs() {
        // n_e == m_R == m_S: every sub-table touched once; misses cannot
        // add transfers.
        let m = IndexedJoinModel::evaluate(&d(), &s()).unwrap();
        let one_to_one = d();
        let worst = m.total_with_miss_rate(&one_to_one, 1.0);
        assert!((worst - m.total()).abs() / m.total() < 0.01);
    }

    #[test]
    #[should_panic(expected = "miss rate")]
    fn miss_rate_out_of_range_panics() {
        let m = IndexedJoinModel::evaluate(&d(), &s()).unwrap();
        let _ = m.total_with_miss_rate(&d(), 1.5);
    }
}
