//! The Grace Hash cost model (Section 5.2).

use crate::params::{CostParams, SystemParams};
use orv_types::Result;

/// Cost terms of one Grace Hash execution, seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraceHashModel {
    /// `Transfer_GH` — identical to IJ's transfer term.
    pub transfer: f64,
    /// `Write_GH = T·(RS_R+RS_S) / (writeIO_bw · n_j)`: spilling buckets.
    pub write: f64,
    /// `Read_GH = T·(RS_R+RS_S) / (readIO_bw · n_j)`: reading buckets back.
    pub read: f64,
    /// `Cpu_GH = (α_build + α_lookup) · T / n_j`.
    pub cpu: f64,
}

impl GraceHashModel {
    /// Evaluate the model.
    pub fn evaluate(d: &CostParams, s: &SystemParams) -> Result<Self> {
        d.validate()?;
        s.validate()?;
        let bytes = d.total_bytes();
        Ok(GraceHashModel {
            transfer: bytes / s.transfer_bw(),
            write: bytes / (s.write_io_bw * s.n_j),
            read: bytes / (s.read_io_bw * s.n_j),
            cpu: (s.alpha_build + s.alpha_lookup) * d.t / s.n_j,
        })
    }

    /// `Total_GH = Transfer + Write + Read + Cpu`.
    pub fn total(&self) -> f64 {
        self.transfer + self.write + self.read + self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexed::IndexedJoinModel;
    use orv_cluster::ClusterSpec;

    fn d() -> CostParams {
        CostParams {
            t: 1.0e6,
            c_r: 4096.0,
            c_s: 4096.0,
            n_e: 244.0,
            rs_r: 16.0,
            rs_s: 16.0,
        }
    }

    fn s() -> SystemParams {
        SystemParams::from_cluster(&ClusterSpec::paper_testbed(5, 5), 280.0, 230.0)
    }

    #[test]
    fn terms_match_formulas() {
        let m = GraceHashModel::evaluate(&d(), &s()).unwrap();
        assert!((m.write - 32.0e6 / (20.0e6 * 5.0)).abs() < 1e-9);
        assert!((m.read - 32.0e6 / (25.0e6 * 5.0)).abs() < 1e-9);
        let alpha = (280.0 + 230.0) / 933.0e6;
        assert!((m.cpu - alpha * 1.0e6 / 5.0).abs() < 1e-12);
        assert!((m.total() - (m.transfer + m.write + m.read + m.cpu)).abs() < 1e-12);
    }

    #[test]
    fn transfer_term_identical_to_ij() {
        let gh = GraceHashModel::evaluate(&d(), &s()).unwrap();
        let ij = IndexedJoinModel::evaluate(&d(), &s()).unwrap();
        assert_eq!(gh.transfer, ij.transfer);
    }

    #[test]
    fn insensitive_to_connectivity() {
        let mut tangled = d();
        tangled.n_e *= 100.0;
        let base = GraceHashModel::evaluate(&d(), &s()).unwrap();
        let t = GraceHashModel::evaluate(&tangled, &s()).unwrap();
        assert_eq!(base.total(), t.total(), "GH is insensitive to n_e");
    }

    #[test]
    fn every_term_scales_with_record_size() {
        let mut fat = d();
        fat.rs_r = 32.0;
        fat.rs_s = 32.0;
        let base = GraceHashModel::evaluate(&d(), &s()).unwrap();
        let m = GraceHashModel::evaluate(&fat, &s()).unwrap();
        assert!((m.transfer / base.transfer - 2.0).abs() < 1e-9);
        assert!((m.write / base.write - 2.0).abs() < 1e-9);
        assert!((m.read / base.read - 2.0).abs() < 1e-9);
        assert_eq!(m.cpu, base.cpu, "CPU cost is per-tuple, not per-byte");
    }

    #[test]
    fn io_terms_shrink_with_more_nodes() {
        let few = SystemParams { n_j: 2.0, ..s() };
        let many = SystemParams { n_j: 8.0, ..s() };
        let m2 = GraceHashModel::evaluate(&d(), &few).unwrap();
        let m8 = GraceHashModel::evaluate(&d(), &many).unwrap();
        assert!((m2.write / m8.write - 4.0).abs() < 1e-9);
        assert!((m2.read / m8.read - 4.0).abs() < 1e-9);
    }
}
