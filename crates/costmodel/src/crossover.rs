//! Choosing between IJ and GH — the Section 6.2 analysis.

use crate::grace::GraceHashModel;
use crate::indexed::IndexedJoinModel;
use crate::params::{CostParams, SystemParams};
use orv_types::Result;

/// A planning decision with the evidence behind it.
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    /// Predicted IJ time, seconds.
    pub ij_total: f64,
    /// Predicted GH time, seconds.
    pub gh_total: f64,
    /// True if IJ is predicted faster (ties go to GH, which is less
    /// sensitive to mis-estimated dataset parameters).
    pub indexed_join: bool,
}

impl Choice {
    /// Predicted speedup of the chosen algorithm over the other.
    pub fn speedup(&self) -> f64 {
        if self.indexed_join {
            self.gh_total / self.ij_total
        } else {
            self.ij_total / self.gh_total
        }
    }
}

/// Full model comparison: evaluate both totals.
pub fn choose_algorithm(d: &CostParams, s: &SystemParams) -> Result<Choice> {
    let ij = IndexedJoinModel::evaluate(d, s)?.total();
    let gh = GraceHashModel::evaluate(d, s)?.total();
    Ok(Choice {
        ij_total: ij,
        gh_total: gh,
        indexed_join: ij < gh,
    })
}

/// The closed-form Section 6.2 test, valid under its assumptions
/// (`IO_bw = readIO_bw = writeIO_bw`): prefer IJ iff
///
/// ```text
/// IO_bw / F < 2·(RS_R + RS_S) / (γ2 · (n_e/m_S − 1))
/// ```
///
/// expressed here with `α_lookup = γ2 / F`, i.e.
/// `α_lookup · (n_e/m_S − 1) < 2·(RS_R+RS_S) / IO_bw`. When `n_e ≤ m_S`
/// the left side is non-positive and IJ always wins.
pub fn prefers_indexed_join(d: &CostParams, io_bw: f64, alpha_lookup: f64) -> bool {
    let degree_excess = d.n_e / d.m_s() - 1.0;
    alpha_lookup * degree_excess < 2.0 * (d.rs_r + d.rs_s) / io_bw
}

/// The `n_e · c_S` value at which the Figure 4 curves cross, holding
/// everything else fixed (and `IO_bw = readIO = writeIO`). Setting
/// `Total_IJ = Total_GH`:
///
/// ```text
/// α_lookup·n_e·c_S/n_j = 2·T·(RS_R+RS_S)/(IO_bw·n_j) + α_lookup·T/n_j
/// n_e·c_S = T · (2·(RS_R+RS_S)/(IO_bw·α_lookup) + 1)
/// ```
pub fn crossover_ne_cs(t: f64, rs_r: f64, rs_s: f64, io_bw: f64, alpha_lookup: f64) -> f64 {
    t * (2.0 * (rs_r + rs_s) / (io_bw * alpha_lookup) + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_cluster::ClusterSpec;

    fn base() -> CostParams {
        CostParams {
            t: 1.0e6,
            c_r: 4096.0,
            c_s: 4096.0,
            n_e: 244.0,
            rs_r: 16.0,
            rs_s: 16.0,
        }
    }

    fn sys() -> SystemParams {
        // Uniform IO so the closed form is exact.
        let mut spec = ClusterSpec::paper_testbed(5, 5);
        spec.disk_read_bw = 25.0e6;
        spec.disk_write_bw = 25.0e6;
        SystemParams::from_cluster(&spec, 280.0, 230.0)
    }

    #[test]
    fn ij_wins_low_connectivity_gh_wins_high() {
        let s = sys();
        let low = base(); // n_e ≈ m_S → degree ≈ 1
        let c = choose_algorithm(&low, &s).unwrap();
        assert!(c.indexed_join, "IJ should win at low n_e·c_S");
        assert!(c.speedup() > 1.0);

        let mut high = base();
        high.n_e = 300_000.0; // huge fan-out
        let c = choose_algorithm(&high, &s).unwrap();
        assert!(!c.indexed_join, "GH should win at high n_e·c_S");
    }

    #[test]
    fn closed_form_agrees_with_full_models_under_assumptions() {
        let s = sys();
        let io_bw = s.read_io_bw;
        for n_e in [100.0, 500.0, 2_000.0, 10_000.0, 50_000.0, 200_000.0] {
            let mut d = base();
            d.n_e = n_e;
            let full = choose_algorithm(&d, &s).unwrap().indexed_join;
            let closed = prefers_indexed_join(&d, io_bw, s.alpha_lookup);
            assert_eq!(full, closed, "disagreement at n_e = {n_e}");
        }
    }

    #[test]
    fn crossover_point_separates_regimes() {
        let s = sys();
        let d = base();
        let cross = crossover_ne_cs(d.t, d.rs_r, d.rs_s, s.read_io_bw, s.alpha_lookup);
        // Just below: IJ; just above: GH.
        let mut below = d;
        below.n_e = cross / d.c_s * 0.95;
        let mut above = d;
        above.n_e = cross / d.c_s * 1.05;
        assert!(choose_algorithm(&below, &s).unwrap().indexed_join);
        assert!(!choose_algorithm(&above, &s).unwrap().indexed_join);
    }

    #[test]
    fn faster_cpu_expands_ij_region() {
        // Section 6.2: "for the same dataset, IJ will offer more and more
        // improvement over Grace Hash" as F grows relative to IO.
        let mut d = base();
        d.n_e = 3_000.0; // moderately tangled
        let slow_cpu = sys();
        let mut fast_spec = ClusterSpec::paper_testbed(5, 5);
        fast_spec.disk_read_bw = 25.0e6;
        fast_spec.disk_write_bw = 25.0e6;
        fast_spec.cpu_ops_per_sec = 10.0 * 933.0e6;
        let fast_cpu = SystemParams::from_cluster(&fast_spec, 280.0, 230.0);
        let gain_slow = choose_algorithm(&d, &slow_cpu).unwrap();
        let gain_fast = choose_algorithm(&d, &fast_cpu).unwrap();
        let adv_slow = gain_slow.gh_total - gain_slow.ij_total;
        let adv_fast = gain_fast.gh_total - gain_fast.ij_total;
        assert!(adv_fast > adv_slow, "IJ advantage must grow with F");
    }

    #[test]
    fn degree_one_or_less_always_prefers_ij() {
        // n_e = m_S means every right sub-table probes exactly one hash
        // table — IJ's lookup cost equals GH's and GH still pays bucket IO.
        let d = base(); // n_e = 244 ≈ m_S = 244.1 → excess ≈ 0
        assert!(prefers_indexed_join(&d, 25.0e6, 230.0 / 933.0e6));
        // Even with absurdly slow IO.
        assert!(prefers_indexed_join(&d, 1.0e3, 230.0 / 933.0e6));
    }
}
