//! Property tests on the Section 5 cost models: monotonicity, term
//! structure, and the Section 6.2 closed form's equivalence to the full
//! comparison under its assumptions.

use orv_costmodel::{
    choose_algorithm, crossover_ne_cs, prefers_indexed_join, CostParams, GraceHashModel,
    IndexedJoinModel, SystemParams,
};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = CostParams> {
    (
        1.0e4..1.0e9f64, // t
        1.0e2..1.0e6f64, // c_r
        1.0e2..1.0e6f64, // c_s
        1.0..1.0e6f64,   // n_e
        4.0..128.0f64,   // rs_r
        4.0..128.0f64,   // rs_s
    )
        .prop_map(|(t, c_r, c_s, n_e, rs_r, rs_s)| CostParams {
            t,
            c_r,
            c_s,
            n_e,
            rs_r,
            rs_s,
        })
}

fn system() -> impl Strategy<Value = SystemParams> {
    (
        1.0e6..1.0e10f64,  // net
        1.0e6..1.0e9f64,   // io
        1.0..16.0f64,      // n_s
        1.0..16.0f64,      // n_j
        1.0e-9..1.0e-5f64, // alpha_build
        1.0e-9..1.0e-5f64, // alpha_lookup
    )
        .prop_map(
            |(net_bw, io, n_s, n_j, alpha_build, alpha_lookup)| SystemParams {
                net_bw,
                read_io_bw: io,
                write_io_bw: io, // §6.2's uniform-IO assumption
                n_s: n_s.floor(),
                n_j: n_j.floor(),
                alpha_build,
                alpha_lookup,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn totals_are_positive_and_additive(d in dataset(), s in system()) {
        let ij = IndexedJoinModel::evaluate(&d, &s).unwrap();
        let gh = GraceHashModel::evaluate(&d, &s).unwrap();
        prop_assert!(ij.total() > 0.0);
        prop_assert!((ij.total() - (ij.transfer + ij.build + ij.lookup)).abs() < 1e-9 * ij.total());
        prop_assert!((gh.total() - (gh.transfer + gh.write + gh.read + gh.cpu)).abs() < 1e-9 * gh.total());
        // Shared transfer term.
        prop_assert_eq!(ij.transfer, gh.transfer);
    }

    #[test]
    fn totals_monotone_in_t(d in dataset(), s in system(), k in 1.1..10.0f64) {
        let mut bigger = d;
        bigger.t *= k;
        bigger.n_e *= k; // more sub-tables, proportional edges
        prop_assert!(
            IndexedJoinModel::evaluate(&bigger, &s).unwrap().total()
                > IndexedJoinModel::evaluate(&d, &s).unwrap().total()
        );
        prop_assert!(
            GraceHashModel::evaluate(&bigger, &s).unwrap().total()
                > GraceHashModel::evaluate(&d, &s).unwrap().total()
        );
    }

    #[test]
    fn gh_insensitive_to_ne_ij_monotone(d in dataset(), s in system(), k in 1.5..50.0f64) {
        let mut tangled = d;
        tangled.n_e *= k;
        prop_assert_eq!(
            GraceHashModel::evaluate(&d, &s).unwrap().total(),
            GraceHashModel::evaluate(&tangled, &s).unwrap().total()
        );
        prop_assert!(
            IndexedJoinModel::evaluate(&tangled, &s).unwrap().total()
                > IndexedJoinModel::evaluate(&d, &s).unwrap().total()
        );
    }

    #[test]
    fn closed_form_equivalent_to_full_comparison(d in dataset(), s in system()) {
        // Under write == read == IO and the shared transfer term, the §6.2
        // inequality must agree with Total_IJ < Total_GH exactly.
        let full = choose_algorithm(&d, &s).unwrap().indexed_join;
        let closed = prefers_indexed_join(&d, s.read_io_bw, s.alpha_lookup);
        prop_assert_eq!(full, closed);
    }

    #[test]
    fn crossover_point_is_the_indifference_point(d in dataset(), s in system()) {
        let cross = crossover_ne_cs(d.t, d.rs_r, d.rs_s, s.read_io_bw, s.alpha_lookup);
        // At the crossover, totals agree to floating-point tolerance.
        let mut at = d;
        at.n_e = cross / d.c_s;
        let ij = IndexedJoinModel::evaluate(&at, &s).unwrap().total();
        let gh = GraceHashModel::evaluate(&at, &s).unwrap().total();
        prop_assert!((ij - gh).abs() <= 1e-9 * ij.max(gh), "ij {ij} vs gh {gh}");
    }

    #[test]
    fn miss_rate_extension_is_monotone(d in dataset(), s in system(), m1 in 0.0..1.0f64, m2 in 0.0..1.0f64) {
        let model = IndexedJoinModel::evaluate(&d, &s).unwrap();
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(model.total_with_miss_rate(&d, lo) <= model.total_with_miss_rate(&d, hi) + 1e-12);
    }
}
