//! Property tests: `Value`'s total order obeys the `Ord` laws (with NaNs
//! and mixed types), `Hash` agrees with `Eq`, and the wire encoding is the
//! identity.

use orv_types::{DataType, Value};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::I32),
        any::<i64>().prop_map(Value::I64),
        any::<f32>().prop_map(Value::F32),
        any::<f64>().prop_map(Value::F64),
        Just(Value::F64(f64::NAN)),
        Just(Value::F32(f32::NAN)),
        Just(Value::F64(0.0)),
        Just(Value::F64(-0.0)),
        Just(Value::F64(f64::INFINITY)),
        Just(Value::F64(f64::NEG_INFINITY)),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut s = DefaultHasher::new();
    v.hash(&mut s);
    s.finish()
}

proptest! {
    #[test]
    fn ord_is_total_and_antisymmetric(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(b.cmp(&a), Equal);
                prop_assert_eq!(&a, &b);
            }
        }
    }

    #[test]
    fn ord_is_transitive(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        let mut v = [a, b, c];
        v.sort(); // panics if the comparator is inconsistent
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        prop_assert!(v[0] <= v[2]);
    }

    #[test]
    fn hash_agrees_with_eq(a in value_strategy(), b in value_strategy()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn encode_decode_identity(v in value_strategy()) {
        let mut buf = Vec::new();
        v.encode_le(&mut buf);
        let back = Value::decode_le(v.data_type(), &buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(buf.len(), v.data_type().width());
    }

    #[test]
    fn key_bits_identify_equal_values(a in value_strategy(), b in value_strategy()) {
        if a == b {
            prop_assert_eq!(a.key_bits(), b.key_bits());
        }
    }

    #[test]
    fn int_widening_is_consistent(v in any::<i32>()) {
        prop_assert_eq!(Value::I32(v), Value::I64(v as i64));
        prop_assert_eq!(hash_of(&Value::I32(v)), hash_of(&Value::I64(v as i64)));
    }

    #[test]
    fn type_widths_cover_all(ty in prop_oneof![
        Just(DataType::I32), Just(DataType::I64), Just(DataType::F32), Just(DataType::F64)
    ]) {
        prop_assert!(ty.width() == 4 || ty.width() == 8);
        prop_assert_eq!(DataType::parse(ty.name()), Some(ty));
    }
}
