//! Property tests for interval / bounding-box algebra.

use orv_types::{BoundingBox, Interval};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    // Mix of ordinary, point, and empty intervals over a modest range.
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(a, b)| Interval::new(a, b))
}

fn nonempty_interval() -> impl Strategy<Value = Interval> {
    (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn bbox_strategy() -> impl Strategy<Value = BoundingBox> {
    proptest::collection::vec((0usize..4, nonempty_interval()), 0..4).prop_map(|dims| {
        let names = ["x", "y", "z", "wp"];
        BoundingBox::from_dims(dims.into_iter().map(|(i, iv)| (names[i], iv)))
    })
}

proptest! {
    #[test]
    fn union_is_commutative(a in interval_strategy(), b in interval_strategy()) {
        let (ab, ba) = (a.union(b), b.union(a));
        // Two empty intervals may carry different (lo, hi) representations;
        // they are the same set.
        prop_assert!(ab == ba || (ab.is_empty() && ba.is_empty()));
    }

    #[test]
    fn union_contains_both(a in nonempty_interval(), b in nonempty_interval()) {
        let u = a.union(b);
        prop_assert!(u.lo <= a.lo && u.hi >= a.hi);
        prop_assert!(u.lo <= b.lo && u.hi >= b.hi);
    }

    #[test]
    fn intersect_within_both(a in nonempty_interval(), b in nonempty_interval()) {
        let i = a.intersect(b);
        if !i.is_empty() {
            prop_assert!(i.lo >= a.lo && i.hi <= a.hi);
            prop_assert!(i.lo >= b.lo && i.hi <= b.hi);
        }
    }

    #[test]
    fn overlap_iff_nonempty_intersection(a in nonempty_interval(), b in nonempty_interval()) {
        prop_assert_eq!(a.overlaps(b), !a.intersect(b).is_empty());
    }

    #[test]
    fn union_is_monotone_in_length(a in nonempty_interval(), b in nonempty_interval()) {
        let u = a.union(b);
        prop_assert!(u.length() >= a.length());
        prop_assert!(u.length() >= b.length());
    }

    #[test]
    fn box_overlap_is_symmetric(a in bbox_strategy(), b in bbox_strategy()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn box_union_overlaps_operands(a in bbox_strategy(), b in bbox_strategy()) {
        let u = a.union(&b);
        // The union (an upper bound on the pair's extent) must overlap each
        // operand on every attribute it still bounds.
        prop_assert!(u.overlaps(&a));
        prop_assert!(u.overlaps(&b));
    }

    #[test]
    fn box_intersection_contained(a in bbox_strategy(), b in bbox_strategy()) {
        let i = a.intersect(&b);
        if !i.is_empty() {
            // Any box contained in the intersection overlaps both operands.
            prop_assert!(a.overlaps(&i));
            prop_assert!(b.overlaps(&i));
        }
    }

    #[test]
    fn self_union_is_identity_on_common_attrs(a in bbox_strategy()) {
        let u = a.union(&a);
        for (name, iv) in a.bounded_attrs() {
            prop_assert_eq!(u.get(name), iv);
        }
    }

    #[test]
    fn unbounded_overlaps_everything(a in bbox_strategy()) {
        prop_assert!(BoundingBox::unbounded().overlaps(&a));
    }
}
