//! Table schemas.
//!
//! A virtual table's schema lists its attributes in storage order. Each
//! attribute has a [`DataType`] and a [`AttrRole`]: *coordinate* attributes
//! locate a record in the simulation grid (the paper joins on these), while
//! *scalar* attributes carry physical properties (oil pressure, water
//! pressure, saturation, ...).

use crate::error::{Error, Result};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an attribute is a grid coordinate or a measured property.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AttrRole {
    /// A spatial/grid coordinate (x, y, z, time-step, ...).
    Coordinate,
    /// A physical property at a grid point.
    Scalar,
}

/// A named, typed attribute of a table.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within the schema.
    pub name: String,
    /// Scalar type.
    pub dtype: DataType,
    /// Coordinate or scalar role.
    pub role: AttrRole,
}

impl Attribute {
    /// A coordinate attribute (defaults to `i32`, the grid index type).
    pub fn coord(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            dtype: DataType::I32,
            role: AttrRole::Coordinate,
        }
    }

    /// A scalar attribute of the given type.
    pub fn scalar(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
            role: AttrRole::Scalar,
        }
    }
}

/// An ordered list of attributes describing one virtual table.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema; attribute names must be unique and non-empty.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        if attrs.is_empty() {
            return Err(Error::Schema(
                "schema must have at least one attribute".into(),
            ));
        }
        for (i, a) in attrs.iter().enumerate() {
            if a.name.is_empty() {
                return Err(Error::Schema(format!("attribute {i} has an empty name")));
            }
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::Schema(format!(
                    "duplicate attribute name `{}`",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs })
    }

    /// The oil-reservoir convention: integer coordinates named per
    /// `coords`, followed by `f32` scalar properties named per `scalars`.
    pub fn grid(coords: &[&str], scalars: &[&str]) -> Result<Self> {
        let mut attrs = Vec::with_capacity(coords.len() + scalars.len());
        attrs.extend(coords.iter().map(|c| Attribute::coord(*c)));
        attrs.extend(scalars.iter().map(|s| Attribute::scalar(*s, DataType::F32)));
        Schema::new(attrs)
    }

    /// All attributes in storage order.
    #[inline]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of the named attribute.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Like [`Schema::index_of`] but with a descriptive error.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::Schema(format!("attribute `{name}` not in schema {self}")))
    }

    /// Record size in bytes: the `RS_R` / `RS_S` of the cost models.
    pub fn record_size(&self) -> usize {
        self.attrs.iter().map(|a| a.dtype.width()).sum()
    }

    /// Indices of the coordinate attributes, in storage order.
    pub fn coordinate_indices(&self) -> Vec<usize> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == AttrRole::Coordinate)
            .map(|(i, _)| i)
            .collect()
    }

    /// Byte offset of attribute `idx` within a packed record.
    pub fn offset_of(&self, idx: usize) -> usize {
        self.attrs[..idx].iter().map(|a| a.dtype.width()).sum()
    }

    /// Project onto the named attributes (in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let attrs = names
            .iter()
            .map(|n| {
                self.index_of(n)
                    .map(|i| self.attrs[i].clone())
                    .ok_or_else(|| Error::Schema(format!("cannot project unknown attribute `{n}`")))
            })
            .collect::<Result<Vec<_>>>()?;
        Schema::new(attrs)
    }

    /// Schema of `self ⨝ other`: all of `self`'s attributes, then `other`'s
    /// attributes minus the join keys (which would be duplicates), with
    /// remaining name clashes disambiguated by a `r_` prefix.
    pub fn join(&self, other: &Schema, join_keys: &[&str]) -> Result<Schema> {
        let mut attrs = self.attrs.clone();
        for a in &other.attrs {
            if join_keys.contains(&a.name.as_str()) {
                continue;
            }
            let mut a = a.clone();
            if self.index_of(&a.name).is_some() {
                a.name = format!("r_{}", a.name);
            }
            attrs.push(a);
        }
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let role = match a.role {
                AttrRole::Coordinate => "#",
                AttrRole::Scalar => "",
            };
            write!(f, "{role}{}:{}", a.name, a.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t1() -> Schema {
        Schema::grid(&["x", "y", "z"], &["oilp"]).unwrap()
    }

    fn t2() -> Schema {
        Schema::grid(&["x", "y", "z"], &["wp"]).unwrap()
    }

    #[test]
    fn grid_schema_shape() {
        let s = t1();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.record_size(), 16); // 3 * i32 + 1 * f32
        assert_eq!(s.coordinate_indices(), vec![0, 1, 2]);
        assert_eq!(s.index_of("oilp"), Some(3));
        assert_eq!(s.offset_of(3), 12);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::grid(&["x", "x"], &["p"]);
        assert!(matches!(r, Err(Error::Schema(_))));
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![Attribute::coord("")]).is_err());
    }

    #[test]
    fn projection_preserves_order_and_errors_on_unknown() {
        let s = t1();
        let p = s.project(&["oilp", "x"]).unwrap();
        assert_eq!(p.attrs()[0].name, "oilp");
        assert_eq!(p.attrs()[1].name, "x");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn join_schema_drops_keys_and_disambiguates() {
        let v = t1().join(&t2(), &["x", "y"]).unwrap();
        // x,y,z,oilp + (z → r_z, wp)
        let names: Vec<_> = v.attrs().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "z", "oilp", "r_z", "wp"]);
        assert_eq!(v.record_size(), t1().record_size() + t2().record_size() - 8);
    }

    #[test]
    fn require_reports_schema_in_error() {
        let e = t1().require("bogus").unwrap_err();
        assert!(e.to_string().contains("bogus"));
        assert!(e.to_string().contains("oilp"));
    }

    #[test]
    fn display_marks_coordinates() {
        let s = Schema::grid(&["x"], &["wp"]).unwrap();
        assert_eq!(s.to_string(), "(#x:i32, wp:f32)");
    }

    #[test]
    fn paper_21_attribute_record_size() {
        // Section 2: "a total of 21 attributes", Section 6.1: 4 bytes each.
        let scalars: Vec<String> = (0..18).map(|i| format!("s{i}")).collect();
        let refs: Vec<&str> = scalars.iter().map(|s| s.as_str()).collect();
        let s = Schema::grid(&["x", "y", "z"], &refs).unwrap();
        assert_eq!(s.arity(), 21);
        assert_eq!(s.record_size(), 84);
    }
}
