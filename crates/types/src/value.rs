//! Scalar value model of virtual tables.
//!
//! Oil-reservoir datasets carry integer grid coordinates plus 4-byte float
//! properties (saturation, pressure, velocity components, ...). We support
//! the four fixed-width scalar types those datasets use; every type has a
//! fixed on-disk width so record sizes (`RS_R`, `RS_S` in the cost models)
//! are schema-derivable.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The type of a scalar attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DataType {
    /// 32-bit signed integer (grid coordinates).
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE float (most physical properties; paper uses 4-byte attrs).
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl DataType {
    /// On-disk width in bytes. Fixed per type, so a record's size is the sum
    /// of its attribute widths.
    #[inline]
    pub fn width(self) -> usize {
        match self {
            DataType::I32 | DataType::F32 => 4,
            DataType::I64 | DataType::F64 => 8,
        }
    }

    /// Parse from the spelling used by the layout language.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "i32" => Some(DataType::I32),
            "i64" => Some(DataType::I64),
            "f32" => Some(DataType::F32),
            "f64" => Some(DataType::F64),
            _ => None,
        }
    }

    /// Name as spelled in the layout language.
    pub fn name(self) -> &'static str {
        match self {
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar attribute value.
///
/// `Value` implements a *total* order: NaN floats sort greater than all
/// other floats and equal to each other, so values can key hash tables and
/// sort runs without panics. Cross-type comparison is by numeric value
/// within the int and float families, and ints order before floats across
/// families only via [`Value::as_f64`] comparisons done by callers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value's type tag.
    #[inline]
    pub fn data_type(self) -> DataType {
        match self {
            Value::I32(_) => DataType::I32,
            Value::I64(_) => DataType::I64,
            Value::F32(_) => DataType::F32,
            Value::F64(_) => DataType::F64,
        }
    }

    /// Numeric view as `f64` (lossy for big i64).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
        }
    }

    /// Integer view, if this is an integer value.
    #[inline]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::I32(v) => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F32(_) | Value::F64(_) => None,
        }
    }

    /// A canonical 8-byte key for hashing/equality that identifies the value
    /// within its type family (ints by numeric value, floats by normalized
    /// bit pattern with `-0.0 → +0.0` and all NaNs collapsed).
    #[inline]
    pub fn key_bits(self) -> u64 {
        match self {
            Value::I32(v) => v as i64 as u64,
            Value::I64(v) => v as u64,
            Value::F32(v) => normalize_f64_bits(v as f64),
            Value::F64(v) => normalize_f64_bits(v),
        }
    }

    /// Encode into little-endian bytes at the type's fixed width.
    pub fn encode_le(self, out: &mut Vec<u8>) {
        match self {
            Value::I32(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::I64(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::F32(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::F64(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Decode a value of type `ty` from little-endian bytes.
    ///
    /// Returns `None` if `bytes` is shorter than the type's width.
    pub fn decode_le(ty: DataType, bytes: &[u8]) -> Option<Self> {
        let w = ty.width();
        if bytes.len() < w {
            return None;
        }
        Some(match ty {
            DataType::I32 => Value::I32(i32::from_le_bytes(bytes[..4].try_into().ok()?)),
            DataType::I64 => Value::I64(i64::from_le_bytes(bytes[..8].try_into().ok()?)),
            DataType::F32 => Value::F32(f32::from_le_bytes(bytes[..4].try_into().ok()?)),
            DataType::F64 => Value::F64(f64::from_le_bytes(bytes[..8].try_into().ok()?)),
        })
    }
}

#[inline]
fn normalize_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else if v == 0.0 {
        0.0f64.to_bits() // collapse -0.0 onto +0.0
    } else {
        v.to_bits()
    }
}

#[inline]
fn total_f64(v: f64) -> f64 {
    // Normalize for IEEE total ordering: all NaNs collapse to the canonical
    // positive NaN (which `total_cmp` orders above +∞) and -0.0 onto +0.0,
    // matching `key_bits`/`Hash`.
    if v.is_nan() {
        f64::NAN
    } else if v == 0.0 {
        0.0
    } else {
        v
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order by family first (ints before floats), then by numeric value
        // within the family. Cross-family comparisons carry no semantic
        // meaning for joins (schemas type-check first); they only need to be
        // total and consistent with Eq/Hash, which also tag the family.
        let fam = |v: &Value| matches!(v, Value::F32(_) | Value::F64(_)) as u8;
        fam(self)
            .cmp(&fam(other))
            .then_with(|| match (self, other) {
                // orv-lint: allow(L001) -- fam(a)==fam(b)==0 here, so both are integer variants and as_i64 is total
                (a, b) if fam(a) == 0 => a.as_i64().unwrap().cmp(&b.as_i64().unwrap()),
                (a, b) => total_f64(a.as_f64()).total_cmp(&total_f64(b.as_f64())),
            })
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with Eq: use the family-normalized key plus a
        // family tag (int vs float) since 1i32 == 1i64 but 1.0f32 != 1i32.
        let family = matches!(self, Value::F32(_) | Value::F64(_)) as u8;
        family.hash(state);
        self.key_bits().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn widths_match_types() {
        assert_eq!(DataType::I32.width(), 4);
        assert_eq!(DataType::F32.width(), 4);
        assert_eq!(DataType::I64.width(), 8);
        assert_eq!(DataType::F64.width(), 8);
    }

    #[test]
    fn parse_and_name_roundtrip() {
        for ty in [DataType::I32, DataType::I64, DataType::F32, DataType::F64] {
            assert_eq!(DataType::parse(ty.name()), Some(ty));
        }
        assert_eq!(DataType::parse("u8"), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let vals = [
            Value::I32(-5),
            Value::I64(1 << 40),
            Value::F32(3.25),
            Value::F64(-0.125),
        ];
        for v in vals {
            let mut buf = Vec::new();
            v.encode_le(&mut buf);
            assert_eq!(buf.len(), v.data_type().width());
            let back = Value::decode_le(v.data_type(), &buf).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn decode_short_buffer_is_none() {
        assert!(Value::decode_le(DataType::I64, &[0u8; 7]).is_none());
    }

    #[test]
    fn cross_width_int_equality() {
        assert_eq!(Value::I32(7), Value::I64(7));
        assert_ne!(Value::I32(7), Value::I64(8));
        assert_eq!(h(&Value::I32(7)), h(&Value::I64(7)));
    }

    #[test]
    fn float_total_order_handles_nan_and_neg_zero() {
        let nan = Value::F64(f64::NAN);
        let nan32 = Value::F32(f32::NAN);
        assert_eq!(nan, nan);
        assert_eq!(nan, nan32);
        assert!(Value::F64(1e300) < nan);
        assert_eq!(Value::F64(0.0), Value::F64(-0.0));
        assert_eq!(h(&Value::F64(0.0)), h(&Value::F64(-0.0)));
        assert_eq!(h(&nan), h(&Value::F32(f32::NAN)));
    }

    #[test]
    fn ints_and_floats_are_distinct_families() {
        // 1i32 must not equal 1.0f64 (they live in different hash families).
        assert_ne!(Value::I32(1), Value::F64(1.0));
    }

    #[test]
    fn sort_is_total_and_stable_under_mixture() {
        let mut v = [
            Value::F64(2.5),
            Value::I32(3),
            Value::F32(f32::NAN),
            Value::I64(-1),
            Value::F64(-0.0),
        ];
        v.sort();
        // We only require: no panic, NaN last among float comparisons.
        assert_eq!(*v.last().unwrap(), Value::F32(f32::NAN));
    }
}
