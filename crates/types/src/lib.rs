//! Shared vocabulary for the `orv` workspace.
//!
//! This crate defines the types every other layer speaks:
//!
//! * [`Value`] / [`DataType`] — the scalar value model of virtual tables.
//! * [`Schema`] / [`Attribute`] — table shapes, with coordinate vs scalar
//!   attribute roles (the paper joins tables on coordinate attributes such
//!   as `(x, y)`).
//! * [`Record`] — a row of a virtual table.
//! * [`ColumnBatch`] — a run of rows as fixed-width typed arrays with
//!   null bitmaps; the batch currency of the columnar execution path.
//! * [`BoundingBox`] — n-dimensional lower/upper bounds over attributes,
//!   attached to every chunk and sub-table; drives the page-level join index.
//! * Identifier newtypes ([`TableId`], [`ChunkId`], [`SubTableId`],
//!   [`NodeId`]) used across services.
//! * [`Error`] — the workspace error type.

pub mod batch;
pub mod bbox;
pub mod error;
pub mod ids;
pub mod record;
pub mod schema;
pub mod value;

pub use batch::{ColumnBatch, ColumnData, NullBitmap};
pub use bbox::{BoundingBox, Interval};
pub use error::{Error, Result};
pub use ids::{ChunkId, NodeId, SubTableId, TableId};
pub use record::Record;
pub use schema::{AttrRole, Attribute, Schema};
pub use value::{DataType, Value};
