//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by orv services.
#[derive(Debug)]
pub enum Error {
    /// A named table/view/chunk/attribute was not found.
    NotFound(String),
    /// Schema-level mismatch: wrong type, missing attribute, arity error.
    Schema(String),
    /// Malformed chunk bytes or layout description.
    Format(String),
    /// A query string failed to parse.
    Parse(String),
    /// Logical plan could not be constructed or executed.
    Plan(String),
    /// The cluster runtime failed (a node panicked, a channel closed early).
    Cluster(String),
    /// Invalid configuration (zero nodes, empty grid, ...).
    Config(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A checksum mismatch: stored/transmitted bytes failed verification.
    Integrity(String),
    /// The query was cancelled by its caller.
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded,
    /// Admission control rejected the query: the queue is full, or the
    /// shedder refused the work class under pressure. Carries the
    /// observed queue depth and the configured cap so operators can size
    /// queues from logs instead of guessing, plus a `retry_after_ms`
    /// hint — callers must back off at least that long instead of
    /// re-submitting immediately (retrying into an overloaded service is
    /// how retry storms start).
    Overloaded {
        /// Jobs observed in the queue at rejection time.
        queued: usize,
        /// The configured queue capacity.
        cap: usize,
        /// Suggested minimum client backoff before retrying, in ms.
        retry_after_ms: u64,
    },
    /// A federated query could not reach every chunk it needed: all
    /// replicas of at least one shard were down and strict mode was on.
    /// Carries the number of missing chunks for log-based diagnosis.
    Unavailable {
        /// Chunks whose every replica was unreachable.
        missing_chunks: usize,
        /// Human-readable description of what was unreachable.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
            Error::Format(msg) => write!(f, "format error: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Plan(msg) => write!(f, "plan error: {msg}"),
            Error::Cluster(msg) => write!(f, "cluster error: {msg}"),
            Error::Config(msg) => write!(f, "config error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Integrity(msg) => write!(f, "integrity error: {msg}"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::DeadlineExceeded => write!(f, "query deadline exceeded"),
            Error::Overloaded {
                queued,
                cap,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "service overloaded: {queued} queued (cap {cap}), retry after {retry_after_ms}ms"
                )
            }
            Error::Unavailable {
                missing_chunks,
                detail,
            } => {
                write!(
                    f,
                    "shards unavailable: {missing_chunks} chunks missing: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Shorthand for a [`Error::NotFound`] with a formatted subject.
    pub fn not_found(what: impl Into<String>) -> Self {
        Error::NotFound(what.into())
    }

    /// True for [`Error::Cancelled`] and [`Error::DeadlineExceeded`]:
    /// the caller asked for the unwind, so retries and plan-level
    /// failover must not fight it.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, Error::Cancelled | Error::DeadlineExceeded)
    }

    /// The backoff hint carried by [`Error::Overloaded`], if any.
    /// Federation and service retry loops consult this before deciding
    /// whether (and when) a rejected submission may be re-issued.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Error::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Schema("attribute `wp` missing".into());
        assert_eq!(e.to_string(), "schema error: attribute `wp` missing");
        let e = Error::not_found("table t9");
        assert_eq!(e.to_string(), "not found: table t9");
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        use std::error::Error as _;
        let io = std::io::Error::other("disk on fire");
        let e: Error = io.into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
    }

    #[test]
    fn cancellation_classification() {
        assert!(Error::Cancelled.is_cancellation());
        assert!(Error::DeadlineExceeded.is_cancellation());
        assert!(!Error::Integrity("crc mismatch".into()).is_cancellation());
        assert_eq!(Error::Cancelled.to_string(), "query cancelled");
        assert_eq!(
            Error::DeadlineExceeded.to_string(),
            "query deadline exceeded"
        );
        assert!(Error::Integrity("x".into())
            .to_string()
            .contains("integrity"));
    }

    #[test]
    fn overloaded_is_typed_and_descriptive() {
        let e = Error::Overloaded {
            queued: 8,
            cap: 8,
            retry_after_ms: 25,
        };
        assert!(e.to_string().contains("overloaded"), "{e}");
        assert!(e.to_string().contains("cap 8"), "{e}");
        assert!(e.to_string().contains("8 queued"), "{e}");
        assert!(e.to_string().contains("retry after 25ms"), "{e}");
        assert!(!e.is_cancellation());
        assert_eq!(e.retry_after_ms(), Some(25));
        assert_eq!(Error::Cancelled.retry_after_ms(), None);
    }

    #[test]
    fn unavailable_carries_missing_chunk_count() {
        let e = Error::Unavailable {
            missing_chunks: 3,
            detail: "shard 1 down".into(),
        };
        assert!(e.to_string().contains("3 chunks missing"), "{e}");
        assert!(e.to_string().contains("shard 1 down"), "{e}");
        assert!(!e.is_cancellation());
    }

    #[test]
    fn result_alias_is_usable() {
        fn f(ok: bool) -> Result<u32> {
            if ok {
                Ok(1)
            } else {
                Err(Error::Config("no".into()))
            }
        }
        assert_eq!(f(true).unwrap(), 1);
        assert!(f(false).is_err());
    }
}
