//! Row representation.
//!
//! A [`Record`] is one row of a virtual table: a boxed slice of [`Value`]s
//! positionally matching a [`Schema`]. Bulk data lives in columnar
//! sub-tables (`orv-chunk`); `Record` is the unit that crosses operator and
//! network boundaries (e.g. Grace Hash streams records through `h1`).

use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of a virtual table.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Record {
    values: Box<[Value]>,
}

impl Record {
    /// Build from values. The caller is responsible for positional agreement
    /// with the intended schema; use [`Record::conforms_to`] to verify.
    pub fn new(values: Vec<Value>) -> Self {
        Record {
            values: values.into_boxed_slice(),
        }
    }

    /// All values in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// Number of fields.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if arity and every field's type match `schema`.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.values.len() == schema.arity()
            && self
                .values
                .iter()
                .zip(schema.attrs())
                .all(|(v, a)| v.data_type() == a.dtype)
    }

    /// The values at `key_indices`, used as a join/group key.
    pub fn key(&self, key_indices: &[usize]) -> Vec<Value> {
        key_indices.iter().map(|&i| self.values[i]).collect()
    }

    /// Concatenate fields of `self` with the fields of `other` whose indices
    /// are *not* listed in `skip_right` — the row-level counterpart of
    /// [`Schema::join`].
    pub fn join(&self, other: &Record, skip_right: &[usize]) -> Record {
        let mut out = Vec::with_capacity(self.arity() + other.arity() - skip_right.len());
        out.extend_from_slice(&self.values);
        out.extend(
            other
                .values
                .iter()
                .enumerate()
                .filter(|(i, _)| !skip_right.contains(i))
                .map(|(_, v)| *v),
        );
        Record::new(out)
    }

    /// Project onto the given indices, in order.
    pub fn project(&self, indices: &[usize]) -> Record {
        Record::new(indices.iter().map(|&i| self.values[i]).collect())
    }

    /// Serialized size in bytes under the packed fixed-width encoding.
    pub fn encoded_size(&self) -> usize {
        self.values.iter().map(|v| v.data_type().width()).sum()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Record {
    fn from(v: Vec<Value>) -> Self {
        Record::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn rec(vals: &[i32]) -> Record {
        Record::new(vals.iter().map(|&v| Value::I32(v)).collect())
    }

    #[test]
    fn conformance_checks_types_and_arity() {
        let s = Schema::grid(&["x", "y"], &["wp"]).unwrap();
        let good = Record::new(vec![Value::I32(1), Value::I32(2), Value::F32(0.5)]);
        let wrong_ty = Record::new(vec![Value::I32(1), Value::F32(2.0), Value::F32(0.5)]);
        let wrong_arity = rec(&[1, 2]);
        assert!(good.conforms_to(&s));
        assert!(!wrong_ty.conforms_to(&s));
        assert!(!wrong_arity.conforms_to(&s));
    }

    #[test]
    fn key_extraction() {
        let r = rec(&[10, 20, 30]);
        assert_eq!(r.key(&[0, 2]), vec![Value::I32(10), Value::I32(30)]);
        assert_eq!(r.key(&[]), Vec::<Value>::new());
    }

    #[test]
    fn join_skips_right_indices() {
        let l = rec(&[1, 2, 9]);
        let r = rec(&[1, 2, 7]);
        let j = l.join(&r, &[0, 1]);
        assert_eq!(j, rec(&[1, 2, 9, 7]));
        // Skipping nothing concatenates fully.
        assert_eq!(l.join(&r, &[]).arity(), 6);
    }

    #[test]
    fn project_reorders() {
        let r = rec(&[5, 6, 7]);
        assert_eq!(r.project(&[2, 0]), rec(&[7, 5]));
    }

    #[test]
    fn encoded_size_sums_widths() {
        let r = Record::new(vec![Value::I32(0), Value::F64(0.0)]);
        assert_eq!(r.encoded_size(), 12);
    }
}
