//! Columnar execution batches.
//!
//! A [`ColumnBatch`] holds a run of rows as fixed-width typed arrays —
//! one primitive `Vec` per attribute plus a null bitmap — instead of a
//! `Vec<Record>` of boxed [`Value`] rows. Scans, range filters,
//! projections and hash-join key gathering become tight loops over
//! primitive slices (no per-row allocation, no enum dispatch in the
//! inner loop); rows are materialized back into [`Record`]s only at the
//! service edge, and the conversion is bit-exact in both directions
//! (every supported type is fixed-width; float bit patterns, including
//! NaNs and `-0.0`, survive the round trip untouched).
//!
//! The null bitmap exists for forward compatibility with sparse
//! scientific datasets: the current ingest path never produces nulls
//! (a [`Value`] cannot be null), so [`ColumnBatch::to_records`] refuses
//! batches with nulls rather than invent a sentinel.

use crate::error::{Error, Result};
use crate::record::Record;
use crate::value::{DataType, Value};

/// A per-column validity bitmap: bit set ⇒ the row is null.
///
/// Allocated lazily — batches built from [`Value`]s never allocate one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
}

impl NullBitmap {
    /// An empty bitmap (no nulls).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `row` null.
    pub fn set_null(&mut self, row: usize) {
        let word = row / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (row % 64);
    }

    /// Is `row` null?
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        self.words
            .get(row / 64)
            .is_some_and(|w| w & (1u64 << (row % 64)) != 0)
    }

    /// Number of null rows recorded.
    pub fn null_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no row is null.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// One attribute's values as a primitive array.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// 32-bit floats (bit patterns preserved).
    F32(Vec<f32>),
    /// 64-bit floats (bit patterns preserved).
    F64(Vec<f64>),
}

impl ColumnData {
    /// An empty column of type `ty`.
    pub fn new(ty: DataType) -> Self {
        Self::with_capacity(ty, 0)
    }

    /// An empty column of type `ty` with room for `cap` rows.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        match ty {
            DataType::I32 => ColumnData::I32(Vec::with_capacity(cap)),
            DataType::I64 => ColumnData::I64(Vec::with_capacity(cap)),
            DataType::F32 => ColumnData::F32(Vec::with_capacity(cap)),
            DataType::F64 => ColumnData::F64(Vec::with_capacity(cap)),
        }
    }

    /// The column's element type.
    #[inline]
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::I32(_) => DataType::I32,
            ColumnData::I64(_) => DataType::I64,
            ColumnData::F32(_) => DataType::F32,
            ColumnData::F64(_) => DataType::F64,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F32(v) => v.len(),
            ColumnData::F64(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `v`, type-checked against the column.
    pub fn push(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (ColumnData::I32(col), Value::I32(x)) => col.push(x),
            (ColumnData::I64(col), Value::I64(x)) => col.push(x),
            (ColumnData::F32(col), Value::F32(x)) => col.push(x),
            (ColumnData::F64(col), Value::F64(x)) => col.push(x),
            (col, v) => {
                return Err(Error::Schema(format!(
                    "column of type {} cannot hold {}",
                    col.dtype(),
                    v.data_type()
                )))
            }
        }
        Ok(())
    }

    /// The value at `row` (bit-exact round trip).
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::I32(v) => Value::I32(v[row]),
            ColumnData::I64(v) => Value::I64(v[row]),
            ColumnData::F32(v) => Value::F32(v[row]),
            ColumnData::F64(v) => Value::F64(v[row]),
        }
    }

    /// Numeric view of `row` as `f64` (the predicate domain).
    #[inline]
    pub fn as_f64(&self, row: usize) -> f64 {
        match self {
            ColumnData::I32(v) => v[row] as f64,
            ColumnData::I64(v) => v[row] as f64,
            ColumnData::F32(v) => v[row] as f64,
            ColumnData::F64(v) => v[row],
        }
    }

    /// Append each row's canonical 8-byte join key ([`Value::key_bits`])
    /// to `out` — the hash-join key gather, one typed loop per column.
    pub fn key_bits_into(&self, out: &mut Vec<u64>) {
        match self {
            ColumnData::I32(v) => out.extend(v.iter().map(|&x| Value::I32(x).key_bits())),
            ColumnData::I64(v) => out.extend(v.iter().map(|&x| Value::I64(x).key_bits())),
            ColumnData::F32(v) => out.extend(v.iter().map(|&x| Value::F32(x).key_bits())),
            ColumnData::F64(v) => out.extend(v.iter().map(|&x| Value::F64(x).key_bits())),
        }
    }

    /// A new column holding the rows at `keep`, in order.
    pub fn gather(&self, keep: &[u32]) -> ColumnData {
        match self {
            ColumnData::I32(v) => ColumnData::I32(keep.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::I64(v) => ColumnData::I64(keep.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::F32(v) => ColumnData::F32(keep.iter().map(|&r| v[r as usize]).collect()),
            ColumnData::F64(v) => ColumnData::F64(keep.iter().map(|&r| v[r as usize]).collect()),
        }
    }
}

/// A run of rows in columnar form: typed arrays plus per-column null
/// bitmaps, equal row counts across columns.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<ColumnData>,
    nulls: Vec<NullBitmap>,
}

impl ColumnBatch {
    /// An empty batch with the given column types.
    pub fn new(types: &[DataType]) -> Self {
        Self::with_capacity(types, 0)
    }

    /// An empty batch with room for `cap` rows per column.
    pub fn with_capacity(types: &[DataType], cap: usize) -> Self {
        ColumnBatch {
            columns: types
                .iter()
                .map(|&t| ColumnData::with_capacity(t, cap))
                .collect(),
            nulls: vec![NullBitmap::new(); types.len()],
        }
    }

    /// Build from typed columns of equal length.
    pub fn from_columns(columns: Vec<ColumnData>) -> Result<Self> {
        let nrows = columns.first().map(|c| c.len()).unwrap_or(0);
        if let Some((i, c)) = columns.iter().enumerate().find(|(_, c)| c.len() != nrows) {
            return Err(Error::Schema(format!(
                "batch column {i} has {} rows, expected {nrows}",
                c.len()
            )));
        }
        let nulls = vec![NullBitmap::new(); columns.len()];
        Ok(ColumnBatch { columns, nulls })
    }

    /// Build from row records, type-checked against `types`.
    pub fn from_records(types: &[DataType], records: &[Record]) -> Result<Self> {
        let mut batch = Self::with_capacity(types, records.len());
        for r in records {
            batch.push_record(r)?;
        }
        Ok(batch)
    }

    /// Append one row.
    pub fn push_record(&mut self, r: &Record) -> Result<()> {
        if r.arity() != self.columns.len() {
            return Err(Error::Schema(format!(
                "record of arity {} pushed into batch of {} columns",
                r.arity(),
                self.columns.len()
            )));
        }
        for (col, &v) in self.columns.iter_mut().zip(r.values()) {
            col.push(v)?;
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    #[inline]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True when the batch has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// The column types, in order.
    pub fn dtypes(&self) -> Vec<DataType> {
        self.columns.iter().map(|c| c.dtype()).collect()
    }

    /// Column `idx`.
    #[inline]
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Column `idx`'s null bitmap.
    #[inline]
    pub fn nulls(&self, idx: usize) -> &NullBitmap {
        &self.nulls[idx]
    }

    /// Mark `(row, col)` null.
    pub fn set_null(&mut self, row: usize, col: usize) {
        self.nulls[col].set_null(row);
    }

    /// Total nulls across all columns.
    pub fn null_count(&self) -> usize {
        self.nulls.iter().map(|n| n.null_count()).sum()
    }

    /// The value at `(row, col)`; `None` when null.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Option<Value> {
        if self.nulls[col].is_null(row) {
            None
        } else {
            Some(self.columns[col].value(row))
        }
    }

    /// Materialize row `row` as a [`Record`]. Errors on nulls — a
    /// [`Value`] cannot represent null, and inventing a sentinel would
    /// silently corrupt checksums.
    pub fn record(&self, row: usize) -> Result<Record> {
        let mut vals = Vec::with_capacity(self.columns.len());
        for (ci, col) in self.columns.iter().enumerate() {
            if self.nulls[ci].is_null(row) {
                return Err(Error::Schema(format!(
                    "row {row} column {ci} is null; records cannot hold nulls"
                )));
            }
            vals.push(col.value(row));
        }
        Ok(Record::new(vals))
    }

    /// Materialize every row — the service-edge conversion. Bit-exact:
    /// `ColumnBatch::from_records(t, &b.to_records()?)` reproduces `b`.
    pub fn to_records(&self) -> Result<Vec<Record>> {
        if self.nulls.iter().any(|n| !n.is_empty()) {
            // Fall back to the per-row path for its error message.
            return (0..self.num_rows()).map(|r| self.record(r)).collect();
        }
        let n = self.num_rows();
        let mut rows = Vec::with_capacity(n);
        for r in 0..n {
            rows.push(Record::new(
                self.columns.iter().map(|c| c.value(r)).collect(),
            ));
        }
        Ok(rows)
    }

    /// Append every row of `rows` to `out` as [`Record`]s (the edge
    /// conversion for a run of batches, avoiding intermediate vectors).
    pub fn append_records_to(&self, out: &mut Vec<Record>) -> Result<()> {
        out.reserve(self.num_rows());
        if self.nulls.iter().any(|n| !n.is_empty()) {
            for r in 0..self.num_rows() {
                out.push(self.record(r)?);
            }
            return Ok(());
        }
        for r in 0..self.num_rows() {
            out.push(Record::new(
                self.columns.iter().map(|c| c.value(r)).collect(),
            ));
        }
        Ok(())
    }

    /// Row indices passing `predicate(row)`, as a gather list.
    pub fn mask_to_keep(&self, mut predicate: impl FnMut(usize) -> bool) -> Vec<u32> {
        (0..self.num_rows() as u32)
            .filter(|&r| predicate(r as usize))
            .collect()
    }

    /// A new batch holding the rows at `keep`, in order.
    pub fn gather(&self, keep: &[u32]) -> ColumnBatch {
        let columns = self.columns.iter().map(|c| c.gather(keep)).collect();
        let mut nulls = vec![NullBitmap::new(); self.columns.len()];
        for (ci, src) in self.nulls.iter().enumerate() {
            if src.is_empty() {
                continue;
            }
            for (dst_row, &src_row) in keep.iter().enumerate() {
                if src.is_null(src_row as usize) {
                    nulls[ci].set_null(dst_row);
                }
            }
        }
        ColumnBatch { columns, nulls }
    }

    /// A new batch with the columns at `indices`, in that order (the
    /// columnar projection: per-column memcpy, no row rebuild).
    pub fn project(&self, indices: &[usize]) -> Result<ColumnBatch> {
        let mut columns = Vec::with_capacity(indices.len());
        let mut nulls = Vec::with_capacity(indices.len());
        for &i in indices {
            let col = self
                .columns
                .get(i)
                .ok_or_else(|| Error::Schema(format!("batch has no column {i}")))?;
            columns.push(col.clone());
            nulls.push(self.nulls[i].clone());
        }
        Ok(ColumnBatch { columns, nulls })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ColumnBatch {
        ColumnBatch::from_columns(vec![
            ColumnData::I32(vec![0, 1, 2, 3]),
            ColumnData::F32(vec![0.5, -0.0, f32::NAN, 4.25]),
            ColumnData::F64(vec![1.0, 2.0, 3.0, 4.0]),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let b = sample();
        let rows = b.to_records().unwrap();
        assert_eq!(rows.len(), 4);
        let back = ColumnBatch::from_records(&b.dtypes(), &rows).unwrap();
        // Bit patterns (NaN, -0.0) must survive, not just Value equality.
        match (back.column(1), b.column(1)) {
            (ColumnData::F32(a), ColumnData::F32(c)) => {
                for (x, y) in a.iter().zip(c) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => panic!("column type changed in round trip"),
        }
        assert_eq!(back.num_rows(), b.num_rows());
    }

    #[test]
    fn push_is_type_checked() {
        let mut b = ColumnBatch::new(&[DataType::I32]);
        assert!(b.push_record(&Record::new(vec![Value::F64(1.0)])).is_err());
        assert!(b
            .push_record(&Record::new(vec![Value::I32(1), Value::I32(2)]))
            .is_err());
        b.push_record(&Record::new(vec![Value::I32(1)])).unwrap();
        assert_eq!(b.num_rows(), 1);
    }

    #[test]
    fn ragged_columns_rejected() {
        let err =
            ColumnBatch::from_columns(vec![ColumnData::I32(vec![1, 2]), ColumnData::I32(vec![1])])
                .unwrap_err();
        assert!(err.to_string().contains("expected 2"), "{err}");
    }

    #[test]
    fn gather_and_project() {
        let b = sample();
        let keep = b.mask_to_keep(|r| b.column(0).as_f64(r) >= 1.0 && b.column(0).as_f64(r) <= 2.0);
        assert_eq!(keep, vec![1, 2]);
        let f = b.gather(&keep);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value(0, 0), Some(Value::I32(1)));
        let p = f.project(&[2, 0]).unwrap();
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.value(1, 0), Some(Value::F64(3.0)));
        assert_eq!(p.value(1, 1), Some(Value::I32(2)));
        assert!(b.project(&[9]).is_err());
    }

    #[test]
    fn key_bits_match_value_key_bits() {
        let b = sample();
        for ci in 0..b.num_columns() {
            let mut bits = Vec::new();
            b.column(ci).key_bits_into(&mut bits);
            for (r, &kb) in bits.iter().enumerate() {
                assert_eq!(kb, b.column(ci).value(r).key_bits());
            }
        }
    }

    #[test]
    fn nulls_block_record_materialization_and_survive_gather() {
        let mut b = sample();
        b.set_null(2, 1);
        assert_eq!(b.null_count(), 1);
        assert_eq!(b.value(2, 1), None);
        assert!(b.record(2).is_err());
        assert!(b.to_records().is_err());
        assert!(b.record(0).is_ok());
        let g = b.gather(&[0, 2]);
        assert!(g.nulls(1).is_null(1), "null must follow its row");
        assert!(!g.nulls(1).is_null(0));
        let mut out = Vec::new();
        assert!(g.append_records_to(&mut out).is_err());
    }

    #[test]
    fn empty_batch_behaves() {
        let b = ColumnBatch::new(&[DataType::I64, DataType::F64]);
        assert!(b.is_empty());
        assert_eq!(b.to_records().unwrap(), Vec::<Record>::new());
        assert_eq!(b.gather(&[]).num_rows(), 0);
        assert_eq!(b.dtypes(), vec![DataType::I64, DataType::F64]);
    }
}
