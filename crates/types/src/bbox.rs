//! Bounding boxes over attributes.
//!
//! Every chunk (and the sub-table extracted from it) carries lower/upper
//! bounds on its attributes — e.g. the paper's example
//! `[(0, 0, 0.2, 0.3), (64, 64, 0.8, 0.5)]` for `(x, y, oilp, wp)`.
//! Attributes not present in a box are implicitly unbounded
//! (`[-∞, +∞]`), which is exactly how sub-tables missing an attribute are
//! treated when the page-level join index tests overlap.
//!
//! Bounds are *closed* intervals over `f64` (grid coordinates embed
//! exactly).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A closed interval `[lo, hi]`. `lo > hi` denotes the empty interval.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Interval {
    /// `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// The unbounded interval `[-∞, +∞]`.
    pub fn unbounded() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// A single point `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// True if `lo > hi`.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// True if `v ∈ [lo, hi]`.
    #[inline]
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True if the closed intervals share at least one point.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// Smallest interval containing both.
    #[inline]
    pub fn union(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Largest interval contained in both (possibly empty).
    #[inline]
    pub fn intersect(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Length `hi - lo` (0 for points, negative never — empty gives 0).
    pub fn length(self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Bounds over a set of named attributes; missing attributes are unbounded.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct BoundingBox {
    dims: BTreeMap<String, Interval>,
}

impl BoundingBox {
    /// The box that is unbounded in every attribute.
    pub fn unbounded() -> Self {
        BoundingBox::default()
    }

    /// Build from `(attribute, interval)` pairs.
    pub fn from_dims<I, S>(dims: I) -> Self
    where
        I: IntoIterator<Item = (S, Interval)>,
        S: Into<String>,
    {
        BoundingBox {
            dims: dims.into_iter().map(|(n, iv)| (n.into(), iv)).collect(),
        }
    }

    /// Bound (or re-bound) one attribute.
    pub fn set(&mut self, attr: impl Into<String>, iv: Interval) {
        self.dims.insert(attr.into(), iv);
    }

    /// The interval for `attr`; unbounded if not explicitly set.
    pub fn get(&self, attr: &str) -> Interval {
        self.dims
            .get(attr)
            .copied()
            .unwrap_or_else(Interval::unbounded)
    }

    /// Attributes with explicit bounds.
    pub fn bounded_attrs(&self) -> impl Iterator<Item = (&str, Interval)> {
        self.dims.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of explicitly bounded attributes.
    pub fn num_bounded(&self) -> usize {
        self.dims.len()
    }

    /// True if any explicit interval is empty.
    pub fn is_empty(&self) -> bool {
        self.dims.values().any(|iv| iv.is_empty())
    }

    /// True if the boxes overlap on *every* attribute bounded in either
    /// (missing attributes are unbounded, hence always overlap). This is the
    /// candidate-pair test of the page-level join index, restricted to
    /// `attrs` if given, or over all attributes if `attrs` is `None`.
    pub fn overlaps_on(&self, other: &BoundingBox, attrs: Option<&[&str]>) -> bool {
        match attrs {
            Some(attrs) => attrs.iter().all(|a| self.get(a).overlaps(other.get(a))),
            None => {
                // Only attributes bounded in at least one box can fail.
                self.dims
                    .keys()
                    .chain(other.dims.keys())
                    .all(|a| self.get(a).overlaps(other.get(a)))
            }
        }
    }

    /// Candidate-pair test over all attributes.
    pub fn overlaps(&self, other: &BoundingBox) -> bool {
        self.overlaps_on(other, None)
    }

    /// The paper's pair bound: the union of the two boxes, an upper bound on
    /// the extent of the join result of the two sub-tables. Attributes
    /// missing from either side become unbounded (dropped).
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        let mut dims = BTreeMap::new();
        for (k, iv) in &self.dims {
            if let Some(o) = other.dims.get(k) {
                dims.insert(k.clone(), iv.union(*o));
            }
        }
        BoundingBox { dims }
    }

    /// Intersection of bounds. Attributes bounded in either side are bounded
    /// in the result; used for range-constraint pushdown.
    pub fn intersect(&self, other: &BoundingBox) -> BoundingBox {
        let mut dims = self.dims.clone();
        for (k, iv) in &other.dims {
            let merged = match dims.get(k) {
                Some(mine) => mine.intersect(*iv),
                None => *iv,
            };
            dims.insert(k.clone(), merged);
        }
        BoundingBox { dims }
    }

    /// True if every explicit bound of `self` contains the corresponding
    /// value; `point` maps attribute name → value.
    pub fn contains_point(&self, point: &BTreeMap<String, f64>) -> bool {
        self.dims.iter().all(|(k, iv)| match point.get(k) {
            Some(v) => iv.contains(*v),
            None => true,
        })
    }

    /// True if `other` lies entirely within `self` on `self`'s bounded
    /// attributes.
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        self.dims.iter().all(|(k, iv)| {
            let o = other.get(k);
            !o.is_empty() && iv.lo <= o.lo && o.hi <= iv.hi
        })
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, iv)) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(dims: &[(&str, f64, f64)]) -> BoundingBox {
        BoundingBox::from_dims(dims.iter().map(|&(n, lo, hi)| (n, Interval::new(lo, hi))))
    }

    #[test]
    fn interval_basics() {
        let a = Interval::new(0.0, 4.0);
        let b = Interval::new(4.0, 9.0);
        let c = Interval::new(5.0, 9.0);
        assert!(a.overlaps(b)); // closed: share {4}
        assert!(!a.overlaps(c));
        assert_eq!(a.union(c), Interval::new(0.0, 9.0));
        assert_eq!(a.intersect(b), Interval::point(4.0));
        assert!(a.intersect(c).is_empty());
        assert!(Interval::new(1.0, 0.0).is_empty());
        assert_eq!(Interval::new(1.0, 0.0).length(), 0.0);
    }

    #[test]
    fn empty_interval_neutral_for_union() {
        let e = Interval::new(2.0, 1.0);
        let a = Interval::new(0.0, 1.0);
        assert_eq!(e.union(a), a);
        assert_eq!(a.union(e), a);
        assert!(!e.overlaps(a));
    }

    #[test]
    fn paper_example_boxes() {
        // Lower-left chunk of T1: [(0,0,0.2,0.3), (64,64,0.8,0.5)] on
        // (x, y, oilp, wp).
        let t1 = bb(&[
            ("x", 0.0, 64.0),
            ("y", 0.0, 64.0),
            ("oilp", 0.2, 0.8),
            ("wp", 0.3, 0.5),
        ]);
        // A T2 chunk bounded only on x,y — wp unbounded in x/y terms.
        let t2 = bb(&[("x", 32.0, 96.0), ("y", 0.0, 64.0)]);
        assert!(t1.overlaps_on(&t2, Some(&["x", "y"])));
        // A far chunk does not overlap.
        let t3 = bb(&[("x", 65.0, 128.0), ("y", 0.0, 64.0)]);
        assert!(!t1.overlaps_on(&t3, Some(&["x", "y"])));
        // ... but overlaps if we only consider y.
        assert!(t1.overlaps_on(&t3, Some(&["y"])));
    }

    #[test]
    fn missing_attribute_is_unbounded() {
        let a = bb(&[("x", 0.0, 1.0)]);
        let b = bb(&[("wp", 0.0, 0.1)]);
        // Overlap: x unbounded in b, wp unbounded in a.
        assert!(a.overlaps(&b));
        assert_eq!(a.get("zzz"), Interval::unbounded());
    }

    #[test]
    fn union_keeps_only_common_attrs_and_bounds_result() {
        let a = bb(&[("x", 0.0, 2.0), ("wp", 0.1, 0.2)]);
        let b = bb(&[("x", 4.0, 6.0)]);
        let u = a.union(&b);
        assert_eq!(u.get("x"), Interval::new(0.0, 6.0));
        // wp bounded only in a → unbounded in the union (upper bound).
        assert_eq!(u.get("wp"), Interval::unbounded());
        assert_eq!(u.num_bounded(), 1);
    }

    #[test]
    fn intersect_tightens() {
        let a = bb(&[("x", 0.0, 10.0)]);
        let q = bb(&[("x", 4.0, 20.0), ("y", 0.0, 5.0)]);
        let i = a.intersect(&q);
        assert_eq!(i.get("x"), Interval::new(4.0, 10.0));
        assert_eq!(i.get("y"), Interval::new(0.0, 5.0));
    }

    #[test]
    fn contains_point_and_box() {
        let a = bb(&[("x", 0.0, 10.0), ("y", 0.0, 5.0)]);
        let mut p = BTreeMap::new();
        p.insert("x".to_string(), 3.0);
        p.insert("y".to_string(), 5.0);
        assert!(a.contains_point(&p));
        p.insert("y".to_string(), 5.1);
        assert!(!a.contains_point(&p));
        assert!(a.contains_box(&bb(&[("x", 1.0, 2.0), ("y", 0.0, 1.0)])));
        assert!(!a.contains_box(&bb(&[("x", 1.0, 11.0)])));
        // `other` unbounded on y is NOT contained by a's y-bound.
        assert!(a.contains_box(&bb(&[("x", 1.0, 2.0), ("y", 1.0, 2.0)])));
        assert!(!a.contains_box(&bb(&[("x", 1.0, 2.0)])));
    }

    #[test]
    fn empty_box_detection() {
        let mut a = bb(&[("x", 0.0, 1.0)]);
        assert!(!a.is_empty());
        a.set("x", Interval::new(2.0, 1.0));
        assert!(a.is_empty());
    }
}
