//! Identifier newtypes shared across services.
//!
//! The paper identifies a basic sub-table by the pair `(i, j)` where `i`
//! names the BDS (equivalently the virtual table) and `j` the chunk within
//! it. [`SubTableId`] is exactly that pair; the IJ scheduler sorts these
//! lexicographically.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_newtype!(
    /// Identifies a virtual table (equivalently its BDS).
    TableId,
    "T"
);
id_newtype!(
    /// Identifies a chunk within its table's chunk set.
    ChunkId,
    "c"
);
id_newtype!(
    /// Identifies a cluster node (storage or compute).
    NodeId,
    "n"
);

/// Identifies a basic sub-table: the `(table, chunk)` pair of the paper.
///
/// Ordering is lexicographic on `(table, chunk)`, which is precisely the
/// order the IJ two-stage scheduler uses within a compute node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SubTableId {
    /// The virtual table / BDS this sub-table belongs to.
    pub table: TableId,
    /// The chunk the sub-table was extracted from.
    pub chunk: ChunkId,
}

impl SubTableId {
    /// Construct from raw indices.
    pub fn new(table: impl Into<TableId>, chunk: impl Into<ChunkId>) -> Self {
        SubTableId {
            table: table.into(),
            chunk: chunk.into(),
        }
    }
}

impl fmt::Display for SubTableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.table, self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(TableId(1).to_string(), "T1");
        assert_eq!(ChunkId(42).to_string(), "c42");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(SubTableId::new(1u32, 42u32).to_string(), "(T1,c42)");
    }

    #[test]
    fn subtable_ordering_is_lexicographic() {
        let a = SubTableId::new(0u32, 9u32);
        let b = SubTableId::new(1u32, 0u32);
        let c = SubTableId::new(1u32, 1u32);
        assert!(a < b && b < c);
        let mut v = vec![c, a, b];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn conversions_roundtrip() {
        let t: TableId = 7usize.into();
        assert_eq!(t.index(), 7);
        let c: ChunkId = 7u32.into();
        assert_eq!(c, ChunkId(7));
    }
}
