//! Overload control: cost classes and the deterministic brownout
//! controller.
//!
//! Under 2× load a blind FIFO cap fails two ways at once: cheap
//! interactive queries starve behind expensive scans that were doomed to
//! miss their deadlines anyway, and the rejection pattern is an
//! accident of arrival order rather than a policy. This module supplies
//! the two missing pieces:
//!
//! * **Cost classes** — the §5 cost models predict per-query work
//!   *before* execution; admission classifies each query [`Cheap`] or
//!   [`Expensive`] against a threshold and sheds expensive work first.
//! * **[`BrownoutController`]** — a hysteresis state machine
//!   `Normal → Brownout → Shed` driven by queue depth and the queue-wait
//!   latency signal behind the `lat/queue_wait_secs` histogram. It runs
//!   on a **logical tick clock** (one tick per admission observation, no
//!   ambient time — lint rule L006), so a seeded chaos run produces the
//!   identical transition log every time.
//!
//! Degradation is ordered and reversible: entering `Brownout` disables
//! hedging and sheds expensive work; `Shed` additionally refuses cheap
//! work while the queue stays deep; recovery steps back one state at a
//! time, re-enabling in reverse order. No two transitions can occur
//! within one cooldown window, so the controller cannot oscillate on a
//! noisy depth signal.
//!
//! [`Cheap`]: CostClass::Cheap
//! [`Expensive`]: CostClass::Expensive

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The admission class the predicted §5 cost maps a query into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// Predicted to finish under the fast-lane threshold: jumps the FIFO
    /// and is the last work to be shed.
    Cheap,
    /// Everything else: first to be shed under pressure.
    Expensive,
}

impl CostClass {
    /// Stable label for counters/events.
    pub fn as_str(self) -> &'static str {
        match self {
            CostClass::Cheap => "cheap",
            CostClass::Expensive => "expensive",
        }
    }
}

/// Brownout severity, in escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutState {
    /// Full service: hedging on, all classes admitted to the cap.
    Normal,
    /// Degraded: hedging off, expensive work shed, partials preferred.
    Brownout,
    /// Survival: additionally sheds cheap work while the queue is deep.
    Shed,
}

impl BrownoutState {
    /// Stable label for the transition log and events.
    pub fn as_str(self) -> &'static str {
        match self {
            BrownoutState::Normal => "normal",
            BrownoutState::Brownout => "brownout",
            BrownoutState::Shed => "shed",
        }
    }

    /// Gauge encoding (0/1/2).
    pub fn severity(self) -> u64 {
        match self {
            BrownoutState::Normal => 0,
            BrownoutState::Brownout => 1,
            BrownoutState::Shed => 2,
        }
    }

    fn from_severity(v: u64) -> Self {
        match v {
            0 => BrownoutState::Normal,
            1 => BrownoutState::Brownout,
            _ => BrownoutState::Shed,
        }
    }
}

/// Thresholds and hysteresis for overload control. All depth thresholds
/// are fractions of the service's `queue_cap`.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Predicted cost (seconds) at or under which a query classifies
    /// [`CostClass::Cheap`] and takes the fast lane.
    pub fast_lane_max_secs: f64,
    /// Queue-depth fraction at which `Normal` escalates to `Brownout`.
    pub brownout_enter: f64,
    /// Queue-depth fraction at which `Brownout` escalates to `Shed`.
    pub shed_enter: f64,
    /// Queue-depth fraction at or under which the controller steps one
    /// state back toward `Normal`.
    pub recover: f64,
    /// Minimum logical ticks between any two transitions — the
    /// hysteresis window that forbids oscillation.
    pub cooldown_ticks: u64,
    /// A queue-wait observation at or above this (seconds) arms the
    /// latency alarm: the next tick escalates even if depth alone would
    /// not. This is the `lat/queue_wait_secs` signal feeding back into
    /// admission.
    pub queue_wait_alarm_secs: f64,
    /// Base `retry_after` hint on overload rejections, milliseconds;
    /// doubled per severity level.
    pub retry_after_ms: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            fast_lane_max_secs: 0.05,
            brownout_enter: 0.5,
            shed_enter: 0.875,
            recover: 0.25,
            cooldown_ticks: 16,
            queue_wait_alarm_secs: 1.0,
            retry_after_ms: 25,
        }
    }
}

impl OverloadConfig {
    /// Validate threshold ordering: recover < brownout_enter ≤
    /// shed_enter ≤ 1, so de-escalation and escalation can never be
    /// simultaneously true at one depth.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.recover >= 0.0 && self.recover < self.brownout_enter) {
            return Err(format!(
                "overload recover ({}) must be in [0, brownout_enter)",
                self.recover
            ));
        }
        if !(self.brownout_enter <= self.shed_enter && self.shed_enter <= 1.0) {
            return Err(format!(
                "overload thresholds must order brownout_enter ({}) <= shed_enter ({}) <= 1",
                self.brownout_enter, self.shed_enter
            ));
        }
        if !self.fast_lane_max_secs.is_finite() || self.fast_lane_max_secs < 0.0 {
            return Err("fast_lane_max_secs must be finite and >= 0".into());
        }
        Ok(())
    }

    /// Classify a predicted cost.
    pub fn classify(&self, predicted_secs: f64) -> CostClass {
        if predicted_secs <= self.fast_lane_max_secs {
            CostClass::Cheap
        } else {
            CostClass::Expensive
        }
    }
}

/// One edge of the brownout state machine, as logged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrownoutTransition {
    /// Logical tick (observation count) at which the edge fired.
    pub tick: u64,
    /// State left.
    pub from: BrownoutState,
    /// State entered.
    pub to: BrownoutState,
    /// Queue depth observed at the tick.
    pub depth: usize,
}

impl BrownoutTransition {
    /// One stable log line (`tick:from->to@depth`) — the unit the
    /// replay-identical acceptance test compares.
    pub fn render(&self) -> String {
        format!(
            "{}:{}->{}@{}",
            self.tick,
            self.from.as_str(),
            self.to.as_str(),
            self.depth
        )
    }
}

struct ControllerState {
    /// Tick of the last transition; `None` until the first one.
    last_transition: Option<u64>,
    log: Vec<BrownoutTransition>,
}

/// The deterministic hysteresis state machine gating admission and
/// hedging. One per [`QueryService`](crate::service::QueryService).
///
/// The clock is logical: [`observe`](Self::observe) advances one tick
/// per admission decision. Determinism contract: given the same
/// sequence of `(depth, alarm)` observations, the controller produces
/// the identical transition log — there is no wall-clock or RNG input.
pub struct BrownoutController {
    cfg: OverloadConfig,
    queue_cap: usize,
    /// Current severity (0/1/2); read lock-free on hot paths.
    severity: AtomicU64,
    /// Logical clock: observations so far.
    tick: AtomicU64,
    /// Latched queue-wait alarm, consumed by the next observation.
    wait_alarm: AtomicBool,
    state: Mutex<ControllerState>,
}

impl BrownoutController {
    /// Controller for a queue of `queue_cap` slots.
    pub fn new(cfg: OverloadConfig, queue_cap: usize) -> Self {
        BrownoutController {
            cfg,
            queue_cap,
            severity: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            wait_alarm: AtomicBool::new(false),
            state: Mutex::new(ControllerState {
                last_transition: None,
                log: Vec::new(),
            }),
        }
    }

    /// The thresholds this controller runs.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Current state (lock-free).
    pub fn state(&self) -> BrownoutState {
        BrownoutState::from_severity(self.severity.load(Ordering::Acquire))
    }

    /// Logical ticks elapsed (observations so far).
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Acquire)
    }

    /// Whether hedged requests may be issued: only at full service.
    pub fn hedging_enabled(&self) -> bool {
        self.state() == BrownoutState::Normal
    }

    /// Whether degraded (partial) results should be preferred over
    /// strict failure while the controller is not at full service.
    pub fn prefer_partial(&self) -> bool {
        self.state() != BrownoutState::Normal
    }

    /// Feed one queue-wait measurement (seconds) — the same values the
    /// `lat/queue_wait_secs` histogram records. At or above the alarm
    /// threshold it arms a one-shot escalation signal for the next tick.
    pub fn note_queue_wait(&self, secs: f64) {
        if secs >= self.cfg.queue_wait_alarm_secs {
            self.wait_alarm.store(true, Ordering::Release);
        }
    }

    /// Advance one logical tick with the current queue depth; returns
    /// the (possibly new) state and the transition if one fired.
    ///
    /// Transitions move one severity step at a time and never fire
    /// within `cooldown_ticks` of the previous one.
    pub fn observe(&self, depth: usize) -> (BrownoutState, Option<BrownoutTransition>) {
        let tick = self.tick.fetch_add(1, Ordering::AcqRel) + 1;
        let mut st = self.state.lock();
        let cur = self.state();
        let cap = self.queue_cap as f64;
        let d = depth as f64;
        let alarm = self.wait_alarm.swap(false, Ordering::AcqRel);
        let next = match cur {
            BrownoutState::Normal if d >= self.cfg.brownout_enter * cap || alarm => {
                BrownoutState::Brownout
            }
            BrownoutState::Brownout if d >= self.cfg.shed_enter * cap => BrownoutState::Shed,
            BrownoutState::Brownout if d <= self.cfg.recover * cap && !alarm => {
                BrownoutState::Normal
            }
            BrownoutState::Shed if d <= self.cfg.recover * cap && !alarm => BrownoutState::Brownout,
            _ => cur,
        };
        if next == cur {
            return (cur, None);
        }
        let cooled = st
            .last_transition
            .is_none_or(|last| tick.saturating_sub(last) >= self.cfg.cooldown_ticks);
        if !cooled {
            return (cur, None);
        }
        self.severity.store(next.severity(), Ordering::Release);
        st.last_transition = Some(tick);
        let transition = BrownoutTransition {
            tick,
            from: cur,
            to: next,
            depth,
        };
        st.log.push(transition);
        (next, Some(transition))
    }

    /// Whether admission should accept a query of `class` at `depth`,
    /// severity aside from the hard queue cap (checked separately).
    pub fn allows(&self, class: CostClass, depth: usize) -> bool {
        let cap = self.queue_cap as f64;
        match (self.state(), class) {
            (BrownoutState::Normal, _) => true,
            (BrownoutState::Brownout, CostClass::Cheap) => true,
            (BrownoutState::Brownout, CostClass::Expensive) => false,
            // Survival mode: cheap work still lands while the queue has
            // drained below the brownout line; expensive never does.
            (BrownoutState::Shed, CostClass::Cheap) => d_lt(depth, self.cfg.brownout_enter * cap),
            (BrownoutState::Shed, CostClass::Expensive) => false,
        }
    }

    /// The `retry_after` hint for a rejection at the current severity:
    /// the base hint doubled per severity level.
    pub fn retry_after_ms(&self) -> u64 {
        self.cfg.retry_after_ms << self.state().severity().min(8)
    }

    /// The transition log so far (replay-comparable).
    pub fn transitions(&self) -> Vec<BrownoutTransition> {
        self.state.lock().log.clone()
    }

    /// The transition log as one line per edge — what the acceptance
    /// test asserts replays identically from the seed.
    pub fn transition_log(&self) -> String {
        self.state
            .lock()
            .log
            .iter()
            .map(BrownoutTransition::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn d_lt(depth: usize, bound: f64) -> bool {
    (depth as f64) < bound
}

impl std::fmt::Debug for BrownoutController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrownoutController")
            .field("state", &self.state())
            .field("tick", &self.tick())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        OverloadConfig {
            cooldown_ticks: 4,
            ..OverloadConfig::default()
        }
    }

    #[test]
    fn config_validates_threshold_ordering() {
        assert!(OverloadConfig::default().validate().is_ok());
        let bad = OverloadConfig {
            recover: 0.6,
            ..OverloadConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = OverloadConfig {
            brownout_enter: 0.9,
            shed_enter: 0.5,
            ..OverloadConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = OverloadConfig {
            fast_lane_max_secs: f64::NAN,
            ..OverloadConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn classification_uses_the_fast_lane_threshold() {
        let c = OverloadConfig::default();
        assert_eq!(c.classify(0.0), CostClass::Cheap);
        assert_eq!(c.classify(0.05), CostClass::Cheap);
        assert_eq!(c.classify(0.051), CostClass::Expensive);
        assert_eq!(CostClass::Cheap.as_str(), "cheap");
    }

    #[test]
    fn escalates_one_step_at_a_time_in_order() {
        let ctl = BrownoutController::new(cfg(), 8);
        assert_eq!(ctl.state(), BrownoutState::Normal);
        assert!(ctl.hedging_enabled());
        // Depth 8/8 exceeds both thresholds, but the first edge still
        // only reaches Brownout.
        let (s, t) = ctl.observe(8);
        assert_eq!(s, BrownoutState::Brownout);
        assert_eq!(t.unwrap().from, BrownoutState::Normal);
        assert!(!ctl.hedging_enabled());
        assert!(ctl.prefer_partial());
        // Cooldown: no second edge until cooldown_ticks have elapsed
        // since the first (ticks 2-4 are blocked; tick 5 may fire).
        for _ in 0..3 {
            let (s, t) = ctl.observe(8);
            assert_eq!(s, BrownoutState::Brownout);
            assert!(t.is_none());
        }
        let (s, _) = ctl.observe(8);
        assert_eq!(s, BrownoutState::Shed);
        assert!(!ctl.hedging_enabled());
    }

    #[test]
    fn hysteresis_never_oscillates_within_one_cooldown_window() {
        // Property: for an adversarial depth sequence flapping across
        // both thresholds every tick, consecutive transitions are always
        // >= cooldown_ticks apart.
        let cool = 5u64;
        let ctl = BrownoutController::new(
            OverloadConfig {
                cooldown_ticks: cool,
                ..OverloadConfig::default()
            },
            16,
        );
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..500 {
            // splitmix-ish deterministic "noise" across the full range.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ctl.observe((x >> 60) as usize + ((x >> 32) as usize % 17));
        }
        let log = ctl.transitions();
        assert!(!log.is_empty(), "adversarial input must transition");
        for w in log.windows(2) {
            assert!(
                w[1].tick - w[0].tick >= cool,
                "transitions at ticks {} and {} violate cooldown {}",
                w[0].tick,
                w[1].tick,
                cool
            );
            // Edges are always one severity step.
            assert_eq!(
                (w[0].to.severity() as i64 - w[0].from.severity() as i64).abs(),
                1
            );
        }
    }

    #[test]
    fn recovery_steps_down_in_order() {
        let ctl = BrownoutController::new(cfg(), 8);
        ctl.observe(8);
        for _ in 0..4 {
            ctl.observe(8);
        }
        assert_eq!(ctl.state(), BrownoutState::Shed);
        // Drain the queue: recovery passes back through Brownout.
        for _ in 0..4 {
            ctl.observe(0);
        }
        assert_eq!(ctl.state(), BrownoutState::Brownout);
        assert!(!ctl.hedging_enabled(), "hedging re-enables last");
        for _ in 0..4 {
            ctl.observe(0);
        }
        assert_eq!(ctl.state(), BrownoutState::Normal);
        assert!(ctl.hedging_enabled());
        let log = ctl.transitions();
        let edges: Vec<_> = log.iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            edges,
            vec![
                (BrownoutState::Normal, BrownoutState::Brownout),
                (BrownoutState::Brownout, BrownoutState::Shed),
                (BrownoutState::Shed, BrownoutState::Brownout),
                (BrownoutState::Brownout, BrownoutState::Normal),
            ]
        );
        assert!(ctl.transition_log().contains("->shed@"));
    }

    #[test]
    fn same_observation_sequence_replays_the_same_log() {
        let depths: Vec<usize> = (0..200)
            .map(|i: usize| (i.wrapping_mul(37) % 11) + if i.is_multiple_of(3) { 6 } else { 0 })
            .collect();
        let run = |seq: &[usize]| {
            let ctl = BrownoutController::new(cfg(), 8);
            for &d in seq {
                ctl.observe(d);
            }
            ctl.transition_log()
        };
        assert_eq!(run(&depths), run(&depths));
    }

    #[test]
    fn shedding_policy_rejects_expensive_first() {
        let ctl = BrownoutController::new(cfg(), 8);
        assert!(ctl.allows(CostClass::Expensive, 7));
        ctl.observe(8); // → Brownout
        assert!(!ctl.allows(CostClass::Expensive, 7));
        assert!(ctl.allows(CostClass::Cheap, 7));
        for _ in 0..4 {
            ctl.observe(8); // → Shed after cooldown
        }
        assert_eq!(ctl.state(), BrownoutState::Shed);
        assert!(!ctl.allows(CostClass::Expensive, 0));
        assert!(ctl.allows(CostClass::Cheap, 1), "cheap lands once drained");
        assert!(!ctl.allows(CostClass::Cheap, 7));
        // retry_after scales with severity.
        assert_eq!(
            ctl.retry_after_ms(),
            ctl.config().retry_after_ms * 4,
            "shed doubles the hint twice"
        );
    }

    #[test]
    fn queue_wait_alarm_escalates_without_depth() {
        let ctl = BrownoutController::new(cfg(), 8);
        ctl.note_queue_wait(0.5); // below alarm: no-op
        let (s, _) = ctl.observe(0);
        assert_eq!(s, BrownoutState::Normal);
        ctl.note_queue_wait(2.0); // armed
        let (s, t) = ctl.observe(0);
        assert_eq!(s, BrownoutState::Brownout);
        assert_eq!(t.unwrap().depth, 0);
        // The alarm is one-shot: with no new arm and an empty queue the
        // controller recovers after cooldown.
        for _ in 0..4 {
            ctl.observe(0);
        }
        assert_eq!(ctl.state(), BrownoutState::Normal);
    }
}
