//! Aggregation accumulators — the aggregation DDS the paper lists as
//! future work ("view definition may involve aggregation operations such
//! as AVG or SUM").

use crate::ast::AggFunc;
use orv_types::Value;

/// A running aggregate over one column (or over rows, for `COUNT`).
#[derive(Clone, Debug)]
pub struct Accumulator {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one value (`None` for `COUNT(*)`, which only counts rows).
    pub fn update(&mut self, v: Option<Value>) {
        self.count += 1;
        if let Some(v) = v {
            let x = v.as_f64();
            self.sum += x;
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Fold another accumulator of the *same* function into this one —
    /// the partial-aggregate merge of federated re-aggregation. Exact for
    /// COUNT/MIN/MAX; SUM/AVG merge their running sums, so the result is
    /// deterministic for a fixed partitioning but may differ from the
    /// single-pass value in the last floating-point bits.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Produce the final value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::I64(self.count as i64),
            AggFunc::Sum => Value::F64(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::F64(f64::NAN)
                } else {
                    Value::F64(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => Value::F64(self.min),
            AggFunc::Max => Value::F64(self.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: AggFunc, vals: &[f64]) -> Value {
        let mut a = Accumulator::new(f);
        for &v in vals {
            a.update(Some(Value::F64(v)));
        }
        a.finish()
    }

    #[test]
    fn sum_avg_min_max() {
        assert_eq!(run(AggFunc::Sum, &[1.0, 2.0, 3.0]), Value::F64(6.0));
        assert_eq!(run(AggFunc::Avg, &[1.0, 2.0, 3.0]), Value::F64(2.0));
        assert_eq!(run(AggFunc::Min, &[3.0, -1.0, 2.0]), Value::F64(-1.0));
        assert_eq!(run(AggFunc::Max, &[3.0, -1.0, 2.0]), Value::F64(3.0));
    }

    #[test]
    fn count_ignores_values() {
        let mut a = Accumulator::new(AggFunc::Count);
        a.update(None);
        a.update(None);
        a.update(Some(Value::I32(5)));
        assert_eq!(a.finish(), Value::I64(3));
    }

    #[test]
    fn merge_equals_single_pass() {
        let vals = [3.0, -1.0, 2.0, 7.5, 0.25, -4.0];
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let single = run(f, &vals);
            // Split into uneven partials, merge, compare.
            let mut left = Accumulator::new(f);
            let mut right = Accumulator::new(f);
            for &v in &vals[..2] {
                left.update(Some(Value::F64(v)));
            }
            for &v in &vals[2..] {
                right.update(Some(Value::F64(v)));
            }
            left.merge(&right);
            assert_eq!(left.finish(), single, "{f:?} merge diverged");
        }
        // Merging an empty partial is the identity.
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(Some(Value::F64(5.0)));
        a.merge(&Accumulator::new(AggFunc::Sum));
        assert_eq!(a.finish(), Value::F64(5.0));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(Accumulator::new(AggFunc::Count).finish(), Value::I64(0));
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Value::F64(0.0));
        // AVG of nothing is NaN (and NaN == NaN under our total order).
        assert_eq!(
            Accumulator::new(AggFunc::Avg).finish(),
            Value::F64(f64::NAN)
        );
    }
}
