//! Derived Data Sources: views, a SQL subset, and the Query Planning
//! Service.
//!
//! This crate is the top of the paper's Figure 2 stack. It lets a client
//! define join-based views over the virtual tables exposed by BDSs
//! (`CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y)`), run range and
//! aggregation queries against tables and views, and leaves the choice of
//! join QES (Indexed Join vs Grace Hash) to the planner, which evaluates
//! the Section 5 cost models against the dataset's metadata.
//!
//! ```
//! use orv_bds::{generate_dataset, DatasetSpec, Deployment};
//! use orv_query::QueryEngine;
//!
//! let d = Deployment::in_memory(2);
//! for (name, seed) in [("t1", 1), ("t2", 2)] {
//!     let spec = DatasetSpec::builder(name)
//!         .grid([8, 8, 1])
//!         .partition([4, 4, 1])
//!         .scalar_attrs(if seed == 1 { &["oilp"] } else { &["wp"] })
//!         .seed(seed)
//!         .build();
//!     generate_dataset(&spec, &d).unwrap();
//! }
//! let mut engine = QueryEngine::new(d);
//! engine.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)").unwrap();
//! let result = engine
//!     .execute("SELECT * FROM v1 WHERE x IN [0, 3]")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 32);
//! ```

pub mod agg;
pub mod ast;
pub mod engine;
pub mod exec;
pub mod federation;
pub mod lexer;
pub mod overload;
pub mod parser;
pub mod plan;
pub mod service;

pub use ast::{AggFunc, JoinClause, Query, RangePred, SelectItem, Statement, ViewDef};
pub use engine::{algorithm_slug, Catalog, QueryEngine, QueryResult, ScanSpec};
pub use federation::{FederatedResponse, FederatedService, FederationConfig, PartialResult};
pub use overload::{
    BrownoutController, BrownoutState, BrownoutTransition, CostClass, OverloadConfig,
};
pub use parser::parse_statement;
pub use plan::{PlanExplain, Planner};
pub use service::{QueryService, QueryTicket, ServiceConfig, ServiceCounters};
