//! Federated query serving with shard-level fault tolerance.
//!
//! The paper's services are singletons: one Query Processing Service
//! fronts the whole dataset. This module shards that front-end the way a
//! production deployment would: `N` [`QueryService`] instances each own a
//! slice of the chunk catalog under **replicated placement** (every chunk
//! lives on `R >= 2` distinct shards, assigned by rendezvous hashing —
//! [`orv_metadata::Placement`]), and a [`FederatedService`] router plans
//! each query, consults the MetaData Service's R-tree for the chunks its
//! range touches, fans sub-queries out to owning shards, and merges the
//! partial results (re-aggregation for COUNT/SUM/AVG/MIN/MAX, in-order
//! concatenation with dedup-by-chunk for scans).
//!
//! Robustness machinery, all deterministic under seeded fault plans:
//!
//! - **Failover**: a failed sub-query re-routes its unfilled chunks to a
//!   replica that has not been tried yet, bounded per chunk by
//!   [`RecoveryPolicy::max_attempts`].
//! - **Hedged requests**: when a sub-query stays unanswered past
//!   `hedge_after`, the router re-issues its chunks to another replica and
//!   takes the first checksum-verified answer, cancelling the loser.
//! - **Circuit breaker**: per shard, `trip_after` *consecutive* failures
//!   open the breaker for `cooldown_ticks` logical ticks (the tick is the
//!   dispatched-flight counter, not wall clock, so seeded replays see the
//!   same trips); one half-open probe then closes or re-opens it. An open
//!   breaker demotes a shard in replica preference — it never makes data
//!   unreachable while an untried replica remains.
//! - **Graceful degradation**: chunks whose every replica failed are
//!   reported in a typed [`PartialResult`] carrying the exact missing
//!   chunk set and a completeness fraction; `strict` mode turns the same
//!   situation into [`Error::Unavailable`].
//! - **Deadline-budget propagation**: when the root query carries a
//!   deadline, every sub-query's token derives from the *same* absolute
//!   deadline minus one `hop_margin` ([`DeadlineBudget::shrink`]) — the
//!   budget only ever shrinks across hops, leaving the router time to
//!   collect, merge and degrade after a child gives up.
//! - **Retry budgets**: every failover, hedge and overload re-issue
//!   must draw a token from the failed/slow shard's [`RetryBudget`]
//!   (refilled only by successful completions). A dry bucket degrades
//!   to the partial path instead of amplifying the overload that caused
//!   the failure.
//! - **Overload backoff**: a shard rejecting with [`Error::Overloaded`]
//!   is *not* a fault — no breaker trip; the router backs off honoring
//!   the rejection's `retry_after_ms` hint (bounded) before re-issuing.
//! - **Brownout awareness**: hedging is disabled while any shard's
//!   brownout controller has left `Normal`, and failover re-issue stops
//!   entirely under `Shed` — degraded answers over added load.
//!
//! Merging is exact for scans and COUNT/MIN/MAX; SUM/AVG re-aggregation
//! is deterministic for a fixed partitioning but may differ from the
//! single-pass value in the last floating-point bits (see
//! [`Accumulator::merge`](crate::agg::Accumulator::merge)).

use crate::ast::{predicates_to_bbox, Query, SelectItem, Statement};
use crate::engine::{QueryEngine, QueryResult, ScanSpec};
use crate::exec::{column_names, merge_aggregate, order_and_limit, project, rows_checksum, RowSet};
use crate::overload::BrownoutState;
use crate::parser::parse_statement;
use crate::service::{QueryService, QueryTicket, ServiceConfig};
use orv_bds::Deployment;
use orv_cluster::{
    CancelToken, DeadlineBudget, FaultInjector, RecoveryPolicy, RetryBudget, WaitBudget,
};
use orv_metadata::Placement;
use orv_obs::{
    names, FlightRecorder, JsonValue, Obs, QueryTrace, Stopwatch, TraceId, TraceOutcome,
};
use orv_types::{ChunkId, Error, Record, Result, SubTableId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// How long the router blocks on any single in-flight sub-query per poll
/// rotation. Purely a caller-side wait quantum (like
/// [`QueryTicket::wait_timeout`]); it never steers execution.
const POLL_SLICE: Duration = Duration::from_millis(2);

fn relock<T>(r: std::result::Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Sizing and robustness knobs for a [`FederatedService`].
#[derive(Clone, Debug)]
pub struct FederationConfig {
    /// Number of shard engines.
    pub shards: usize,
    /// Replicas per chunk (`1 <= replication <= shards`).
    pub replication: usize,
    /// Seed of the rendezvous placement (a pure function of this seed,
    /// the chunk id and the shard count).
    pub placement_seed: u64,
    /// Admission/pool sizing applied to every shard's [`QueryService`].
    pub service: ServiceConfig,
    /// Re-issue a sub-query to another replica once it has been in flight
    /// this long. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Attempt cap (per chunk, and per whole-query route) plus backoff
    /// shape for the whole-query retry path.
    pub recovery: RecoveryPolicy,
    /// Consecutive sub-query failures that open a shard's breaker.
    pub trip_after: u32,
    /// Logical ticks (dispatched flights) an open breaker stays open
    /// before its half-open probe.
    pub cooldown_ticks: u64,
    /// `true`: missing chunks fail the query with [`Error::Unavailable`]
    /// instead of degrading to a [`PartialResult`].
    pub strict: bool,
    /// Deadline slack subtracted per fan-out hop: a sub-query's budget
    /// is the root budget shrunk by this, so the router always has a
    /// margin to collect/merge/degrade after the child's deadline.
    pub hop_margin: Duration,
    /// Per-shard retry-budget capacity (whole tokens): the burst of
    /// failovers/hedges/overload-retries a shard may absorb before
    /// successes must pay for more. `0` disables retries entirely.
    pub retry_budget: u64,
    /// Milli-tokens (1/1000ths of a retry) each successful sub-query
    /// earns back into its shard's bucket.
    pub retry_earn_milli: u64,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            shards: 3,
            replication: 2,
            placement_seed: 0x0bad_5eed_f00d_cafe,
            service: ServiceConfig::default(),
            hedge_after: None,
            recovery: RecoveryPolicy::default(),
            trip_after: 3,
            cooldown_ticks: 8,
            strict: false,
            hop_margin: Duration::from_millis(25),
            retry_budget: 8,
            retry_earn_milli: 100,
        }
    }
}

/// A query answer missing some chunks: the rows that *were* reachable,
/// plus an exact account of what was not.
#[derive(Debug)]
pub struct PartialResult {
    /// The merged answer over every chunk that responded.
    pub result: QueryResult,
    /// `answered_chunks / targeted_chunks`, in `[0, 1)`.
    pub completeness: f64,
    /// Chunks whose every (untried-replica) route failed, ascending.
    pub missing_chunks: Vec<ChunkId>,
}

/// What a federated query returns: the full answer, or a degraded one
/// that says exactly how degraded it is.
#[derive(Debug)]
pub enum FederatedResponse {
    /// Every targeted chunk answered.
    Complete(QueryResult),
    /// Some chunks were unreachable on every allowed route.
    Partial(PartialResult),
}

impl FederatedResponse {
    /// Whether every targeted chunk contributed.
    pub fn is_complete(&self) -> bool {
        matches!(self, FederatedResponse::Complete(_))
    }

    /// The merged rows, regardless of completeness.
    pub fn result(&self) -> &QueryResult {
        match self {
            FederatedResponse::Complete(r) => r,
            FederatedResponse::Partial(p) => &p.result,
        }
    }

    /// Consume into the merged [`QueryResult`], discarding the
    /// completeness report.
    pub fn into_result(self) -> QueryResult {
        match self {
            FederatedResponse::Complete(r) => r,
            FederatedResponse::Partial(p) => p.result,
        }
    }
}

/// Per-shard circuit breaker over the router's logical clock.
enum BreakerState {
    Closed,
    Open { until_tick: u64 },
    HalfOpen,
}

struct ShardHealth {
    state: Mutex<(BreakerState, u32)>, // (state, consecutive failures)
}

impl ShardHealth {
    fn new() -> Self {
        ShardHealth {
            state: Mutex::new((BreakerState::Closed, 0)),
        }
    }

    /// Whether routing *prefers* this shard right now. An `Open` breaker
    /// whose cooldown has elapsed transitions to `HalfOpen` and admits
    /// exactly one probe (subsequent calls say no until the probe
    /// resolves).
    fn allows(&self, now_tick: u64) -> bool {
        let mut guard = relock(self.state.lock());
        match guard.0 {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open { until_tick } => {
                if now_tick >= until_tick {
                    guard.0 = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn record_success(&self) {
        let mut guard = relock(self.state.lock());
        *guard = (BreakerState::Closed, 0);
    }

    /// Returns `true` when this failure trips (or re-trips) the breaker.
    fn record_failure(&self, trip_after: u32, cooldown_ticks: u64, now_tick: u64) -> bool {
        let mut guard = relock(self.state.lock());
        guard.1 = guard.1.saturating_add(1);
        let reopen = matches!(guard.0, BreakerState::HalfOpen);
        let trip = matches!(guard.0, BreakerState::Closed) && guard.1 >= trip_after.max(1);
        if reopen || trip {
            guard.0 = BreakerState::Open {
                until_tick: now_tick.saturating_add(cooldown_ticks),
            };
        }
        reopen || trip
    }
}

/// One in-flight sub-query: a chunk group dispatched to one shard.
struct Flight {
    shard: usize,
    chunks: Vec<ChunkId>,
    ticket: QueryTicket,
    /// Wall-clock hedge trigger, armed when hedging is configured.
    hedge_timer: Option<WaitBudget>,
    /// This flight already spawned its hedge (never hedge twice).
    hedged: bool,
    /// This flight *is* a hedge re-issue.
    is_hedge: bool,
    /// Time since dispatch; when a hedge is issued, its elapsed value is
    /// the latency the hedge mechanism absorbed (`lat/hedge_overhead_secs`).
    age: Stopwatch,
}

/// Phase rows and resolved sub-query traces accumulated while one
/// federated query runs, folded into its root [`QueryTrace`] at the end.
#[derive(Default)]
struct TraceBuild {
    phases: Vec<(String, f64)>,
    children: Vec<QueryTrace>,
}

/// Drop guard: whatever is still flying when the router unwinds (parent
/// cancellation, strict-mode error, normal return with losers pending)
/// gets cancelled so no shard worker burns time on an abandoned query.
struct Flights(Vec<Flight>);

impl Drop for Flights {
    fn drop(&mut self) {
        for f in &self.0 {
            f.ticket.cancel();
        }
    }
}

/// The federation router: N shard [`QueryService`]s behind one query API.
///
/// All shards are clones of one [`Deployment`] (shared storage, shared
/// MetaData Service); what is sharded is *serving ownership* — which
/// front-end answers for which chunks — exactly the layer a fault plan's
/// shard-death/shard-slow specs target.
pub struct FederatedService {
    shards: Vec<QueryService>,
    placement: Placement,
    cfg: FederationConfig,
    deployment: Deployment,
    obs: Obs,
    health: Vec<ShardHealth>,
    /// Per-shard retry token buckets: failovers, hedges and overload
    /// re-issues draw; successful sub-queries earn back.
    retry: Vec<Arc<RetryBudget>>,
    /// Logical clock: one tick per dispatched flight. Breaker cooldowns
    /// count these, not wall time, so seeded replays trip identically.
    clock: AtomicU64,
    /// Root-query flight recorder: each retained trace carries the full
    /// cross-shard span tree of one federated query.
    recorder: FlightRecorder,
}

impl std::fmt::Debug for FederatedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedService")
            .field("shards", &self.shards.len())
            .field("replication", &self.placement.replication())
            .finish()
    }
}

impl FederatedService {
    /// Build the federation over `deployment` with no instrumentation.
    pub fn new(deployment: Deployment, cfg: FederationConfig) -> Result<Self> {
        Self::with_instruments(deployment, cfg, Obs::disabled(), None)
    }

    /// Build the federation, wiring every shard engine to `obs` (spans,
    /// `fed/*` counters) and, when given, to one shared fault injector —
    /// the single seeded plan drives deaths and slowdowns across all
    /// shards, and its global budget caps them collectively.
    pub fn with_instruments(
        deployment: Deployment,
        cfg: FederationConfig,
        obs: Obs,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Self> {
        if cfg.trip_after == 0 {
            return Err(Error::Config(
                "federation needs trip_after >= 1 (0 would trip on success)".into(),
            ));
        }
        let placement = Placement::new(cfg.shards, cfg.replication, cfg.placement_seed)?;
        let shards = (0..cfg.shards)
            .map(|i| {
                let mut engine = QueryEngine::new(deployment.clone())
                    .with_obs(obs.clone())
                    .with_shard(i)
                    .with_placement(placement);
                if let Some(f) = &faults {
                    engine = engine.with_faults(Arc::clone(f));
                }
                QueryService::new(engine, cfg.service.clone())
            })
            .collect::<Result<Vec<_>>>()?;
        let health = (0..cfg.shards).map(|_| ShardHealth::new()).collect();
        let retry = (0..cfg.shards)
            .map(|_| Arc::new(RetryBudget::new(cfg.retry_budget, cfg.retry_earn_milli)))
            .collect();
        Ok(FederatedService {
            shards,
            placement,
            cfg,
            deployment,
            obs,
            health,
            retry,
            clock: AtomicU64::new(0),
            recorder: FlightRecorder::new(8, 64),
        })
    }

    /// The router's flight recorder: the K slowest federated queries plus
    /// every failed/partial/cancelled one, each with its full cross-shard
    /// sub-query tree.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The chunk-to-shard assignment function.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Number of shard services.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's front-end (counters, engine, catalog inspection).
    pub fn shard(&self, i: usize) -> &QueryService {
        &self.shards[i]
    }

    /// The observability handle all shards share.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    fn bump(&self, name: &str, n: u64) {
        self.obs.metrics.counter(name).add(n);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// One shard's retry token bucket (chaos tests assert total grants
    /// against [`RetryBudget::max_grants`]).
    pub fn retry_budget(&self, shard: usize) -> &RetryBudget {
        &self.retry[shard]
    }

    /// The federation's overload severity: the worst brownout state of
    /// any shard. `Brownout` disables hedging; `Shed` also stops
    /// failover re-issue (prefer partial results over added load).
    pub fn brownout_state(&self) -> BrownoutState {
        self.shards
            .iter()
            .map(|s| s.brownout().state())
            .max()
            .unwrap_or(BrownoutState::Normal)
    }

    /// The token a sub-query hop runs under: the root budget shrunk by
    /// one `hop_margin` when the root carries a deadline, a plain
    /// cancellable token otherwise. Budgets are monotone non-increasing
    /// across hops by construction ([`DeadlineBudget::shrink`]).
    fn hop_token(&self, cancel: &CancelToken) -> CancelToken {
        match DeadlineBudget::from_token(cancel) {
            Some(budget) => budget.shrink(self.cfg.hop_margin).token(),
            None => CancelToken::new(),
        }
    }

    /// Pay for one re-issue (failover/hedge/overload retry) against
    /// `shard`'s bucket. `false` means the budget is dry: degrade, do
    /// not re-issue.
    fn draw_retry(&self, shard: usize) -> bool {
        let granted = self.retry[shard].try_draw();
        self.bump(
            if granted {
                names::OVERLOAD_RETRY_GRANTED
            } else {
                names::OVERLOAD_RETRY_DENIED
            },
            1,
        );
        self.publish_retry_tokens();
        granted
    }

    /// Credit one successful sub-query completion to `shard`'s bucket.
    fn credit_success(&self, shard: usize) {
        self.retry[shard].on_success();
        self.publish_retry_tokens();
    }

    fn publish_retry_tokens(&self) {
        let total: u64 = self.retry.iter().map(|b| b.available_milli()).sum();
        self.obs
            .metrics
            .gauge(names::OVERLOAD_RETRY_TOKENS)
            .set(total);
    }

    /// Bounded overload backoff honoring a rejection's `retry_after_ms`
    /// hint (capped at one [`orv_cluster::SLEEP_SLICE`]).
    fn overload_backoff(&self, cancel: &CancelToken, hint_ms: u64) -> Result<()> {
        self.bump(names::OVERLOAD_BACKOFFS, 1);
        cancel.sleep(Duration::from_millis(hint_ms).min(orv_cluster::SLEEP_SLICE))
    }

    /// Execute one statement, stamping the configured default deadline.
    pub fn execute(&self, sql: &str) -> Result<FederatedResponse> {
        let cancel = match self.cfg.service.default_deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        self.execute_with_token(sql, &cancel)
    }

    /// [`FederatedService::execute`] under a caller-owned token: the
    /// token gates the router loop, and unwinding cancels every
    /// still-flying sub-query.
    ///
    /// A root [`TraceId`] is minted here and propagated into every shard
    /// sub-query, so the whole fan-out stitches into one span tree; the
    /// completed trace lands in [`FederatedService::recorder`].
    pub fn execute_with_token(&self, sql: &str, cancel: &CancelToken) -> Result<FederatedResponse> {
        let born = Stopwatch::start();
        let trace = TraceId::mint();
        self.obs.events.emit(names::TRACE_BEGIN, || {
            vec![
                ("trace", trace.into()),
                ("parent", JsonValue::Null),
                ("group", "fed".into()),
                ("detail", sql.into()),
            ]
        });
        let mut tb = TraceBuild::default();
        let out = self.execute_traced(sql, cancel, trace, &mut tb);
        let outcome = match &out {
            Ok(FederatedResponse::Complete(_)) => TraceOutcome::Ok,
            Ok(FederatedResponse::Partial(_)) => TraceOutcome::Partial,
            Err(e) if e.is_cancellation() => TraceOutcome::Cancelled,
            Err(_) => TraceOutcome::Error,
        };
        let total_secs = born.elapsed_secs();
        self.obs
            .metrics
            .record_latency(names::LAT_TOTAL, total_secs);
        self.obs.events.emit(names::TRACE_END, || {
            vec![
                ("trace", trace.into()),
                ("group", "fed".into()),
                ("outcome", outcome.as_str().into()),
                ("total_secs", total_secs.into()),
            ]
        });
        self.recorder.record(QueryTrace {
            trace,
            parent: None,
            group: "fed".into(),
            detail: sql.to_string(),
            outcome,
            total_secs,
            phases: tb.phases,
            children: tb.children,
        });
        out
    }

    fn execute_traced(
        &self,
        sql: &str,
        cancel: &CancelToken,
        trace: TraceId,
        tb: &mut TraceBuild,
    ) -> Result<FederatedResponse> {
        cancel.check()?;
        match parse_statement(sql)? {
            Statement::CreateView(_) => {
                // Views live in each shard engine's catalog; broadcast so
                // any replica can serve view queries. A mid-broadcast
                // failure leaves earlier shards registered — re-issuing
                // the CREATE VIEW converges (duplicates error per shard,
                // which we surface as-is).
                for svc in &self.shards {
                    let ticket = svc.submit_traced(sql, self.hop_token(cancel), trace)?;
                    let outcome = ticket.wait_cancellable(cancel);
                    tb.children.extend(ticket.trace());
                    outcome?;
                }
                Ok(FederatedResponse::Complete(QueryResult {
                    columns: Vec::new(),
                    rows: Vec::new(),
                    explain: None,
                    chunk_runs: None,
                    checksum: None,
                }))
            }
            Statement::Select(query) => {
                let from_is_view = self.shards[0].engine().catalog().get(&query.from).is_some();
                if query.join.is_some() || from_is_view {
                    // Joins and view reads are not chunk-decomposable at
                    // this layer (the join QES already distributes its own
                    // work); route the whole statement to one healthy
                    // replica with retry/failover.
                    return self
                        .route_whole(sql, cancel, trace, tb)
                        .map(FederatedResponse::Complete);
                }
                self.scan_federated(&query, cancel, trace, tb)
            }
        }
    }

    /// Whole-statement routing with shard failover: try healthy shards
    /// first, never the same shard twice, up to `max_attempts`.
    fn route_whole(
        &self,
        sql: &str,
        cancel: &CancelToken,
        trace: TraceId,
        tb: &mut TraceBuild,
    ) -> Result<QueryResult> {
        let n = self.shards.len();
        let mut tried = vec![false; n];
        let mut last_err = Error::Cluster("federation has no shards".into());
        for attempt in 0..self.cfg.recovery.max_attempts {
            let now = self.tick();
            let pick = (0..n)
                .find(|&s| !tried[s] && self.health[s].allows(now))
                .or_else(|| (0..n).find(|&s| !tried[s]));
            let Some(shard) = pick else { break };
            tried[shard] = true;
            self.bump(names::FED_SUBQUERIES, 1);
            let outcome = self.shards[shard]
                .submit_traced(sql, self.hop_token(cancel), trace)
                .and_then(|t| {
                    let outcome = t.wait_cancellable(cancel);
                    tb.children.extend(t.trace());
                    outcome
                });
            match outcome {
                Ok(result) => {
                    self.health[shard].record_success();
                    self.credit_success(shard);
                    return Ok(result);
                }
                Err(e) if e.is_cancellation() && cancel.check().is_err() => return Err(e),
                Err(e) if e.retry_after_ms().is_some() => {
                    // Overload is not a fault: no breaker trip, and the
                    // shard stays eligible once its queue drains — but a
                    // re-issue still costs a retry token, and under `Shed`
                    // we stop adding load altogether.
                    let hint = e.retry_after_ms().unwrap_or(0);
                    tried[shard] = false;
                    last_err = e;
                    if attempt + 1 < self.cfg.recovery.max_attempts {
                        if self.brownout_state() == BrownoutState::Shed || !self.draw_retry(shard) {
                            break;
                        }
                        self.overload_backoff(cancel, hint)?;
                    }
                }
                Err(e) => {
                    self.bump(names::FED_SHARD_ERRORS, 1);
                    if self.health[shard].record_failure(
                        self.cfg.trip_after,
                        self.cfg.cooldown_ticks,
                        now,
                    ) {
                        self.bump(names::FED_TRIPS, 1);
                    }
                    last_err = e;
                    if attempt + 1 < self.cfg.recovery.max_attempts {
                        if self.brownout_state() == BrownoutState::Shed || !self.draw_retry(shard) {
                            break;
                        }
                        self.bump(names::FED_FAILOVERS, 1);
                        cancel.sleep(self.cfg.recovery.backoff(attempt))?;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// Pick the serving replica for one chunk: an owner not yet tried,
    /// preferring those whose breaker admits traffic. The breaker only
    /// demotes — while any untried replica exists the chunk stays
    /// routable, so data never goes missing because of an open breaker
    /// alone.
    fn pick_shard(&self, owners: &[usize], tried: &[usize], now_tick: u64) -> Option<usize> {
        owners
            .iter()
            .find(|s| !tried.contains(s) && self.health[**s].allows(now_tick))
            .or_else(|| owners.iter().find(|s| !tried.contains(s)))
            .copied()
    }

    /// The chunk fan-out path for base-table SELECTs.
    fn scan_federated(
        &self,
        query: &Query,
        cancel: &CancelToken,
        trace: TraceId,
        tb: &mut TraceBuild,
    ) -> Result<FederatedResponse> {
        let md = self.deployment.metadata();
        let table = md.table_id(&query.from)?;
        let range = predicates_to_bbox(&query.predicates);
        // Same R-tree consultation (and chunk order) as a single engine's
        // scan, so a complete merge is byte-identical to the oracle.
        let chunks = match &range {
            Some(rg) => md.find_chunks(table, rg)?,
            None => md.all_chunks(table)?,
        };

        let mut tried: HashMap<ChunkId, Vec<usize>> = HashMap::new();
        let mut filled: HashMap<ChunkId, Vec<Record>> = HashMap::new();
        let mut unassigned: Vec<ChunkId> = chunks.clone();
        let mut missing: Vec<ChunkId> = Vec::new();
        let mut scan_columns: Option<Vec<String>> = None;
        let mut flights = Flights(Vec::new());

        loop {
            cancel.check()?;

            // Dispatch every unassigned chunk (first pass: primaries;
            // later passes: failover targets). Chunks with no untried
            // replica left, or past the attempt cap, become missing.
            if !unassigned.is_empty() {
                let now = self.tick();
                let mut groups: HashMap<usize, Vec<ChunkId>> = HashMap::new();
                for chunk in unassigned.drain(..) {
                    let id = SubTableId { table, chunk };
                    let attempts = tried.entry(chunk).or_default();
                    if attempts.len() >= self.cfg.recovery.max_attempts as usize {
                        missing.push(chunk);
                        continue;
                    }
                    match self.pick_shard(&self.placement.owners(id), attempts, now) {
                        Some(shard) => {
                            attempts.push(shard);
                            groups.entry(shard).or_default().push(chunk);
                        }
                        None => missing.push(chunk),
                    }
                }
                for (shard, group) in groups {
                    match self.dispatch(
                        &mut flights,
                        shard,
                        group.clone(),
                        table,
                        &range,
                        false,
                        trace,
                        cancel,
                    ) {
                        Ok(()) => {}
                        Err(e) if e.retry_after_ms().is_some() => {
                            // The shard's admission control rejected the
                            // sub-query. Not a fault: back off honoring
                            // the hint, then re-route the chunks (a
                            // later pass picks an untried replica) — if
                            // a retry token is available and we are not
                            // already shedding federation-wide.
                            self.overload_backoff(cancel, e.retry_after_ms().unwrap_or(0))?;
                            if self.brownout_state() != BrownoutState::Shed
                                && self.draw_retry(shard)
                            {
                                unassigned.extend(group);
                            } else {
                                missing.extend(group);
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
            }

            if flights.0.is_empty() {
                break;
            }

            // Poll the outstanding flights one rotation, handling
            // whichever resolved and hedging whichever went quiet.
            let mut resolved: Vec<(usize, Result<QueryResult>)> = Vec::new();
            let mut hedges: Vec<(usize, Vec<ChunkId>)> = Vec::new();
            // Hedging only while every shard is in `Normal`: a hedge is
            // speculative extra load, the last thing a browned-out
            // federation needs. Checked before `hedged` is latched, so
            // hedging resumes for still-flying work once shards recover.
            let hedging_allowed = self.brownout_state() == BrownoutState::Normal;
            for (i, f) in flights.0.iter_mut().enumerate() {
                if let Some(result) = f.ticket.wait_timeout(POLL_SLICE) {
                    resolved.push((i, result));
                } else if hedging_allowed
                    && !f.hedged
                    && f.hedge_timer.as_ref().is_some_and(WaitBudget::expired)
                {
                    f.hedged = true;
                    let unfilled: Vec<ChunkId> = f
                        .chunks
                        .iter()
                        .filter(|c| !filled.contains_key(c))
                        .copied()
                        .collect();
                    if !unfilled.is_empty() {
                        // The flight's age at hedge time is the latency
                        // the hedge mechanism is absorbing.
                        let overhead = f.age.elapsed_secs();
                        self.obs.metrics.record_latency(names::LAT_HEDGE, overhead);
                        tb.phases
                            .push((names::lat_phase(names::LAT_HEDGE).into(), overhead));
                        hedges.push((f.shard, unfilled));
                    }
                }
            }

            // Issue hedges: same chunks, a different (untried) replica.
            // The hedge target counts as an attempt, so the per-chunk cap
            // covers hedges and failovers uniformly — and each hedge
            // event draws one retry token from the slow shard's bucket
            // (a dry bucket means the slow flight just keeps waiting).
            for (slow_shard, unfilled) in hedges {
                if !self.draw_retry(slow_shard) {
                    continue;
                }
                let now = self.tick();
                let mut groups: HashMap<usize, Vec<ChunkId>> = HashMap::new();
                for chunk in unfilled {
                    let id = SubTableId { table, chunk };
                    let attempts = tried.entry(chunk).or_default();
                    if attempts.len() >= self.cfg.recovery.max_attempts as usize {
                        continue;
                    }
                    if let Some(shard) = self.pick_shard(&self.placement.owners(id), attempts, now)
                    {
                        attempts.push(shard);
                        groups.entry(shard).or_default().push(chunk);
                    }
                }
                for (shard, group) in groups {
                    match self.dispatch(
                        &mut flights,
                        shard,
                        group,
                        table,
                        &range,
                        true,
                        trace,
                        cancel,
                    ) {
                        Ok(()) => self.bump(names::FED_HEDGES, 1),
                        // A hedge refused by admission control is simply
                        // dropped — the original flight still covers the
                        // chunks, so nothing is lost but the speculation.
                        Err(e) if e.retry_after_ms().is_some() => {}
                        Err(e) => return Err(e),
                    }
                }
            }

            // Handle resolutions (descending index so removals are safe).
            for (i, outcome) in resolved.into_iter().rev() {
                let flight = flights.0.remove(i);
                // The resolver published the sub-query's trace before its
                // result became observable, so this is always present.
                tb.children.extend(flight.ticket.trace());
                match outcome {
                    Ok(result) => {
                        self.absorb(&flight, result, &mut filled, &mut scan_columns);
                    }
                    Err(e) if e.is_cancellation() && cancel.check().is_err() => return Err(e),
                    Err(e) => {
                        let now = self.tick();
                        self.bump(names::FED_SHARD_ERRORS, 1);
                        if self.health[flight.shard].record_failure(
                            self.cfg.trip_after,
                            self.cfg.cooldown_ticks,
                            now,
                        ) {
                            self.bump(names::FED_TRIPS, 1);
                        }
                        let _ = e;
                        let unfilled: Vec<ChunkId> = flight
                            .chunks
                            .iter()
                            .filter(|c| !filled.contains_key(c))
                            .copied()
                            .collect();
                        if !unfilled.is_empty() {
                            // Failover: the next dispatch pass re-routes
                            // these chunks to a replica we have not tried
                            // — if the failed shard's retry budget grants
                            // it and the federation is not shedding.
                            // Otherwise degrade: the chunks go missing
                            // and the caller gets an exact PartialResult
                            // instead of amplified load.
                            if self.brownout_state() != BrownoutState::Shed
                                && self.draw_retry(flight.shard)
                            {
                                self.bump(names::FED_FAILOVERS, 1);
                                unassigned.extend(unfilled);
                            } else {
                                missing.extend(unfilled);
                            }
                        }
                    }
                }
            }

            // Cancel losers: a flight whose every chunk someone else
            // already filled has nothing left to contribute.
            flights.0.retain(|f| {
                let obsolete = f.chunks.iter().all(|c| filled.contains_key(c));
                if obsolete {
                    f.ticket.cancel();
                }
                !obsolete
            });
        }

        missing.sort();
        missing.dedup();
        if !missing.is_empty() {
            self.bump(names::FED_PARTIAL, 1);
            self.bump(names::FED_MISSING_CHUNKS, missing.len() as u64);
            if self.cfg.strict {
                return Err(Error::Unavailable {
                    missing_chunks: missing.len(),
                    detail: format!(
                        "table `{}` chunks {:?} lost all replicas",
                        query.from,
                        missing.iter().map(|c| c.0).collect::<Vec<_>>()
                    ),
                });
            }
        }

        // Merge. Chunk order follows the R-tree's chunk list — the same
        // order a single engine scans in — so a complete federated scan
        // is byte-identical to the oracle.
        let merge_sw = Stopwatch::start();
        let columns = match scan_columns {
            Some(c) => c,
            None => column_names(md.schema(table)?.as_ref()),
        };
        let has_agg = query
            .select
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate(..)));
        let rowset: RowSet = if has_agg || !query.group_by.is_empty() {
            let parts: Vec<Vec<Record>> = chunks.iter().filter_map(|c| filled.remove(c)).collect();
            merge_aggregate(&columns, parts, &query.select, &query.group_by)?
        } else {
            let mut rows = Vec::new();
            for c in &chunks {
                if let Some(r) = filled.remove(c) {
                    rows.extend(r);
                }
            }
            project(&columns, rows, &query.select)?
        };
        let rowset = order_and_limit(rowset, &query.order_by, query.limit)?;
        let result = QueryResult {
            columns: rowset.columns,
            rows: rowset.rows,
            explain: None,
            chunk_runs: None,
            checksum: None,
        };
        let merge_secs = merge_sw.elapsed_secs();
        self.obs
            .metrics
            .record_latency(names::LAT_MERGE, merge_secs);
        tb.phases
            .push((names::lat_phase(names::LAT_MERGE).into(), merge_secs));
        if missing.is_empty() {
            Ok(FederatedResponse::Complete(result))
        } else {
            let total = chunks.len().max(1);
            Ok(FederatedResponse::Partial(PartialResult {
                completeness: (total - missing.len()) as f64 / total as f64,
                missing_chunks: missing,
                result,
            }))
        }
    }

    /// Submit one chunk group to one shard as a [`ScanSpec`] sub-query
    /// carrying the root query's trace ID and one hop's slice of the
    /// root's deadline budget.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        flights: &mut Flights,
        shard: usize,
        chunks: Vec<ChunkId>,
        table: orv_types::TableId,
        range: &Option<orv_types::BoundingBox>,
        is_hedge: bool,
        trace: TraceId,
        cancel: &CancelToken,
    ) -> Result<()> {
        self.bump(names::FED_SUBQUERIES, 1);
        let spec = ScanSpec {
            table,
            range: range.clone(),
            chunks: chunks.clone(),
        };
        let ticket = self.shards[shard].submit_scan_traced(spec, self.hop_token(cancel), trace)?;
        flights.0.push(Flight {
            shard,
            chunks,
            ticket,
            hedge_timer: self.cfg.hedge_after.map(WaitBudget::start),
            hedged: false,
            is_hedge,
            age: Stopwatch::start(),
        });
        Ok(())
    }

    /// Fold one successful sub-response into the per-chunk fill map.
    /// First responder wins per chunk (dedup for hedged duplicates); a
    /// checksum mismatch discards the response wholesale, as if the shard
    /// had failed — the chunks stay unfilled and re-route.
    fn absorb(
        &self,
        flight: &Flight,
        result: QueryResult,
        filled: &mut HashMap<ChunkId, Vec<Record>>,
        scan_columns: &mut Option<Vec<String>>,
    ) {
        if result.checksum != Some(rows_checksum(&result.rows)) {
            self.bump(names::FED_SHARD_ERRORS, 1);
            return;
        }
        self.health[flight.shard].record_success();
        self.credit_success(flight.shard);
        let runs = result.chunk_runs.unwrap_or_default();
        let mut rows = result.rows.into_iter();
        let mut won = false;
        for (chunk, len) in runs {
            let chunk_rows: Vec<Record> = rows.by_ref().take(len).collect();
            if let std::collections::hash_map::Entry::Vacant(e) = filled.entry(chunk) {
                e.insert(chunk_rows);
                won = true;
            }
        }
        if won && flight.is_hedge {
            self.bump(names::FED_HEDGE_WINS, 1);
        }
        if scan_columns.is_none() {
            *scan_columns = Some(result.columns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_cluster::{FaultPlan, ShardDeathSpec, ShardSlowSpec};
    use orv_types::Value;

    fn deployment() -> Deployment {
        let d = Deployment::in_memory(2);
        for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
            generate_dataset(
                &DatasetSpec::builder(name)
                    .grid([8, 8, 1])
                    .partition([2, 2, 1])
                    .scalar_attrs(&[scalar])
                    .seed(seed)
                    .build(),
                &d,
            )
            .unwrap();
        }
        d
    }

    fn oracle(sql: &str) -> QueryResult {
        QueryEngine::new(deployment()).execute(sql).unwrap()
    }

    #[test]
    fn federated_scan_and_aggregate_match_single_engine() {
        let fed = FederatedService::new(deployment(), FederationConfig::default()).unwrap();
        for sql in [
            "SELECT * FROM t1",
            "SELECT * FROM t1 WHERE x IN [0, 3]",
            "SELECT COUNT(*) FROM t1",
            "SELECT z, COUNT(*), MIN(oilp), MAX(oilp) FROM t1 GROUP BY z",
            "SELECT oilp FROM t1 WHERE y IN [2, 5] ORDER BY oilp DESC LIMIT 7",
        ] {
            let got = fed.execute(sql).unwrap();
            assert!(got.is_complete(), "{sql} should be complete");
            let want = oracle(sql);
            assert_eq!(got.result().columns, want.columns, "{sql}");
            assert_eq!(got.result().rows, want.rows, "{sql}");
        }
    }

    #[test]
    fn views_broadcast_and_serve_from_any_shard() {
        let fed = FederatedService::new(deployment(), FederationConfig::default()).unwrap();
        fed.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        for i in 0..fed.num_shards() {
            assert!(fed.shard(i).engine().catalog().get("v1").is_some());
        }
        let got = fed.execute("SELECT COUNT(*) FROM v1").unwrap();
        let single = QueryEngine::new(deployment());
        single
            .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let want = single.execute("SELECT COUNT(*) FROM v1").unwrap();
        assert_eq!(got.into_result().rows, want.rows);
    }

    #[test]
    fn shard_death_fails_over_without_changing_answers() {
        let obs = Obs::enabled();
        let plan = FaultPlan {
            shard_deaths: vec![ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            }],
            max_faults: 8,
            ..FaultPlan::none()
        };
        let faults = FaultInjector::new_with_events(plan, obs.events.clone());
        let fed = FederatedService::with_instruments(
            deployment(),
            FederationConfig::default(),
            obs.clone(),
            Some(faults),
        )
        .unwrap();
        let got = fed.execute("SELECT * FROM t1").unwrap();
        assert!(got.is_complete(), "replication must mask one dead shard");
        assert_eq!(got.result().rows, oracle("SELECT * FROM t1").rows);
        let snap = obs.metrics.snapshot();
        assert!(
            snap.counters.get(names::FED_FAILOVERS).copied() >= Some(1),
            "dead primary must force at least one failover: {:?}",
            snap.counters
        );
    }

    #[test]
    fn all_replicas_dead_degrades_to_exact_partial() {
        // replication = 1: killing shard 0 makes its chunks unreachable.
        let obs = Obs::enabled();
        let cfg = FederationConfig {
            shards: 2,
            replication: 1,
            ..FederationConfig::default()
        };
        let placement = Placement::new(cfg.shards, cfg.replication, cfg.placement_seed).unwrap();
        let plan = FaultPlan {
            shard_deaths: vec![ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            }],
            max_faults: 8,
            ..FaultPlan::none()
        };
        let faults = FaultInjector::new_with_events(plan, obs.events.clone());
        let d = deployment();
        let md = d.metadata();
        let table = md.table_id("t1").unwrap();
        let expected_missing: Vec<ChunkId> = md
            .all_chunks(table)
            .unwrap()
            .into_iter()
            .filter(|&chunk| placement.primary(SubTableId { table, chunk }) == 0)
            .collect();
        assert!(
            !expected_missing.is_empty(),
            "placement seed must give shard 0 some chunks"
        );
        let fed =
            FederatedService::with_instruments(d.clone(), cfg, obs.clone(), Some(faults)).unwrap();
        let got = fed.execute("SELECT * FROM t1").unwrap();
        let FederatedResponse::Partial(partial) = got else {
            panic!("expected a partial result");
        };
        assert_eq!(partial.missing_chunks, expected_missing);
        let total = md.all_chunks(table).unwrap().len();
        let want = (total - expected_missing.len()) as f64 / total as f64;
        assert!((partial.completeness - want).abs() < 1e-12);
        assert!(partial.result.rows.len() < oracle("SELECT * FROM t1").rows.len());
        let snap = obs.metrics.snapshot();
        assert_eq!(
            snap.counters.get(names::FED_PARTIAL).copied(),
            Some(1),
            "{:?}",
            snap.counters
        );
        assert_eq!(
            snap.counters.get(names::FED_MISSING_CHUNKS).copied(),
            Some(expected_missing.len() as u64)
        );
    }

    #[test]
    fn strict_mode_turns_partial_into_unavailable() {
        let cfg = FederationConfig {
            shards: 2,
            replication: 1,
            strict: true,
            ..FederationConfig::default()
        };
        let plan = FaultPlan {
            shard_deaths: vec![ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            }],
            max_faults: 8,
            ..FaultPlan::none()
        };
        let faults = FaultInjector::new(plan);
        let fed =
            FederatedService::with_instruments(deployment(), cfg, Obs::disabled(), Some(faults))
                .unwrap();
        let err = fed.execute("SELECT * FROM t1").unwrap_err();
        let Error::Unavailable { missing_chunks, .. } = err else {
            panic!("expected Unavailable, got {err}");
        };
        assert!(missing_chunks > 0);
    }

    #[test]
    fn hedged_request_beats_a_slow_shard() {
        let obs = Obs::enabled();
        let plan = FaultPlan {
            shard_slows: vec![
                // Every shard's first sub-query stalls well past the hedge
                // delay, so whichever shards serve this query go quiet and
                // force hedges.
                ShardSlowSpec {
                    shard: 0,
                    after_subqueries: 0,
                    delay_ms: 1_500,
                },
                ShardSlowSpec {
                    shard: 1,
                    after_subqueries: 0,
                    delay_ms: 1_500,
                },
                ShardSlowSpec {
                    shard: 2,
                    after_subqueries: 0,
                    delay_ms: 1_500,
                },
            ],
            ..FaultPlan::none()
        };
        let faults = FaultInjector::new_with_events(plan, obs.events.clone());
        let cfg = FederationConfig {
            hedge_after: Some(Duration::from_millis(40)),
            ..FederationConfig::default()
        };
        let fed = FederatedService::with_instruments(deployment(), cfg, obs.clone(), Some(faults))
            .unwrap();
        let got = fed.execute("SELECT COUNT(*) FROM t1").unwrap();
        assert!(got.is_complete());
        assert_eq!(got.result().rows, oracle("SELECT COUNT(*) FROM t1").rows);
        let snap = obs.metrics.snapshot();
        assert!(
            snap.counters.get(names::FED_HEDGES).copied() >= Some(1),
            "a stalled shard must trigger hedging: {:?}",
            snap.counters
        );
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_half_open_recovers() {
        let h = ShardHealth::new();
        assert!(h.allows(0));
        assert!(!h.record_failure(3, 8, 0));
        assert!(!h.record_failure(3, 8, 1));
        assert!(h.record_failure(3, 8, 2), "third consecutive failure trips");
        assert!(!h.allows(5), "open until tick 10");
        assert!(h.allows(10), "cooldown elapsed: half-open probe admitted");
        assert!(!h.allows(10), "only one probe while half-open");
        assert!(h.record_failure(3, 8, 10), "failed probe re-opens");
        assert!(!h.allows(11));
        assert!(h.allows(30));
        h.record_success();
        assert!(h.allows(31), "closed again after a successful probe");
    }

    #[test]
    fn zero_trip_after_is_a_config_error() {
        let err = FederatedService::new(
            deployment(),
            FederationConfig {
                trip_after: 0,
                ..FederationConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn hop_tokens_shrink_the_deadline_budget_monotonically() {
        let fed = FederatedService::new(deployment(), FederationConfig::default()).unwrap();
        let root = CancelToken::with_deadline(Duration::from_secs(10));
        let hop1 = fed.hop_token(&root);
        let hop2 = fed.hop_token(&hop1);
        let d0 = DeadlineBudget::from_token(&root).unwrap().hard_deadline();
        let d1 = DeadlineBudget::from_token(&hop1).unwrap().hard_deadline();
        let d2 = DeadlineBudget::from_token(&hop2).unwrap().hard_deadline();
        assert!(d1 < d0, "one hop must subtract the hop margin");
        assert!(d2 < d1, "budgets shrink monotonically across hops");
        assert_eq!(d0 - d1, fed.cfg.hop_margin);
        // A root without a deadline fans out plain cancellable tokens —
        // no budget is invented where none was requested.
        let free = fed.hop_token(&CancelToken::new());
        assert!(DeadlineBudget::from_token(&free).is_none());
        assert!(free.check().is_ok());
    }

    #[test]
    fn dry_retry_budget_degrades_to_partial_instead_of_reissuing() {
        // Same dead-primary setup that normally fails over — but with a
        // zero-capacity retry budget every re-issue is denied, so the
        // dead shard's chunks degrade to an exact PartialResult rather
        // than re-routing.
        let obs = Obs::enabled();
        let plan = FaultPlan {
            shard_deaths: vec![ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            }],
            max_faults: 8,
            ..FaultPlan::none()
        };
        let faults = FaultInjector::new_with_events(plan, obs.events.clone());
        let cfg = FederationConfig {
            retry_budget: 0,
            ..FederationConfig::default()
        };
        let fed = FederatedService::with_instruments(deployment(), cfg, obs.clone(), Some(faults))
            .unwrap();
        let got = fed.execute("SELECT * FROM t1").unwrap();
        let FederatedResponse::Partial(partial) = got else {
            panic!("denied failover must degrade to a partial result");
        };
        assert!(!partial.missing_chunks.is_empty());
        assert!(partial.completeness < 1.0);
        let snap = obs.metrics.snapshot();
        assert!(
            snap.counters.get(names::OVERLOAD_RETRY_DENIED).copied() >= Some(1),
            "{:?}",
            snap.counters
        );
        assert_eq!(
            snap.counters.get(names::FED_FAILOVERS).copied(),
            None,
            "no failover may be issued on a dry budget: {:?}",
            snap.counters
        );
        assert_eq!(fed.retry_budget(0).granted(), 0);
    }

    #[test]
    fn failovers_draw_retry_tokens_and_successes_earn_them_back() {
        let obs = Obs::enabled();
        let plan = FaultPlan {
            shard_deaths: vec![ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            }],
            max_faults: 8,
            ..FaultPlan::none()
        };
        let faults = FaultInjector::new_with_events(plan, obs.events.clone());
        let fed = FederatedService::with_instruments(
            deployment(),
            FederationConfig::default(),
            obs.clone(),
            Some(faults),
        )
        .unwrap();
        let got = fed.execute("SELECT * FROM t1").unwrap();
        assert!(got.is_complete(), "budgeted failover still masks the death");
        let granted: u64 = (0..fed.num_shards())
            .map(|s| fed.retry_budget(s).granted())
            .sum();
        let snap = obs.metrics.snapshot();
        assert_eq!(
            snap.counters.get(names::FED_FAILOVERS).copied(),
            Some(granted),
            "every failover must be paid for by exactly one retry grant"
        );
        let subqueries = snap.counters.get(names::FED_SUBQUERIES).copied().unwrap();
        for s in 0..fed.num_shards() {
            let b = fed.retry_budget(s);
            assert!(
                b.granted() <= b.max_grants(subqueries),
                "shard {s} grants exceed its budget bound"
            );
        }
        // Completed sub-queries credited the living shards' buckets.
        assert!(
            snap.gauges.contains_key(names::OVERLOAD_RETRY_TOKENS),
            "{:?}",
            snap.gauges
        );
    }

    #[test]
    fn idle_federation_reports_normal_brownout_state() {
        let fed = FederatedService::new(deployment(), FederationConfig::default()).unwrap();
        assert_eq!(fed.brownout_state(), BrownoutState::Normal);
    }

    #[test]
    fn count_matches_oracle_exactly_and_sum_within_epsilon() {
        let fed = FederatedService::new(deployment(), FederationConfig::default()).unwrap();
        let count = fed.execute("SELECT COUNT(*) FROM t1").unwrap();
        assert_eq!(count.result().rows[0].get(0), Value::I64(64));
        let sum = fed.execute("SELECT SUM(oilp) FROM t1").unwrap();
        let want = oracle("SELECT SUM(oilp) FROM t1").rows[0].get(0).as_f64();
        let got = sum.result().rows[0].get(0).as_f64();
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "re-aggregated SUM drifted: {got} vs {want}"
        );
    }
}
