//! Abstract syntax of the query language.
//!
//! The supported subset mirrors the paper's examples:
//!
//! ```sql
//! SELECT * FROM t1 WHERE x IN [0, 256] AND y IN [0, 512]
//! CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y)
//! SELECT * FROM v1
//! SELECT AVG(wp), MAX(oilp) FROM v1 GROUP BY z
//! ```

use orv_types::{BoundingBox, Interval};

/// One parsed statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Statement {
    /// A query against a table or view.
    Select(Query),
    /// A view definition.
    CreateView(ViewDef),
}

/// A `SELECT` query, optionally with an equi-join in its FROM clause.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// Select list.
    pub select: Vec<SelectItem>,
    /// Table or view name.
    pub from: String,
    /// Optional `JOIN <table> ON (attrs)`.
    pub join: Option<JoinClause>,
    /// Conjunctive range predicates.
    pub predicates: Vec<RangePred>,
    /// GROUP BY attribute names (empty = no grouping).
    pub group_by: Vec<String>,
    /// ORDER BY output columns (applied after projection/aggregation;
    /// `(column, descending)` pairs).
    pub order_by: Vec<(String, bool)>,
    /// LIMIT on output rows.
    pub limit: Option<usize>,
}

/// The join part of a FROM clause.
#[derive(Clone, PartialEq, Debug)]
pub struct JoinClause {
    /// Right (outer) table name.
    pub table: String,
    /// Join attribute names.
    pub on: Vec<String>,
}

impl Query {
    /// True if this query is a plain pass-through join
    /// (`SELECT * FROM a JOIN b ON (...)` with no grouping) — the shape
    /// range predicates can be pushed *into*.
    pub fn is_plain_join(&self) -> bool {
        self.join.is_some()
            && self.select == vec![SelectItem::All]
            && self.group_by.is_empty()
            && self.order_by.is_empty()
            && self.limit.is_none()
    }
}

/// An item of the select list.
#[derive(Clone, PartialEq, Debug)]
pub enum SelectItem {
    /// `*`
    All,
    /// A plain column reference.
    Column(String),
    /// An aggregate: `AVG(wp)`, `COUNT(*)`, ...
    Aggregate(AggFunc, Option<String>),
}

/// Aggregation functions for the aggregation DDS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Spelling for display and result column names.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A closed range constraint on one attribute. Comparisons are normalized
/// to ranges (`x > 3` → `(3, +∞]` is approximated as `[3 + ε-free open
/// handling: we keep the raw bound and strictness)`.
#[derive(Clone, PartialEq, Debug)]
pub struct RangePred {
    /// Attribute name.
    pub attr: String,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl RangePred {
    /// `attr IN [lo, hi]`.
    pub fn between(attr: impl Into<String>, lo: f64, hi: f64) -> Self {
        RangePred {
            attr: attr.into(),
            lo,
            hi,
        }
    }
}

/// Fold conjunctive predicates into a bounding box (intersecting repeats).
pub fn predicates_to_bbox(preds: &[RangePred]) -> Option<BoundingBox> {
    if preds.is_empty() {
        return None;
    }
    let mut bbox = BoundingBox::unbounded();
    for p in preds {
        let merged = bbox.get(&p.attr).intersect(Interval::new(p.lo, p.hi));
        bbox.set(p.attr.clone(), merged);
    }
    Some(bbox)
}

/// A Derived Data Source definition: any supported query, named.
///
/// DDSs layer: the view's query may itself read from another view
/// ("Derived Data Sources provide more complex views and are layered on
/// BDSs or other DDSs"), including aggregation views — the paper's "view
/// definition may involve aggregation operations such as AVG or SUM".
#[derive(Clone, PartialEq, Debug)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// The defining query.
    pub query: Query,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_fold_into_bbox() {
        let preds = vec![
            RangePred::between("x", 0.0, 10.0),
            RangePred::between("y", -5.0, 5.0),
            RangePred::between("x", 4.0, 20.0), // repeated attr intersects
        ];
        let bb = predicates_to_bbox(&preds).unwrap();
        assert_eq!(bb.get("x"), Interval::new(4.0, 10.0));
        assert_eq!(bb.get("y"), Interval::new(-5.0, 5.0));
        assert!(predicates_to_bbox(&[]).is_none());
    }

    #[test]
    fn agg_names() {
        assert_eq!(AggFunc::Avg.name(), "AVG");
        assert_eq!(AggFunc::Count.name(), "COUNT");
    }
}
