//! Recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement   := select | create_view
//! create_view := CREATE VIEW ident AS select_join
//! select_join := SELECT * FROM ident JOIN ident ON ( ident,* ) [where]
//! select      := SELECT items FROM ident [where] [GROUP BY ident,*]
//! items       := * | item (, item)*
//! item        := ident | AGG ( ident | * )
//! where       := WHERE pred (AND pred)*
//! pred        := ident IN [ num , num ]
//!              | ident BETWEEN num AND num
//!              | ident (<=|>=|<|>|=) num
//!              | num (<=|<) ident (<=|<) num        -- not supported; use AND
//! ```

use crate::ast::{AggFunc, Query, RangePred, SelectItem, Statement, ViewDef};
use crate::lexer::{tokenize, Token};
use orv_types::{Error, Result};

/// Parse one statement.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.peek_keyword("CREATE") {
        Statement::CreateView(p.create_view()?)
    } else {
        Statement::Select(p.select()?)
    };
    if p.pos != p.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing input after statement: {}",
            p.tokens[p.pos]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword `{kw}`, found {}",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        let t = self.next()?;
        if &t == tok {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {tok}, found {t}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!("expected identifier, found {other}"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next()? {
            Token::Number(n) => Ok(n),
            other => Err(Error::Parse(format!("expected number, found {other}"))),
        }
    }

    fn create_view(&mut self) -> Result<ViewDef> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("VIEW")?;
        let name = self.ident()?;
        self.expect_keyword("AS")?;
        let query = self.select()?;
        Ok(ViewDef { name, query })
    }

    fn select(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let select = self.select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let join = if self.eat_keyword("JOIN") {
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            self.expect(&Token::LParen)?;
            let mut on = vec![self.ident()?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                on.push(self.ident()?);
            }
            self.expect(&Token::RParen)?;
            Some(crate::ast::JoinClause { table, on })
        } else {
            None
        };
        let predicates = self.where_clause()?;
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.ident()?);
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                group_by.push(self.ident()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let col = self.ident()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push((col, desc));
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            let n = self.number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(Error::Parse(format!(
                    "LIMIT must be a non-negative integer, got {n}"
                )));
            }
            Some(n as usize)
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            join,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            return Ok(vec![SelectItem::All]);
        }
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let name = self.ident()?;
        let agg = match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        };
        match (agg, self.peek()) {
            (Some(f), Some(Token::LParen)) => {
                self.pos += 1;
                let arg = if matches!(self.peek(), Some(Token::Star)) {
                    self.pos += 1;
                    None
                } else {
                    Some(self.ident()?)
                };
                self.expect(&Token::RParen)?;
                if arg.is_none() && f != AggFunc::Count {
                    return Err(Error::Parse(format!(
                        "{}(*) is only valid for COUNT",
                        f.name()
                    )));
                }
                Ok(SelectItem::Aggregate(f, arg))
            }
            _ => Ok(SelectItem::Column(name)),
        }
    }

    fn where_clause(&mut self) -> Result<Vec<RangePred>> {
        let mut preds = Vec::new();
        if !self.eat_keyword("WHERE") {
            return Ok(preds);
        }
        preds.push(self.predicate()?);
        while self.eat_keyword("AND") {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> Result<RangePred> {
        let attr = self.ident()?;
        if self.eat_keyword("IN") {
            self.expect(&Token::LBracket)?;
            let lo = self.number()?;
            self.expect(&Token::Comma)?;
            let hi = self.number()?;
            self.expect(&Token::RBracket)?;
            return Ok(RangePred::between(attr, lo, hi));
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.number()?;
            self.expect_keyword("AND")?;
            let hi = self.number()?;
            return Ok(RangePred::between(attr, lo, hi));
        }
        let op = self.next()?;
        let n = self.number()?;
        Ok(match op {
            Token::Le | Token::Lt => RangePred::between(attr, f64::NEG_INFINITY, n),
            Token::Ge | Token::Gt => RangePred::between(attr, n, f64::INFINITY),
            Token::Eq => RangePred::between(attr, n, n),
            other => {
                return Err(Error::Parse(format!(
                    "expected comparison operator after `{attr}`, found {other}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_range_query() {
        // "SELECT * FROM T1 WHERE x ∈ [0,256], y ∈ [0,512]"
        let s = parse_statement("SELECT * FROM t1 WHERE x IN [0, 256] AND y IN [0, 512]").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.select, vec![SelectItem::All]);
        assert_eq!(q.from, "t1");
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0], RangePred::between("x", 0.0, 256.0));
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn parses_view_definition() {
        let s = parse_statement(
            "CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y) WHERE x IN [0, 256]",
        )
        .unwrap();
        let Statement::CreateView(v) = s else {
            panic!()
        };
        assert_eq!(v.name, "v1");
        assert_eq!(v.query.from, "t1");
        let join = v.query.join.as_ref().unwrap();
        assert_eq!(join.table, "t2");
        assert_eq!(join.on, vec!["x", "y"]);
        assert_eq!(v.query.predicates.len(), 1);
        assert!(v.query.is_plain_join());
    }

    #[test]
    fn parses_aggregation_view_and_direct_join_query() {
        // DDS layering: a view defined by an aggregation over another view.
        let s =
            parse_statement("CREATE VIEW prof AS SELECT z, AVG(wp) FROM v1 GROUP BY z").unwrap();
        let Statement::CreateView(v) = s else {
            panic!()
        };
        assert_eq!(v.name, "prof");
        assert!(v.query.join.is_none());
        assert!(!v.query.is_plain_join());
        assert_eq!(v.query.group_by, vec!["z"]);
        // A join directly in a query, without a view.
        let s = parse_statement("SELECT * FROM a JOIN b ON (x) WHERE x <= 4").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert!(q.is_plain_join());
        assert_eq!(q.join.unwrap().on, vec!["x"]);
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let s = parse_statement("SELECT z, AVG(wp), COUNT(*) FROM v1 GROUP BY z").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[0], SelectItem::Column("z".into()));
        assert_eq!(
            q.select[1],
            SelectItem::Aggregate(AggFunc::Avg, Some("wp".into()))
        );
        assert_eq!(q.select[2], SelectItem::Aggregate(AggFunc::Count, None));
        assert_eq!(q.group_by, vec!["z"]);
    }

    #[test]
    fn comparison_predicates_normalize_to_ranges() {
        let s = parse_statement("SELECT wp FROM t WHERE wp >= 0.5 AND x <= 10 AND y = 3").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(
            q.predicates[0],
            RangePred::between("wp", 0.5, f64::INFINITY)
        );
        assert_eq!(
            q.predicates[1],
            RangePred::between("x", f64::NEG_INFINITY, 10.0)
        );
        assert_eq!(q.predicates[2], RangePred::between("y", 3.0, 3.0));
    }

    #[test]
    fn between_syntax() {
        let s = parse_statement("SELECT * FROM t WHERE x BETWEEN 1 AND 5").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.predicates[0], RangePred::between("x", 1.0, 5.0));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_statement("select * from t where x in [0, 1]").is_ok());
        assert!(parse_statement("Create View v As Select * From a Join b On (x)").is_ok());
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(parse_statement("SELECT * FROM t extra").is_err());
        assert!(parse_statement("CREATE VIEW v AS SELECT * FROM a JOIN b").is_err());
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE x ! 3").is_err());
    }

    #[test]
    fn agg_names_can_still_be_columns() {
        // `count` without parens is a column reference.
        let s = parse_statement("SELECT count FROM t").unwrap();
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.select[0], SelectItem::Column("count".into()));
    }
}
