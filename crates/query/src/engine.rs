//! The query engine: DDS registry + statement execution.

use crate::ast::{predicates_to_bbox, Query, SelectItem, Statement, ViewDef};
use crate::exec::{
    aggregate, column_names, filter_rows, order_and_limit, project, rows_checksum,
    scan_cancellable, scan_chunks, RowSet,
};
use crate::parser::parse_statement;
use crate::plan::{PlanExplain, Planner};
use orv_bds::Deployment;
use orv_cluster::{CancelToken, ClusterSpec, EpochCell, FaultInjector};
use orv_join::{
    grace_hash_join, indexed_join, indexed_join_cached, CacheService, CacheStats, GraceHashConfig,
    IndexedJoinConfig, JoinAlgorithm, JoinOutput,
};
use orv_metadata::Placement;
use orv_obs::{names, JsonValue, Obs, Stopwatch, TraceId};
use orv_types::{BoundingBox, ChunkId, Error, Record, Result, SubTableId, TableId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Canonical lowercase name of a QES algorithm, as used by
/// [`orv_obs::required_phases`] and the `qes_choice` event stream.
pub fn algorithm_slug(algorithm: JoinAlgorithm) -> &'static str {
    match algorithm {
        JoinAlgorithm::IndexedJoin => "indexed_join",
        JoinAlgorithm::GraceHash => "grace_hash",
    }
}

/// The view registry — the Derived Data Source catalog.
///
/// `Clone` is the write-side primitive of the epoch-snapshot scheme:
/// `CREATE VIEW` clones the current catalog, registers into the clone,
/// and publishes it as the next epoch. View definitions are metadata,
/// so the clone is a few map entries, not data.
#[derive(Clone, Default)]
pub struct Catalog {
    views: HashMap<String, ViewDef>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a view (rejects duplicates and name clashes).
    pub fn register(&mut self, view: ViewDef) -> Result<()> {
        if self.views.contains_key(&view.name) {
            return Err(Error::Config(format!(
                "view `{}` already exists",
                view.name
            )));
        }
        self.views.insert(view.name.clone(), view);
        Ok(())
    }

    /// Look up a view.
    pub fn get(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(name)
    }

    /// Registered view names (owned, so callers can drop the catalog
    /// lock before using them).
    pub fn names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }
}

/// Result of one executed statement.
#[derive(Debug)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Record>,
    /// Planning evidence, when a join view was executed.
    pub explain: Option<PlanExplain>,
    /// Per-chunk run lengths `(chunk, rows)` in scan order — set only on
    /// federated sub-query responses ([`QueryEngine::execute_scan_spec`])
    /// so the router can dedup and reassemble chunk-by-chunk.
    pub chunk_runs: Option<Vec<(ChunkId, usize)>>,
    /// CRC32C over the rows, sealed shard-side on federated sub-query
    /// responses; the router re-verifies before merging.
    pub checksum: Option<u32>,
}

impl QueryResult {
    fn empty() -> Self {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            explain: None,
            chunk_runs: None,
            checksum: None,
        }
    }
}

/// A pre-planned chunk scan: the sub-query unit the federation router
/// hands one shard. The shard reads exactly `chunks` of `table` (in
/// ascending chunk order), applies `range` row filtering, and seals the
/// response with per-chunk run lengths and a checksum.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanSpec {
    /// Table the chunks belong to.
    pub table: TableId,
    /// Row-level range filter (the query's bbox), if any.
    pub range: Option<BoundingBox>,
    /// The chunks to read. Order is irrelevant; execution sorts.
    pub chunks: Vec<ChunkId>,
}

/// The full engine a client talks to.
///
/// Every execution entry point takes `&self`: the catalog is published
/// as epoch snapshots (readers never lock — see
/// [`orv_cluster::EpochCell`]), the Caching Service is internally
/// synchronized, and all per-query state (cancel token, plan, join
/// output) lives on the caller's stack — so one engine can serve many
/// concurrent clients (see [`crate::service::QueryService`]).
pub struct QueryEngine {
    deployment: Deployment,
    catalog: EpochCell<Catalog>,
    planner: Planner,
    n_compute: usize,
    force: Option<JoinAlgorithm>,
    /// The Caching Service: keeps unconstrained view scans warm across
    /// queries *and* across concurrent clients (IJ only; constrained
    /// scans use a query-lifetime cache because cached sub-tables are
    /// stored post-filter).
    cache: Arc<CacheService>,
    cache_capacity: u64,
    obs: Obs,
    /// Optional fault injector handed down to every join execution
    /// (chaos tests drive the whole engine through one plan).
    faults: Option<Arc<FaultInjector>>,
    /// Per-query wall-clock budget; [`QueryEngine::execute`] derives a
    /// deadline-bearing [`CancelToken`] from it for each statement.
    query_deadline: Option<Duration>,
    /// Identity of this engine inside a federation (None = standalone).
    /// Drives shard-scoped fault checkpoints and `fed{N}/*` spans.
    shard: Option<usize>,
    /// Replicated chunk placement, when federated: `execute_scan_spec`
    /// refuses chunks this shard does not own.
    placement: Option<Placement>,
}

impl QueryEngine {
    /// Engine over a deployment, planning against a paper-testbed-shaped
    /// cluster with as many compute nodes as storage nodes.
    pub fn new(deployment: Deployment) -> Self {
        let n = deployment.num_storage_nodes().max(1);
        let spec = ClusterSpec::paper_testbed(n, n);
        let cache_capacity = 256 << 20;
        QueryEngine {
            deployment,
            catalog: EpochCell::new(Catalog::new()),
            planner: Planner::new(spec),
            n_compute: n,
            force: None,
            cache: Arc::new(CacheService::new(n, cache_capacity)),
            cache_capacity,
            obs: Obs::disabled(),
            faults: None,
            query_deadline: None,
            shard: None,
            placement: None,
        }
    }

    /// Attach an observability handle: planning and execution record
    /// `engine/plan` and `engine/exec` spans, every QES decision emits a
    /// `qes_choice` event carrying the cost-model evidence, the joins
    /// inherit the handle for their per-node phase spans, and MetaData
    /// Service usage counters are published after each join.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The engine's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Use a specific cluster description for planning.
    pub fn with_cluster(mut self, spec: ClusterSpec) -> Self {
        self.n_compute = spec.n_compute;
        self.cache = Arc::new(CacheService::new(self.n_compute, self.cache_capacity));
        self.planner = Planner::new(spec);
        self
    }

    /// Resize the Caching Service (bytes per compute node).
    pub fn with_cache_capacity(mut self, bytes: u64) -> Self {
        self.cache_capacity = bytes;
        self.cache = Arc::new(CacheService::new(self.n_compute, bytes));
        self
    }

    /// Named hit/miss/eviction counters of the Caching Service.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The engine's shared Caching Service (one instance across all
    /// concurrent queries).
    pub fn shared_cache(&self) -> Arc<CacheService> {
        Arc::clone(&self.cache)
    }

    /// Override the planner (e.g. calibrated γ values).
    pub fn with_planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Attach a fault injector: every join this engine runs draws faults
    /// (and corruptions) from the one shared plan, so budget caps apply
    /// across the whole query — and across a failover re-execution.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Give every statement a wall-clock budget. [`QueryEngine::execute`]
    /// derives a fresh deadline-bearing [`CancelToken`] per statement; a
    /// query that runs past it returns [`Error::DeadlineExceeded`].
    pub fn with_query_deadline(mut self, deadline: Duration) -> Self {
        self.query_deadline = Some(deadline);
        self
    }

    /// Force one algorithm regardless of the cost models (for experiments).
    pub fn force_algorithm(mut self, algorithm: Option<JoinAlgorithm>) -> Self {
        self.force = algorithm;
        self
    }

    /// Mark this engine as shard `shard` of a federation: fault plans
    /// with shard kinds target it by this index, and its federated spans
    /// are grouped under `fed{shard}/…`.
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// This engine's shard identity inside a federation, if any.
    pub fn shard_index(&self) -> Option<usize> {
        self.shard
    }

    /// Attach the federation's chunk placement so scan sub-queries can
    /// validate that every requested chunk is actually owned here.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Shard-scoped fault checkpoint: a federated worker calls this
    /// before each job, so an injected shard death (or slowdown) lands at
    /// a deterministic point in the sub-query stream. Standalone engines
    /// (no shard identity, or no injector) pass trivially.
    pub fn shard_checkpoint(&self, cancel: &CancelToken) -> Result<()> {
        match (self.shard, &self.faults) {
            (Some(shard), Some(faults)) => faults.shard_checkpoint(shard, cancel),
            _ => Ok(()),
        }
    }

    /// Execute one federated scan sub-query: read exactly `spec.chunks`
    /// of `spec.table` (ascending chunk order), filter by `spec.range`,
    /// and seal the response with per-chunk run lengths plus a CRC32C
    /// checksum the router re-verifies before merging.
    pub fn execute_scan_spec(&self, spec: &ScanSpec, cancel: &CancelToken) -> Result<QueryResult> {
        cancel.check()?;
        let _span = self.shard.map(|s| {
            self.obs
                .spans
                .span(&names::span_fed_shard(s, names::PHASE_SUBQUERY))
        });
        if let (Some(shard), Some(placement)) = (self.shard, &self.placement) {
            for &chunk in &spec.chunks {
                let id = SubTableId {
                    table: spec.table,
                    chunk,
                };
                if !placement.owns(shard, id) {
                    return Err(Error::Plan(format!(
                        "shard {shard} does not own chunk {} of table {} (misrouted sub-query)",
                        chunk.0, spec.table.0
                    )));
                }
            }
        }
        let (schema, rows, runs) = scan_chunks(
            &self.deployment,
            spec.table,
            &spec.chunks,
            spec.range.as_ref(),
            cancel,
        )?;
        let checksum = rows_checksum(&rows);
        Ok(QueryResult {
            columns: column_names(&schema),
            rows,
            explain: None,
            chunk_runs: Some(runs),
            checksum: Some(checksum),
        })
    }

    /// The underlying deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The current catalog snapshot. Wait-free (one atomic load + `Arc`
    /// clone) and immutable: a concurrent `CREATE VIEW` publishes a new
    /// epoch without disturbing this one, so the snapshot can be held
    /// across statement execution.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.catalog.load()
    }

    /// The current catalog epoch version (0 initially, +1 per
    /// successful `CREATE VIEW`).
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// The catalog snapshot as of epoch `version`, if that epoch
    /// exists. Every published epoch is retained, so historical reads
    /// (live-ingest time travel, debugging DDL drift) are exact.
    pub fn catalog_at_version(&self, version: u64) -> Option<Arc<Catalog>> {
        self.catalog.at_version(version)
    }

    /// Parse and execute one statement. When a query deadline is set, a
    /// fresh deadline-bearing token covers this statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let cancel = match self.query_deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::none(),
        };
        self.execute_cancellable(sql, &cancel)
    }

    /// [`QueryEngine::execute`] observing a caller-owned [`CancelToken`]:
    /// the token is threaded through scans, both QES runtimes, retry
    /// backoff and throttle sleeps, so cancelling it (or passing its
    /// deadline) unwinds the statement within one sleep slice with a
    /// typed [`Error::Cancelled`] / [`Error::DeadlineExceeded`].
    pub fn execute_cancellable(&self, sql: &str, cancel: &CancelToken) -> Result<QueryResult> {
        self.execute_traced(sql, cancel, None)
    }

    /// [`QueryEngine::execute_cancellable`] carrying a propagated
    /// [`TraceId`]: planning decisions (`qes_choice`, `qes_failover`) are
    /// tagged with it so the events of one query stitch into its trace.
    pub fn execute_traced(
        &self,
        sql: &str,
        cancel: &CancelToken,
        trace: Option<TraceId>,
    ) -> Result<QueryResult> {
        cancel.check()?;
        match parse_statement(sql)? {
            Statement::CreateView(view) => {
                self.create_view(view)?;
                Ok(QueryResult::empty())
            }
            Statement::Select(query) => self.select(&query, cancel, trace),
        }
    }

    /// Predict one statement's execution cost in seconds from the §5
    /// cost models, without executing anything. This is the signal
    /// cost-aware admission classifies queries with.
    ///
    /// Joins ask the planner for both QES totals (estimate-only — the
    /// join index is never built here) and take the cheaper; views
    /// recurse into their definition (depth-capped); base scans are
    /// bytes over aggregate storage-disk read bandwidth. `CREATE VIEW`
    /// and unparsable statements predict zero: DDL is metadata-only,
    /// and a parse error fails fast at execution anyway.
    pub fn predict_cost_secs(&self, sql: &str) -> f64 {
        match parse_statement(sql) {
            Ok(Statement::Select(query)) => self.predict_query_secs(&query, 0),
            Ok(Statement::CreateView(_)) | Err(_) => 0.0,
        }
    }

    fn predict_query_secs(&self, query: &Query, depth: usize) -> f64 {
        if depth > 8 {
            // Defensive cap; the catalog rejects cyclic views anyway.
            return 0.0;
        }
        let md = self.deployment.metadata();
        if let Some(join) = &query.join {
            let attrs: Vec<&str> = join.on.iter().map(|s| s.as_str()).collect();
            let (Ok(left), Ok(right)) = (md.table_id(&query.from), md.table_id(&join.table)) else {
                return 0.0;
            };
            return match self.planner.predict_join(md, left, right, &attrs) {
                Ok(plan) => plan.choice.ij_total.min(plan.choice.gh_total),
                Err(_) => 0.0,
            };
        }
        let view = self.catalog.load().get(&query.from).cloned();
        if let Some(view) = view {
            return self.predict_query_secs(&view.query, depth + 1);
        }
        match md.table_id(&query.from) {
            Ok(table) => self.predict_table_scan_secs(table),
            Err(_) => 0.0,
        }
    }

    fn predict_table_scan_secs(&self, table: TableId) -> f64 {
        let md = self.deployment.metadata();
        let (Ok(records), Ok(schema)) = (md.total_records(table), md.schema(table)) else {
            return 0.0;
        };
        let bytes = records as f64 * schema.record_size() as f64;
        let spec = self.planner.spec();
        bytes / (spec.disk_read_bw * spec.n_storage.max(1) as f64)
    }

    /// [`QueryEngine::predict_cost_secs`] for a federated chunk scan:
    /// the whole-table scan cost scaled by the fraction of chunks this
    /// spec touches.
    pub fn predict_scan_spec_secs(&self, spec: &ScanSpec) -> f64 {
        let md = self.deployment.metadata();
        let Ok(all) = md.all_chunks(spec.table) else {
            return 0.0;
        };
        if all.is_empty() {
            return 0.0;
        }
        let fraction = spec.chunks.len() as f64 / all.len() as f64;
        self.predict_table_scan_secs(spec.table) * fraction
    }

    fn create_view(&self, view: ViewDef) -> Result<()> {
        let md = self.deployment.metadata();
        let q = &view.query;
        // Validate the FROM clause against the current snapshot: either
        // a base table or an existing view (DDSs layer on BDSs or other
        // DDSs). Validation never blocks readers or writers.
        let snapshot = self.catalog.load();
        let from_is_view = snapshot.get(&q.from).is_some();
        if !from_is_view {
            md.table_id(&q.from)?;
        }
        if let Some(join) = &q.join {
            if from_is_view || snapshot.get(&join.table).is_some() {
                return Err(Error::Plan(
                    "join inputs must be base tables; layer a non-join view on top instead".into(),
                ));
            }
            let left = md.table_id(&q.from)?;
            let right = md.table_id(&join.table)?;
            let lschema = md.schema(left)?;
            let rschema = md.schema(right)?;
            for attr in &join.on {
                lschema.require(attr)?;
                rschema.require(attr)?;
            }
        }
        // `register` re-checks for duplicates inside the serialized
        // publish, so two concurrent CREATE VIEWs of the same name race
        // safely: one epoch wins, the other gets the duplicate error
        // and publishes nothing.
        self.catalog
            .try_publish_with(|catalog| catalog.register(view))
            .map(|_| ())
    }

    /// Materialize the FROM (+ JOIN) part of `query` with its predicates
    /// applied, resolving views recursively.
    fn resolve_source(
        &self,
        query: &Query,
        cancel: &CancelToken,
        trace: Option<TraceId>,
    ) -> Result<(Vec<String>, Vec<Record>, Option<PlanExplain>)> {
        let range = predicates_to_bbox(&query.predicates);
        if let Some(join) = &query.join {
            return self.run_join(&query.from, &join.table, &join.on, range, cancel, trace);
        }
        // Resolve against the current snapshot; the epoch stays valid
        // across the (potentially long, blocking) execution below even
        // if concurrent DDL publishes newer catalogs meanwhile.
        let view = self.catalog.load().get(&query.from).cloned();
        if let Some(view) = view {
            if view.query.is_plain_join() {
                // Pushable DDS: merge the view's baked-in predicates with
                // the outer ones and run the distributed join directly.
                let view_range = predicates_to_bbox(&view.query.predicates);
                let combined = match (view_range, range) {
                    (Some(a), Some(b)) => Some(a.intersect(&b)),
                    (a, b) => a.or(b),
                };
                let Some(join) = view.query.join.as_ref() else {
                    return Err(Error::Plan(
                        "view classified as plain join has no join clause".into(),
                    ));
                };
                return self.run_join(
                    &view.query.from,
                    &join.table,
                    &join.on,
                    combined,
                    cancel,
                    trace,
                );
            }
            // General DDS (projection/aggregation view, possibly over
            // another DDS): materialize it, then post-filter by the outer
            // predicates on its *output* columns.
            let inner = self.select(&view.query, cancel, trace)?;
            let rows = filter_rows(&inner.columns, inner.rows, &query.predicates)?;
            return Ok((inner.columns, rows, inner.explain));
        }
        // Basic Data Source scan with R-tree range pushdown.
        let table = self.deployment.metadata().table_id(&query.from)?;
        let (schema, rows) = scan_cancellable(&self.deployment, table, range.as_ref(), cancel)?;
        Ok((column_names(&schema), rows, None))
    }

    /// Run a distributed join between two base tables, letting the QPS
    /// pick the QES.
    fn run_join(
        &self,
        left_name: &str,
        right_name: &str,
        on: &[String],
        range: Option<orv_types::BoundingBox>,
        cancel: &CancelToken,
        trace: Option<TraceId>,
    ) -> Result<(Vec<String>, Vec<Record>, Option<PlanExplain>)> {
        {
            let catalog = self.catalog.load();
            if catalog.get(left_name).is_some() || catalog.get(right_name).is_some() {
                return Err(Error::Plan(
                    "join inputs must be base tables; layer a non-join view on top instead".into(),
                ));
            }
        }
        let md = self.deployment.metadata();
        let left = md.table_id(left_name)?;
        let right = md.table_id(right_name)?;
        let attrs: Vec<&str> = on.iter().map(|s| s.as_str()).collect();
        let trace_field = move || {
            (
                "trace",
                match trace {
                    Some(t) => t.into(),
                    None => JsonValue::Null,
                },
            )
        };
        let plan = {
            let _plan = self.obs.spans.span(names::ENGINE_PLAN);
            let sw = Stopwatch::start();
            let plan = self.planner.plan_join(md, left, right, &attrs)?;
            self.obs
                .metrics
                .record_latency(names::LAT_PLAN, sw.elapsed_secs());
            plan
        };
        let algorithm = self.force.unwrap_or(plan.algorithm);
        self.obs.events.emit(names::QES_CHOICE, || {
            vec![
                ("algorithm", algorithm_slug(algorithm).into()),
                ("forced", self.force.is_some().into()),
                ("ij_total_secs", plan.choice.ij_total.into()),
                ("gh_total_secs", plan.choice.gh_total.into()),
                ("left", left_name.into()),
                ("right", right_name.into()),
                trace_field(),
            ]
        });
        let _exec = self.obs.spans.span(names::ENGINE_EXEC);
        let exec_one = |engine: &Self, algorithm: JoinAlgorithm| -> Result<JoinOutput> {
            match algorithm {
                JoinAlgorithm::IndexedJoin => {
                    let ij_cfg = IndexedJoinConfig {
                        n_compute: engine.n_compute,
                        cache_capacity: engine.cache_capacity,
                        collect_results: true,
                        range: range.clone(),
                        obs: engine.obs.clone(),
                        faults: engine.faults.clone(),
                        cancel: cancel.clone(),
                        ..Default::default()
                    };
                    if range.is_none() {
                        // Unconstrained scan: keep the working set warm in
                        // the engine's Caching Service across queries.
                        indexed_join_cached(
                            &engine.deployment,
                            left,
                            right,
                            &attrs,
                            &ij_cfg,
                            &engine.cache,
                        )
                    } else {
                        indexed_join(&engine.deployment, left, right, &attrs, &ij_cfg)
                    }
                }
                JoinAlgorithm::GraceHash => grace_hash_join(
                    &engine.deployment,
                    left,
                    right,
                    &attrs,
                    &GraceHashConfig {
                        n_compute: engine.n_compute,
                        collect_results: true,
                        range: range.clone(),
                        obs: engine.obs.clone(),
                        faults: engine.faults.clone(),
                        cancel: cancel.clone(),
                        ..Default::default()
                    },
                ),
            }
        };
        let output = match exec_one(self, algorithm) {
            Ok(out) => out,
            // Plan-level QES failover: a terminal runtime fault (retries
            // exhausted, lost node, corrupted state) on the chosen engine
            // does not doom the query — re-execute the same plan on the
            // alternate QES. Cancellation is the user's verdict and planner
            // errors would recur, so neither triggers failover; a forced
            // algorithm pins the choice for benchmarking.
            Err(e)
                if self.force.is_none()
                    && !e.is_cancellation()
                    && matches!(
                        e,
                        Error::Cluster(_) | Error::Integrity(_) | Error::Io(_) | Error::Format(_)
                    ) =>
            {
                let fallback = match algorithm {
                    JoinAlgorithm::IndexedJoin => JoinAlgorithm::GraceHash,
                    JoinAlgorithm::GraceHash => JoinAlgorithm::IndexedJoin,
                };
                self.obs.events.emit(names::QES_FAILOVER, || {
                    vec![
                        ("from", algorithm_slug(algorithm).into()),
                        ("to", algorithm_slug(fallback).into()),
                        ("error", e.to_string().into()),
                        trace_field(),
                    ]
                });
                exec_one(self, fallback)?
            }
            Err(e) => return Err(e),
        };
        drop(_exec);
        md.publish_into(&self.obs.metrics);
        self.cache.publish_into(&self.obs.metrics);
        let joined_schema = md.schema(left)?.join(md.schema(right)?.as_ref(), &attrs)?;
        let mut rows = output.records.ok_or_else(|| {
            Error::Plan("join output missing records despite collect_results".into())
        })?;
        rows.sort_by(|a, b| a.values().cmp(b.values()));
        Ok((column_names(&joined_schema), rows, Some(plan)))
    }

    fn select(
        &self,
        query: &Query,
        cancel: &CancelToken,
        trace: Option<TraceId>,
    ) -> Result<QueryResult> {
        let has_agg = query
            .select
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate(..)));
        let (columns, rows, explain) = self.resolve_source(query, cancel, trace)?;
        let rowset: RowSet = if has_agg || !query.group_by.is_empty() {
            aggregate(&columns, rows, &query.select, &query.group_by)?
        } else {
            project(&columns, rows, &query.select)?
        };
        let rowset = order_and_limit(rowset, &query.order_by, query.limit)?;
        Ok(QueryResult {
            columns: rowset.columns,
            rows: rowset.rows,
            explain,
            chunk_runs: None,
            checksum: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_types::Value;

    fn engine() -> QueryEngine {
        let d = Deployment::in_memory(2);
        for (name, scalar, seed, part) in
            [("t1", "oilp", 1u64, [4, 4, 1]), ("t2", "wp", 2, [2, 8, 1])]
        {
            generate_dataset(
                &DatasetSpec::builder(name)
                    .grid([8, 8, 1])
                    .partition(part)
                    .scalar_attrs(&[scalar])
                    .seed(seed)
                    .build(),
                &d,
            )
            .unwrap();
        }
        QueryEngine::new(d)
    }

    #[test]
    fn base_table_range_query() {
        let e = engine();
        let r = e
            .execute("SELECT * FROM t1 WHERE x IN [0, 3] AND y IN [0, 1]")
            .unwrap();
        assert_eq!(r.columns, vec!["x", "y", "z", "oilp"]);
        assert_eq!(r.rows.len(), 8);
        assert!(r.explain.is_none());
    }

    #[test]
    fn view_join_and_query() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let r = e.execute("SELECT * FROM v1").unwrap();
        assert_eq!(r.rows.len(), 64);
        assert_eq!(r.columns, vec!["x", "y", "z", "oilp", "wp"]);
        let explain = r.explain.unwrap();
        assert!(explain.choice.ij_total > 0.0);
        // Range against the view.
        let r = e.execute("SELECT * FROM v1 WHERE x IN [2, 5]").unwrap();
        assert_eq!(r.rows.len(), 32);
    }

    #[test]
    fn view_with_baked_in_predicate() {
        let e = engine();
        e.execute("CREATE VIEW vsmall AS SELECT * FROM t1 JOIN t2 ON (x, y, z) WHERE x IN [0, 1]")
            .unwrap();
        let r = e.execute("SELECT * FROM vsmall").unwrap();
        assert_eq!(r.rows.len(), 16);
        // Query predicate intersects the view predicate.
        let r = e.execute("SELECT * FROM vsmall WHERE x IN [1, 7]").unwrap();
        assert_eq!(r.rows.len(), 8);
    }

    #[test]
    fn aggregation_over_view() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let r = e
            .execute("SELECT x, COUNT(*), AVG(wp) FROM v1 GROUP BY x")
            .unwrap();
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.columns, vec!["x", "COUNT(*)", "AVG(wp)"]);
        for row in &r.rows {
            assert_eq!(row.get(1), Value::I64(8));
        }
        // Paper's example query shape: average water pressure per grid row.
        let r = e.execute("SELECT AVG(wp) FROM v1 WHERE wp >= 0.0").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn forced_algorithms_agree() {
        let ij = engine().force_algorithm(Some(JoinAlgorithm::IndexedJoin));
        let gh = engine().force_algorithm(Some(JoinAlgorithm::GraceHash));
        for e in [&ij, &gh] {
            e.execute("CREATE VIEW v AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
                .unwrap();
        }
        let a = ij.execute("SELECT * FROM v WHERE y IN [1, 4]").unwrap();
        let b = gh.execute("SELECT * FROM v WHERE y IN [1, 4]").unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn errors_are_descriptive() {
        let e = engine();
        assert!(e.execute("SELECT * FROM nope").is_err());
        assert!(e
            .execute("CREATE VIEW v AS SELECT * FROM t1 JOIN t2 ON (bogus)")
            .is_err());
        e.execute("CREATE VIEW v AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let err = e
            .execute("CREATE VIEW v AS SELECT * FROM t1 JOIN t2 ON (x)")
            .unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn order_by_and_limit() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let r = e
            .execute("SELECT x, y, wp FROM v1 ORDER BY wp DESC LIMIT 3")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        let wps: Vec<f64> = r.rows.iter().map(|row| row.get(2).as_f64()).collect();
        assert!(wps[0] >= wps[1] && wps[1] >= wps[2]);
        // Ascending multi-key with aggregation.
        let r = e
            .execute("SELECT x, AVG(wp) FROM v1 GROUP BY x ORDER BY x ASC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].get(0), Value::I32(0));
        assert_eq!(r.rows[1].get(0), Value::I32(1));
        // Errors: unknown column, bad limit.
        assert!(e.execute("SELECT x FROM t1 ORDER BY nope").is_err());
        assert!(e.execute("SELECT x FROM t1 LIMIT -1").is_err());
        assert!(e.execute("SELECT x FROM t1 LIMIT 1.5").is_err());
    }

    #[test]
    fn direct_join_query_without_view() {
        let e = engine();
        let r = e
            .execute("SELECT * FROM t1 JOIN t2 ON (x, y, z) WHERE x IN [0, 1]")
            .unwrap();
        assert_eq!(r.rows.len(), 16);
        assert!(r.explain.is_some());
    }

    #[test]
    fn layered_dds_aggregation_view() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        // A DDS over a DDS: per-x profile of the join view.
        e.execute("CREATE VIEW profile AS SELECT x, AVG(wp), COUNT(*) FROM v1 GROUP BY x")
            .unwrap();
        let r = e.execute("SELECT * FROM profile").unwrap();
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.columns, vec!["x", "AVG(wp)", "COUNT(*)"]);
        // Outer predicates post-filter the view's *output* columns.
        let r = e
            .execute("SELECT * FROM profile WHERE x IN [2, 4]")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(row.get(2), Value::I64(8));
        }
        // And a third layer: aggregate the aggregate.
        e.execute("CREATE VIEW summary AS SELECT COUNT(*) FROM profile")
            .unwrap();
        let r = e.execute("SELECT * FROM summary").unwrap();
        assert_eq!(r.rows[0].get(0), Value::I64(8));
    }

    #[test]
    fn projection_view_layers_and_filters() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        e.execute("CREATE VIEW slim AS SELECT x, wp FROM v1")
            .unwrap();
        let r = e.execute("SELECT * FROM slim WHERE wp >= 0.5").unwrap();
        assert_eq!(r.columns, vec!["x", "wp"]);
        assert!(r.rows.iter().all(|row| row.get(1).as_f64() >= 0.5));
        assert!(!r.rows.is_empty() && r.rows.len() < 64);
    }

    #[test]
    fn join_over_view_is_rejected_with_guidance() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let err = e
            .execute("CREATE VIEW bad AS SELECT * FROM v1 JOIN t2 ON (x)")
            .unwrap_err();
        assert!(err.to_string().contains("base tables"), "{err}");
        let err = e.execute("SELECT * FROM v1 JOIN t2 ON (x)").unwrap_err();
        assert!(err.to_string().contains("base tables"), "{err}");
    }

    #[test]
    fn caching_service_warms_across_queries() {
        let e = engine().force_algorithm(Some(JoinAlgorithm::IndexedJoin));
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let a = e.execute("SELECT COUNT(*) FROM v1").unwrap();
        let cold = e.cache_stats();
        assert!(cold.misses > 0, "cold run must miss");
        let b = e.execute("SELECT COUNT(*) FROM v1").unwrap();
        let warm = e.cache_stats();
        assert_eq!(a.rows, b.rows);
        assert_eq!(warm.misses, cold.misses, "warm run must not miss again");
        assert!(
            warm.hits > cold.hits,
            "warm run must hit the Caching Service"
        );
        assert_eq!(warm.lookups(), warm.hits + warm.misses);
        // Constrained queries bypass the shared cache and stay correct.
        let c = e
            .execute("SELECT COUNT(*) FROM v1 WHERE x IN [0, 3]")
            .unwrap();
        assert_eq!(c.rows[0].get(0), Value::I64(32));
        let d = e.execute("SELECT COUNT(*) FROM v1").unwrap();
        assert_eq!(d.rows[0].get(0), Value::I64(64));
    }

    #[test]
    fn warm_hits_perform_zero_chunk_reads() {
        // The warm path must be pure refcount bumps: cached entries pin
        // their `Arc<SubTable>`s, so repeating a query may not touch the
        // chunk stores at all — not "few reads", zero.
        let e = engine().force_algorithm(Some(JoinAlgorithm::IndexedJoin));
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let a = e.execute("SELECT * FROM v1").unwrap();
        let cold_reads = e.deployment().chunk_reads();
        assert!(cold_reads > 0, "cold run must read chunks");
        let b = e.execute("SELECT * FROM v1").unwrap();
        let warm_reads = e.deployment().chunk_reads();
        assert_eq!(a.rows.len(), b.rows.len());
        assert_eq!(
            warm_reads, cold_reads,
            "second identical query must perform zero chunk reads"
        );
    }

    #[test]
    fn observed_engine_emits_choice_events_and_spans() {
        let obs = orv_obs::Obs::enabled();
        let e = engine().with_obs(obs.clone());
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let r = e.execute("SELECT * FROM v1").unwrap();
        assert_eq!(r.rows.len(), 64);
        let choices = obs.events.events_of_kind(names::QES_CHOICE);
        assert_eq!(choices.len(), 1);
        let ev = &choices[0];
        let algo = ev.fields["algorithm"].as_str().unwrap();
        assert_eq!(algo, algorithm_slug(r.explain.unwrap().algorithm));
        assert!(ev.fields["ij_total_secs"].as_f64().unwrap() > 0.0);
        assert!(ev.fields["gh_total_secs"].as_f64().unwrap() > 0.0);
        let totals = obs.spans.total_secs_by_leaf();
        assert!(totals.contains_key("plan"), "{totals:?}");
        assert!(totals.contains_key("exec"), "{totals:?}");
        // MetaData Service usage flows into the registry after the join.
        let snap = obs.metrics.snapshot();
        assert!(snap.counters.get("md/catalog_lookups").copied() > Some(0));
    }

    #[test]
    fn projection_from_view() {
        let e = engine();
        e.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let r = e.execute("SELECT wp, oilp FROM v1 WHERE x = 0").unwrap();
        assert_eq!(r.columns, vec!["wp", "oilp"]);
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.rows[0].arity(), 2);
    }

    #[test]
    fn terminal_qes_failure_fails_over_to_alternate_algorithm() {
        use orv_cluster::{silence_injected_panics, FaultPlan, WorkerPanicSpec};
        silence_injected_panics();

        // Oracle: a clean engine, and the algorithm its planner picks.
        let clean = engine();
        let oracle = clean
            .execute("SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        let chosen = oracle.explain.as_ref().unwrap().algorithm;

        // Chaos engine: every compute worker dies mid-query on the first
        // execution (panic specs are one-shot, so the failover run is
        // clean). The planner is NOT forced — failover must kick in.
        let plan = FaultPlan {
            seed: 9,
            worker_panics: (0..2)
                .map(|w| WorkerPanicSpec {
                    worker: w,
                    after_ops: 0,
                })
                .collect(),
            max_faults: 64,
            ..Default::default()
        };
        let obs = orv_obs::Obs::enabled();
        let chaotic = engine()
            .with_obs(obs.clone())
            .with_faults(FaultInjector::new(plan));
        let r = chaotic
            .execute("SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap();
        assert_eq!(r.rows, oracle.rows, "failover must be oracle-identical");

        let failovers = obs.events.events_of_kind(names::QES_FAILOVER);
        assert_eq!(failovers.len(), 1, "exactly one failover");
        let ev = &failovers[0];
        assert_eq!(
            ev.fields["from"].as_str().unwrap(),
            algorithm_slug(chosen),
            "failed away from the planner's choice"
        );
        let fallback = match chosen {
            JoinAlgorithm::IndexedJoin => JoinAlgorithm::GraceHash,
            JoinAlgorithm::GraceHash => JoinAlgorithm::IndexedJoin,
        };
        assert_eq!(ev.fields["to"].as_str().unwrap(), algorithm_slug(fallback));
        assert!(
            !ev.fields["error"].as_str().unwrap().is_empty(),
            "failover event carries the triggering error"
        );
    }

    #[test]
    fn forced_algorithm_disables_failover() {
        use orv_cluster::{silence_injected_panics, FaultPlan, WorkerPanicSpec};
        silence_injected_panics();
        let plan = FaultPlan {
            seed: 9,
            worker_panics: (0..2)
                .map(|w| WorkerPanicSpec {
                    worker: w,
                    after_ops: 0,
                })
                .collect(),
            max_faults: 64,
            ..Default::default()
        };
        let e = engine()
            .force_algorithm(Some(JoinAlgorithm::IndexedJoin))
            .with_faults(FaultInjector::new(plan));
        let err = e
            .execute("SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap_err();
        assert!(matches!(err, Error::Cluster(_)), "{err}");
    }

    #[test]
    fn cancelled_statement_returns_cancelled() {
        let e = engine();
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = e
            .execute_cancellable("SELECT * FROM t1 JOIN t2 ON (x, y, z)", &cancel)
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
    }

    #[test]
    fn expired_query_deadline_returns_deadline_exceeded() {
        let e = engine().with_query_deadline(Duration::ZERO);
        let err = e
            .execute("SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded), "{err}");
        // A generous deadline leaves execution untouched.
        let e = engine().with_query_deadline(Duration::from_secs(300));
        let r = e.execute("SELECT COUNT(*) FROM t1").unwrap();
        assert_eq!(r.rows.len(), 1);
    }
}
