//! Tokenizer for the query language.

use orv_types::{Error, Result};
use std::fmt;

/// A token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive at the parser).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `(` / `)`
    LParen,
    /// `)`
    RParen,
    /// `[` / `]`
    LBracket,
    /// `]`
    RBracket,
    /// Comparison operators.
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=`
    Eq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Number(n) => write!(f, "`{n}`"),
            Token::Star => write!(f, "`*`"),
            Token::Comma => write!(f, "`,`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Le => write!(f, "`<=`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Lt => write!(f, "`<`"),
            Token::Gt => write!(f, "`>`"),
            Token::Eq => write!(f, "`=`"),
        }
    }
}

/// Tokenize a statement.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '[' => {
                chars.next();
                out.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Token::RBracket);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Le);
                } else {
                    out.push(Token::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Ge);
                } else {
                    out.push(Token::Gt);
                }
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    let exp_sign =
                        (d == '-' || d == '+') && matches!(s.chars().last(), Some('e') | Some('E'));
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || exp_sign {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = s
                    .parse()
                    .map_err(|_| Error::Parse(format!("bad numeric literal `{s}`")))?;
                out.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character `{other}` in query"
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let toks = tokenize("SELECT * FROM v1 WHERE x IN [0, 256]").unwrap();
        assert_eq!(toks.len(), 12);
        assert_eq!(toks[1], Token::Star);
        assert_eq!(toks[7], Token::LBracket);
        assert_eq!(toks[8], Token::Number(0.0));
    }

    #[test]
    fn numbers_with_signs_and_exponents() {
        let toks = tokenize("-1.5 2e3 .25 1e-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(-1.5),
                Token::Number(2000.0),
                Token::Number(0.25),
                Token::Number(0.01),
            ]
        );
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("x <= 5 AND y >= 2 AND z < 1 AND w > 0 AND v = 3").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("SELECT @").is_err());
    }
}
