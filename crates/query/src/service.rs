//! The Query Processing Service's front door: concurrent query serving.
//!
//! The paper's QPS mediates queries from *many* clients over shared
//! BDS/DDS sub-tables; [`QueryService`] is that layer. It wraps one
//! [`QueryEngine`] (whose entry points all take `&self`) with:
//!
//! - a **bounded worker pool** — `workers` OS threads draining a
//!   two-class queue, so concurrency is capped no matter how many
//!   clients submit;
//! - **cost-aware admission control** — at most `queue_cap` queries may
//!   wait; submissions past the cap are rejected immediately with a
//!   typed [`Error::Overloaded`] (carrying a `retry_after_ms` hint),
//!   never silently dropped or unboundedly queued. Each submission is
//!   classified against the §5 cost models
//!   ([`QueryEngine::predict_cost_secs`]): predicted-cheap queries take
//!   a **fast lane** past the FIFO, and under pressure the
//!   [`BrownoutController`] sheds predicted-expensive work first;
//! - **per-query cancellation + deadline** — every admitted query gets a
//!   [`CancelToken`] (deadline-bearing when `default_deadline` is set).
//!   Cancelling a *queued* query removes it from the queue and resolves
//!   its ticket with [`Error::Cancelled`] immediately; cancelling a
//!   *running* query unwinds it within one sleep slice. A query whose
//!   deadline budget expires *while queued* is shed at claim without
//!   touching the engine: its trace records only `queue_wait` and the
//!   outcome [`TraceOutcome::Shed`].
//!
//! Every admission decision and completion is counted, both in cheap
//! atomics ([`QueryService::counters`]) and in the engine's metrics
//! registry under the [`orv_obs::names`] `service/*` and `overload/*`
//! names. The balance invariants the concurrency harness asserts:
//!
//! ```text
//! submitted == admitted + rejected
//! admitted  == completed + cancelled + shed (once all tickets resolve)
//! ```

use crate::engine::{QueryEngine, QueryResult, ScanSpec};
use crate::overload::{BrownoutController, BrownoutTransition, CostClass, OverloadConfig};
use orv_cluster::{CancelToken, WaitBudget, SLEEP_SLICE};
use orv_obs::{names, FlightRecorder, JsonValue, QueryTrace, Stopwatch, TraceId, TraceOutcome};
use orv_types::{Error, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// The parking_lot shim has no Condvar; the queue and tickets block on
// std primitives directly.
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

fn relock<T>(r: std::result::Result<T, PoisonError<T>>) -> T {
    // Worker bodies never panic while holding these locks (the engine
    // call runs unlocked), so recover the guard rather than poisoning
    // every later client.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Admission and pool sizing for a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. `0` is allowed (nothing runs
    /// until cancelled — deterministic admission tests use this).
    pub workers: usize,
    /// Maximum queries waiting in the queue; past it, submissions are
    /// rejected with [`Error::Overloaded`].
    pub queue_cap: usize,
    /// Wall-clock budget stamped on every query submitted without a
    /// caller-owned token.
    pub default_deadline: Option<Duration>,
    /// Cost classification thresholds and the brownout state machine.
    pub overload: OverloadConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 64,
            default_deadline: None,
            overload: OverloadConfig::default(),
        }
    }
}

/// Monotone admission/completion counters (see the module docs for the
/// balance invariants).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Queries handed to [`QueryService::submit`].
    pub submitted: u64,
    /// Queries accepted into the queue.
    pub admitted: u64,
    /// Queries rejected at the admission cap.
    pub rejected: u64,
    /// Admitted queries that ran to a non-cancellation result (ok or
    /// typed error).
    pub completed: u64,
    /// Admitted queries resolved by cancellation or deadline while
    /// running (or explicitly cancelled while queued).
    pub cancelled: u64,
    /// Admitted queries shed before touching a worker: the deadline
    /// budget expired in the queue.
    pub shed: u64,
}

impl ServiceCounters {
    /// `submitted == admitted + rejected` — true at every instant.
    pub fn admission_balances(&self) -> bool {
        self.submitted == self.admitted + self.rejected
    }

    /// `admitted == completed + cancelled + shed` — true once every
    /// admitted ticket has resolved.
    pub fn completion_balances(&self) -> bool {
        self.admitted == self.completed + self.cancelled + self.shed
    }
}

/// How many cleanly-completed slow queries each service's flight
/// recorder retains.
const RECORDER_KEEP_SLOWEST: usize = 8;
/// Ring size for anomalous (failed/partial/cancelled/rejected) traces.
const RECORDER_ANOMALY_CAP: usize = 64;

/// One queued query's rendezvous cell: the worker (or the queue-side
/// cancel path) publishes exactly one result; the ticket waits on it.
struct Slot {
    result: Mutex<Option<Result<QueryResult>>>,
    /// Set (under the `result` lock) when the slot is resolved; stays
    /// set after a waiter takes the result, so a late second resolver
    /// can never re-complete an already-consumed slot.
    resolved: AtomicBool,
    done: Condvar,
    /// The completed [`QueryTrace`], written by the winning resolver —
    /// the federation router collects these to stitch its span tree.
    trace: Mutex<Option<QueryTrace>>,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            result: Mutex::new(None),
            resolved: AtomicBool::new(false),
            done: Condvar::new(),
            trace: Mutex::new(None),
        })
    }
}

/// Per-query trace state carried from submit to resolve.
struct TraceCtx {
    id: TraceId,
    parent: Option<TraceId>,
    detail: String,
    /// Started at submit entry; its elapsed time at resolve is the
    /// query's end-to-end latency.
    born: Stopwatch,
    /// Re-armed when the job is queued; measures queue wait at claim.
    queued: Stopwatch,
    /// Time spent inside admission control (submit → queued).
    admission_secs: f64,
}

/// What one queued job executes: a SQL statement (the client path) or a
/// pre-planned chunk scan (the federation router's sub-query path).
enum Task {
    Sql(String),
    Scan(ScanSpec),
}

struct Job {
    task: Task,
    cancel: CancelToken,
    slot: Arc<Slot>,
    trace: TraceCtx,
}

/// The two-class admission queue: predicted-cheap queries wait in the
/// fast lane, which workers always drain first.
#[derive(Default)]
struct Queues {
    fast: VecDeque<Job>,
    normal: VecDeque<Job>,
}

impl Queues {
    fn len(&self) -> usize {
        self.fast.len() + self.normal.len()
    }

    fn pop(&mut self) -> Option<Job> {
        self.fast.pop_front().or_else(|| self.normal.pop_front())
    }

    fn remove_slot(&mut self, slot: &Arc<Slot>) -> Option<Job> {
        if let Some(i) = self.fast.iter().position(|j| Arc::ptr_eq(&j.slot, slot)) {
            return self.fast.remove(i);
        }
        let i = self
            .normal
            .iter()
            .position(|j| Arc::ptr_eq(&j.slot, slot))?;
        self.normal.remove(i)
    }

    fn drain_all(&mut self) -> Vec<Job> {
        self.fast.drain(..).chain(self.normal.drain(..)).collect()
    }
}

struct Inner {
    engine: QueryEngine,
    cfg: ServiceConfig,
    queue: Mutex<Queues>,
    work: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    controller: BrownoutController,
    /// Span-group label of this service's traces: `service` standalone,
    /// `fed{N}` when the engine is federation shard N.
    group: String,
    recorder: FlightRecorder,
}

impl Inner {
    fn count(&self, which: &AtomicU64, name: &str) {
        which.fetch_add(1, Ordering::Relaxed);
        self.engine.obs().metrics.counter(name).add(1);
    }

    /// Resolve a finished (or cancelled) job: count it, publish the
    /// result into the slot, and finish the query's trace. First resolver
    /// wins (e.g. a worker finishing a query whose ticket was already
    /// resolved by queue-side cancellation loses), so each admitted query
    /// is counted exactly once — and the count lands *before* the waiter
    /// can observe the result, keeping `admitted == completed + cancelled`
    /// exact at the moment any ticket resolves.
    fn resolve(
        &self,
        slot: &Slot,
        ctx: &TraceCtx,
        phases: Vec<(String, f64)>,
        result: Result<QueryResult>,
    ) {
        let is_cancel = result.as_ref().err().is_some_and(Error::is_cancellation);
        let outcome = match &result {
            Ok(_) => TraceOutcome::Ok,
            Err(_) if is_cancel => TraceOutcome::Cancelled,
            Err(_) => TraceOutcome::Error,
        };
        self.resolve_as(slot, ctx, phases, result, outcome);
    }

    /// [`Inner::resolve`] with the outcome chosen by the caller — the
    /// shed path uses this to distinguish a queue-expired query
    /// ([`TraceOutcome::Shed`]) from one cancelled mid-execution, even
    /// though both surface [`Error`] cancellation variants.
    fn resolve_as(
        &self,
        slot: &Slot,
        ctx: &TraceCtx,
        phases: Vec<(String, f64)>,
        result: Result<QueryResult>,
        outcome: TraceOutcome,
    ) {
        let mut cell = relock(slot.result.lock());
        if slot.resolved.swap(true, Ordering::AcqRel) {
            return;
        }
        match outcome {
            TraceOutcome::Shed => self.count(&self.shed, names::SERVICE_SHED),
            TraceOutcome::Cancelled => self.count(&self.cancelled, names::SERVICE_CANCELLED),
            _ => self.count(&self.completed, names::SERVICE_COMPLETED),
        }
        *relock(slot.trace.lock()) = Some(self.finish_trace(ctx, outcome, phases));
        *cell = Some(result);
        slot.done.notify_all();
    }

    /// Publish one brownout edge: counter, state gauge, and a
    /// replayable `brownout_transition` event.
    fn note_transition(&self, t: BrownoutTransition) {
        let obs = self.engine.obs();
        obs.metrics.counter(names::OVERLOAD_TRANSITIONS).add(1);
        obs.metrics
            .gauge(names::OVERLOAD_STATE)
            .set(t.to.severity());
        obs.events.emit(names::BROWNOUT_TRANSITION, || {
            vec![
                ("group", self.group.as_str().into()),
                ("tick", t.tick.into()),
                ("from", t.from.as_str().into()),
                ("to", t.to.as_str().into()),
                ("depth", t.depth.into()),
            ]
        });
    }

    /// Seal one query's trace: record its end-to-end latency (root
    /// queries only — sub-queries are part of their parent's total), emit
    /// `trace_end`, and offer the trace to the flight recorder.
    fn finish_trace(
        &self,
        ctx: &TraceCtx,
        outcome: TraceOutcome,
        mut phases: Vec<(String, f64)>,
    ) -> QueryTrace {
        let total_secs = ctx.born.elapsed_secs();
        phases.insert(
            0,
            (
                names::lat_phase(names::LAT_ADMISSION).into(),
                ctx.admission_secs,
            ),
        );
        // Rejected queries never ran; their ~zero "latency" would only
        // dilute the end-to-end distribution.
        if ctx.parent.is_none() && outcome != TraceOutcome::Rejected {
            self.engine
                .obs()
                .metrics
                .record_latency(names::LAT_TOTAL, total_secs);
        }
        let trace = QueryTrace {
            trace: ctx.id,
            parent: ctx.parent,
            group: self.group.clone(),
            detail: ctx.detail.clone(),
            outcome,
            total_secs,
            phases,
            children: Vec::new(),
        };
        self.engine.obs().events.emit(names::TRACE_END, || {
            vec![
                ("trace", ctx.id.into()),
                ("group", self.group.as_str().into()),
                ("outcome", outcome.as_str().into()),
                ("total_secs", total_secs.into()),
            ]
        });
        self.recorder.record(trace.clone());
        trace
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = relock(self.queue.lock());
                loop {
                    if let Some(job) = queue.pop() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = relock(self.work.wait(queue));
                }
            };
            let metrics = &self.engine.obs().metrics;
            let queue_wait = job.trace.queued.elapsed_secs();
            metrics.record_latency(names::LAT_QUEUE_WAIT, queue_wait);
            // The same measurements that feed lat/queue_wait_secs drive
            // the brownout controller's latency alarm.
            self.controller.note_queue_wait(queue_wait);
            // A queued query may already be past its deadline budget (or
            // explicitly cancelled) by the time a worker reaches it —
            // shed it here, before it touches the engine. Its trace
            // records only the queue wait: no exec phase ever happened.
            if let Err(e) = job.cancel.check() {
                let outcome = if matches!(e, Error::DeadlineExceeded) {
                    metrics.counter(names::OVERLOAD_SHED_EXPIRED).add(1);
                    TraceOutcome::Shed
                } else {
                    TraceOutcome::Cancelled
                };
                let phases = vec![(names::lat_phase(names::LAT_QUEUE_WAIT).into(), queue_wait)];
                self.resolve_as(&job.slot, &job.trace, phases, Err(e), outcome);
                continue;
            }
            // The shard checkpoint gates every job this engine serves:
            // an injected shard death/slowdown hits here.
            let exec = Stopwatch::start();
            let result = match self.engine.shard_checkpoint(&job.cancel) {
                Ok(()) => match &job.task {
                    Task::Sql(sql) => {
                        self.engine
                            .execute_traced(sql, &job.cancel, Some(job.trace.id))
                    }
                    Task::Scan(spec) => self.engine.execute_scan_spec(spec, &job.cancel),
                },
                Err(e) => Err(e),
            };
            let exec_secs = exec.elapsed_secs();
            metrics.record_latency(names::LAT_EXEC, exec_secs);
            let phases = vec![
                (names::lat_phase(names::LAT_QUEUE_WAIT).into(), queue_wait),
                (names::lat_phase(names::LAT_EXEC).into(), exec_secs),
            ];
            self.resolve(&job.slot, &job.trace, phases, result);
        }
    }
}

/// Handle to one submitted query.
pub struct QueryTicket {
    slot: Arc<Slot>,
    cancel: CancelToken,
    inner: Arc<Inner>,
    trace_id: TraceId,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = relock(self.slot.result.lock()).is_some();
        f.debug_struct("QueryTicket")
            .field("trace", &self.trace_id)
            .field("resolved", &resolved)
            .finish()
    }
}

impl QueryTicket {
    /// This query's cancel token (shareable; cancelling it cancels the
    /// query).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The propagated trace ID this query carries.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// The completed trace, once the query resolved (phase attribution,
    /// outcome, latency). `None` while still in flight.
    pub fn trace(&self) -> Option<QueryTrace> {
        relock(self.slot.trace.lock()).clone()
    }

    /// Cancel the query. If it is still queued it resolves with
    /// [`Error::Cancelled`] immediately (no worker involved); if it is
    /// running, the token unwinds it within one sleep slice.
    pub fn cancel(&self) {
        self.cancel.cancel();
        // Pull the job out of the queue if a worker hasn't claimed it.
        let removed = {
            let mut queue = relock(self.inner.queue.lock());
            queue.remove_slot(&self.slot)
        };
        if let Some(job) = removed {
            // Cancelled while queued: the only phase that happened is
            // the queue wait — no exec row is minted.
            let queue_wait = job.trace.queued.elapsed_secs();
            let phases = vec![(names::lat_phase(names::LAT_QUEUE_WAIT).into(), queue_wait)];
            self.inner.resolve_as(
                &self.slot,
                &job.trace,
                phases,
                Err(Error::Cancelled),
                TraceOutcome::Cancelled,
            );
        }
    }

    /// Block until the query resolves.
    pub fn wait(self) -> Result<QueryResult> {
        let mut cell = relock(self.slot.result.lock());
        // orv-lint: allow(L009) -- every submitted slot is resolved exactly once: a worker resolves it (success, error, shed, or cancel), `cancel()` resolves still-queued slots inline, and service Drop drains the queue resolving leftovers as Cancelled — so this condvar wait always terminates; callers wanting a bound use `wait_timeout`
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = relock(self.slot.done.wait(cell));
        }
    }

    /// Block up to `timeout`; `None` if the query is still in flight
    /// (the ticket remains usable). The wall-clock bound (via
    /// [`WaitBudget`]) only caps how long the *caller* blocks; it never
    /// steers query execution, so seeded replays are unaffected.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryResult>> {
        let budget = WaitBudget::start(timeout);
        let mut cell = relock(self.slot.result.lock());
        loop {
            if let Some(result) = cell.take() {
                return Some(result);
            }
            let left = budget.remaining();
            if left.is_zero() {
                return None;
            }
            let (guard, _) = relock(self.slot.done.wait_timeout(cell, left));
            cell = guard;
        }
    }

    /// Block until the query resolves *or* `cancel` fires, polling in
    /// [`SLEEP_SLICE`] slices. This is the one canonical
    /// `submit → wait slice → cancel-check` client loop; every caller
    /// that used to open-code it (stress harnesses, the federation
    /// router) goes through here.
    pub fn wait_cancellable(&self, cancel: &CancelToken) -> Result<QueryResult> {
        loop {
            cancel.check()?;
            if let Some(result) = self.wait_timeout(SLEEP_SLICE) {
                return result;
            }
        }
    }
}

/// A concurrent query front-end over one shared [`QueryEngine`].
///
/// ```no_run
/// use orv_query::{QueryEngine, service::{QueryService, ServiceConfig}};
/// # fn demo(engine: QueryEngine) -> orv_types::Result<()> {
/// let service = QueryService::new(engine, ServiceConfig::default())?;
/// let ticket = service.submit("SELECT COUNT(*) FROM v1")?;
/// let result = ticket.wait()?;
/// # Ok(()) }
/// ```
pub struct QueryService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl QueryService {
    /// Spawn the worker pool over `engine`.
    pub fn new(engine: QueryEngine, cfg: ServiceConfig) -> Result<Self> {
        if cfg.queue_cap == 0 {
            return Err(Error::Config(
                "query service needs queue_cap >= 1 (everything would be rejected)".into(),
            ));
        }
        cfg.overload.validate().map_err(Error::Config)?;
        let group = match engine.shard_index() {
            Some(s) => format!("fed{s}"),
            None => "service".to_string(),
        };
        engine.obs().metrics.gauge(names::OVERLOAD_STATE).set(0);
        let inner = Arc::new(Inner {
            controller: BrownoutController::new(cfg.overload.clone(), cfg.queue_cap),
            engine,
            cfg: cfg.clone(),
            queue: Mutex::new(Queues::default()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            group,
            recorder: FlightRecorder::new(RECORDER_KEEP_SLOWEST, RECORDER_ANOMALY_CAP),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        Ok(QueryService { inner, workers })
    }

    /// The wrapped engine (catalog inspection, cache stats, obs handle).
    pub fn engine(&self) -> &QueryEngine {
        &self.inner.engine
    }

    /// This service's flight recorder: the K slowest completed queries
    /// plus every anomalous one, with full phase attribution.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Admission/completion counter snapshot.
    pub fn counters(&self) -> ServiceCounters {
        ServiceCounters {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
        }
    }

    /// This service's brownout controller: state, transition log, and
    /// the hedging gate the federation router consults.
    pub fn brownout(&self) -> &BrownoutController {
        &self.inner.controller
    }

    /// Submit one statement, stamping the configured default deadline.
    pub fn submit(&self, sql: &str) -> Result<QueryTicket> {
        let cancel = match self.inner.cfg.default_deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        self.submit_with_token(sql, cancel)
    }

    /// Submit with a caller-owned token (compose cancellation across
    /// several queries, or attach a custom deadline).
    pub fn submit_with_token(&self, sql: &str, cancel: CancelToken) -> Result<QueryTicket> {
        self.submit_task(Task::Sql(sql.to_string()), cancel, None)
    }

    /// [`QueryService::submit_with_token`] as a sub-query of `parent`:
    /// the minted trace ID records the parent, and the query's latency
    /// stays out of `lat/total_secs` (its root already accounts for it).
    pub fn submit_traced(
        &self,
        sql: &str,
        cancel: CancelToken,
        parent: TraceId,
    ) -> Result<QueryTicket> {
        self.submit_task(Task::Sql(sql.to_string()), cancel, Some(parent))
    }

    /// Submit a pre-planned chunk scan (the federation router's sub-query
    /// path): same queue, admission control and cancellation as SQL.
    pub fn submit_scan(&self, spec: ScanSpec, cancel: CancelToken) -> Result<QueryTicket> {
        self.submit_task(Task::Scan(spec), cancel, None)
    }

    /// [`QueryService::submit_scan`] as a sub-query of `parent`.
    pub fn submit_scan_traced(
        &self,
        spec: ScanSpec,
        cancel: CancelToken,
        parent: TraceId,
    ) -> Result<QueryTicket> {
        self.submit_task(Task::Scan(spec), cancel, Some(parent))
    }

    fn submit_task(
        &self,
        task: Task,
        cancel: CancelToken,
        parent: Option<TraceId>,
    ) -> Result<QueryTicket> {
        let inner = &self.inner;
        let born = Stopwatch::start();
        let id = TraceId::mint();
        let detail = match &task {
            Task::Sql(sql) => sql.clone(),
            Task::Scan(spec) => {
                format!("scan table {} ({} chunks)", spec.table.0, spec.chunks.len())
            }
        };
        inner.engine.obs().events.emit(names::TRACE_BEGIN, || {
            vec![
                ("trace", id.into()),
                (
                    "parent",
                    match parent {
                        Some(p) => p.into(),
                        None => JsonValue::Null,
                    },
                ),
                ("group", inner.group.as_str().into()),
                ("detail", detail.as_str().into()),
            ]
        });
        inner.count(&inner.submitted, names::SERVICE_SUBMITTED);
        // Classify against the §5 cost models before taking the queue
        // lock — prediction is metadata-only but not free.
        let predicted_secs = match &task {
            Task::Sql(sql) => inner.engine.predict_cost_secs(sql),
            Task::Scan(spec) => inner.engine.predict_scan_spec_secs(spec),
        };
        let class = inner.cfg.overload.classify(predicted_secs);
        let slot = Slot::new();
        let transition = {
            let mut queue = relock(inner.queue.lock());
            let depth = queue.len();
            // One logical tick per admission decision: the controller
            // observes depth under the queue lock, so a seeded replay
            // of the same submission sequence sees the same ticks.
            let (_, transition) = inner.controller.observe(depth);
            let full = depth >= inner.cfg.queue_cap;
            let shed_by_policy = !full && !inner.controller.allows(class, depth);
            if full || shed_by_policy {
                drop(queue);
                if let Some(t) = transition {
                    inner.note_transition(t);
                }
                inner.count(&inner.rejected, names::SERVICE_REJECTED);
                if shed_by_policy && class == CostClass::Expensive {
                    inner
                        .engine
                        .obs()
                        .metrics
                        .counter(names::OVERLOAD_SHED_EXPENSIVE)
                        .add(1);
                }
                let admission_secs = born.elapsed_secs();
                inner
                    .engine
                    .obs()
                    .metrics
                    .record_latency(names::LAT_ADMISSION, admission_secs);
                let ctx = TraceCtx {
                    id,
                    parent,
                    detail,
                    born,
                    queued: born,
                    admission_secs,
                };
                inner.finish_trace(&ctx, TraceOutcome::Rejected, Vec::new());
                return Err(Error::Overloaded {
                    queued: depth,
                    cap: inner.cfg.queue_cap,
                    retry_after_ms: inner.controller.retry_after_ms(),
                });
            }
            let admission_secs = born.elapsed_secs();
            inner
                .engine
                .obs()
                .metrics
                .record_latency(names::LAT_ADMISSION, admission_secs);
            let job = Job {
                task,
                cancel: cancel.clone(),
                slot: Arc::clone(&slot),
                trace: TraceCtx {
                    id,
                    parent,
                    detail,
                    born,
                    queued: Stopwatch::start(),
                    admission_secs,
                },
            };
            match class {
                CostClass::Cheap => {
                    inner
                        .engine
                        .obs()
                        .metrics
                        .counter(names::OVERLOAD_FAST_LANE)
                        .add(1);
                    queue.fast.push_back(job);
                }
                CostClass::Expensive => queue.normal.push_back(job),
            }
            transition
        };
        if let Some(t) = transition {
            inner.note_transition(t);
        }
        inner.count(&inner.admitted, names::SERVICE_ADMITTED);
        inner.work.notify_one();
        Ok(QueryTicket {
            slot,
            cancel,
            inner: Arc::clone(inner),
            trace_id: id,
        })
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.submit(sql)?.wait()
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Drain: anything still queued resolves as cancelled so no
        // ticket-holder blocks forever on a dead service.
        let drained: Vec<Job> = {
            let mut queue = relock(self.inner.queue.lock());
            queue.drain_all()
        };
        for job in drained {
            job.cancel.cancel();
            let queue_wait = job.trace.queued.elapsed_secs();
            let phases = vec![(names::lat_phase(names::LAT_QUEUE_WAIT).into(), queue_wait)];
            self.inner.resolve_as(
                &job.slot,
                &job.trace,
                phases,
                Err(Error::Cancelled),
                TraceOutcome::Cancelled,
            );
        }
        self.inner.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_bds::{generate_dataset, DatasetSpec, Deployment};

    fn engine() -> QueryEngine {
        let d = Deployment::in_memory(1);
        for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
            generate_dataset(
                &DatasetSpec::builder(name)
                    .grid([4, 4, 1])
                    .partition([2, 2, 1])
                    .scalar_attrs(&[scalar])
                    .seed(seed)
                    .build(),
                &d,
            )
            .unwrap();
        }
        QueryEngine::new(d)
    }

    #[test]
    fn execute_matches_direct_engine() {
        let oracle = engine().execute("SELECT COUNT(*) FROM t1").unwrap();
        let svc = QueryService::new(engine(), ServiceConfig::default()).unwrap();
        let got = svc.execute("SELECT COUNT(*) FROM t1").unwrap();
        assert_eq!(got.rows, oracle.rows);
        let c = svc.counters();
        assert_eq!((c.submitted, c.admitted, c.completed), (1, 1, 1));
        assert!(c.admission_balances() && c.completion_balances());
    }

    #[test]
    fn queue_cap_rejects_with_overloaded() {
        // No workers: the queue fills deterministically.
        let svc = QueryService::new(
            engine(),
            ServiceConfig {
                workers: 0,
                queue_cap: 2,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let t1 = svc.submit("SELECT * FROM t1").unwrap();
        let t2 = svc.submit("SELECT * FROM t1").unwrap();
        let err = svc.submit("SELECT * FROM t1").unwrap_err();
        assert!(
            matches!(
                err,
                Error::Overloaded {
                    queued: 2,
                    cap: 2,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("cap 2"), "{err}");
        assert!(
            err.retry_after_ms().unwrap() > 0,
            "rejection carries a hint"
        );
        let c = svc.counters();
        assert_eq!((c.submitted, c.admitted, c.rejected), (3, 2, 1));
        assert!(c.admission_balances());
        // Cancelling a queued ticket resolves it without any worker.
        t1.cancel();
        assert!(matches!(t1.wait(), Err(Error::Cancelled)));
        t2.cancel();
        assert!(matches!(t2.wait(), Err(Error::Cancelled)));
        let c = svc.counters();
        assert_eq!(c.cancelled, 2);
        assert!(c.completion_balances());
    }

    #[test]
    fn rejected_submission_frees_no_queue_slot() {
        let svc = QueryService::new(
            engine(),
            ServiceConfig {
                workers: 0,
                queue_cap: 1,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let t = svc.submit("SELECT * FROM t1").unwrap();
        for _ in 0..3 {
            assert!(matches!(
                svc.submit("SELECT * FROM t1"),
                Err(Error::Overloaded { .. })
            ));
        }
        // Cancelling the queued query frees its slot for a new admit.
        t.cancel();
        assert!(svc.submit("SELECT * FROM t1").is_ok());
    }

    #[test]
    fn zero_queue_cap_is_a_config_error() {
        let err = QueryService::new(
            engine(),
            ServiceConfig {
                workers: 1,
                queue_cap: 0,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .err()
        .unwrap();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn expired_default_deadline_resolves_as_deadline_exceeded() {
        let svc = QueryService::new(
            engine(),
            ServiceConfig {
                workers: 1,
                queue_cap: 4,
                default_deadline: Some(Duration::ZERO),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let err = svc.execute("SELECT * FROM t1").unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded), "{err}");
        // The budget expired while queued, so the query is *shed* — it
        // never touched the engine — rather than counted cancelled.
        let c = svc.counters();
        assert_eq!((c.shed, c.cancelled, c.completed), (1, 0, 0));
        assert!(c.completion_balances());
    }

    #[test]
    fn queue_expired_query_records_queue_wait_only_as_shed() {
        let svc = QueryService::new(
            engine().with_obs(orv_obs::Obs::enabled()),
            ServiceConfig {
                workers: 1,
                queue_cap: 4,
                default_deadline: Some(Duration::ZERO),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let ticket = svc.submit("SELECT * FROM t1").unwrap();
        assert!(matches!(
            ticket.wait_timeout(Duration::from_secs(30)),
            Some(Err(_))
        ));
        let trace = ticket.trace().expect("resolved ticket has a trace");
        assert_eq!(trace.outcome, TraceOutcome::Shed);
        let phase_names: Vec<&str> = trace.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            phase_names,
            vec!["admission", "queue_wait"],
            "no exec phase row may be minted for a shed query"
        );
        let snap = svc.engine().obs().metrics.snapshot();
        assert_eq!(
            snap.counters.get(names::OVERLOAD_SHED_EXPIRED).copied(),
            Some(1)
        );
        assert_eq!(snap.counters.get(names::SERVICE_SHED).copied(), Some(1));
    }

    #[test]
    fn queue_cancelled_query_records_queue_wait_only() {
        let svc = QueryService::new(
            engine(),
            ServiceConfig {
                workers: 0,
                queue_cap: 4,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let ticket = svc.submit("SELECT * FROM t1").unwrap();
        ticket.cancel();
        let trace = ticket
            .trace()
            .expect("queue-side cancel resolves the trace");
        assert_eq!(trace.outcome, TraceOutcome::Cancelled);
        let phase_names: Vec<&str> = trace.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(phase_names, vec!["admission", "queue_wait"]);
        let c = svc.counters();
        assert_eq!((c.cancelled, c.shed), (1, 0));
        assert!(c.completion_balances());
    }

    #[test]
    fn brownout_sheds_expensive_work_first() {
        // Force every query expensive and enter brownout immediately.
        let svc = QueryService::new(
            engine().with_obs(orv_obs::Obs::enabled()),
            ServiceConfig {
                workers: 0,
                queue_cap: 8,
                default_deadline: None,
                overload: OverloadConfig {
                    // Zero threshold: every positive predicted cost
                    // classifies expensive.
                    fast_lane_max_secs: 0.0,
                    brownout_enter: 0.25,
                    recover: 0.1,
                    cooldown_ticks: 1,
                    ..OverloadConfig::default()
                },
            },
        )
        .unwrap();
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..8 {
            match svc.submit("SELECT * FROM t1") {
                Ok(t) => admitted.push(t),
                Err(e) => {
                    assert!(matches!(e, Error::Overloaded { .. }), "{e}");
                    rejected += 1;
                }
            }
        }
        assert!(
            rejected > 0,
            "brownout must shed expensive work below the cap"
        );
        assert!(
            admitted.len() >= 2,
            "work below the brownout threshold still lands"
        );
        assert!(!svc.brownout().hedging_enabled());
        let snap = svc.engine().obs().metrics.snapshot();
        assert!(snap.counters.get(names::OVERLOAD_SHED_EXPENSIVE).copied() >= Some(1));
        let c = svc.counters();
        assert!(c.admission_balances());
        for t in admitted {
            t.cancel();
        }
    }

    #[test]
    fn cheap_queries_take_the_fast_lane_past_expensive_ones() {
        // No workers: queue deterministically, then spot-check order by
        // starting one worker via drop-free claim — instead, verify lane
        // membership through the counters and queue introspection.
        let svc = QueryService::new(
            engine().with_obs(orv_obs::Obs::enabled()),
            ServiceConfig {
                workers: 0,
                queue_cap: 8,
                default_deadline: None,
                overload: OverloadConfig {
                    // Zero threshold: the scan's positive predicted
                    // cost classifies expensive.
                    fast_lane_max_secs: 0.0,
                    ..OverloadConfig::default()
                },
            },
        )
        .unwrap();
        let t = svc.submit("SELECT * FROM t1").unwrap();
        let snap = svc.engine().obs().metrics.snapshot();
        assert_eq!(snap.counters.get(names::OVERLOAD_FAST_LANE).copied(), None);
        t.cancel();
        // With a generous threshold the same query is cheap.
        let svc = QueryService::new(
            engine().with_obs(orv_obs::Obs::enabled()),
            ServiceConfig {
                workers: 0,
                queue_cap: 8,
                default_deadline: None,
                overload: OverloadConfig {
                    fast_lane_max_secs: 1e9,
                    ..OverloadConfig::default()
                },
            },
        )
        .unwrap();
        let t = svc.submit("SELECT * FROM t1").unwrap();
        let snap = svc.engine().obs().metrics.snapshot();
        assert_eq!(
            snap.counters.get(names::OVERLOAD_FAST_LANE).copied(),
            Some(1)
        );
        t.cancel();
    }

    #[test]
    fn drop_drains_queued_tickets_as_cancelled() {
        let svc = QueryService::new(
            engine(),
            ServiceConfig {
                workers: 0,
                queue_cap: 4,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let t1 = svc.submit("SELECT * FROM t1").unwrap();
        let t2 = svc.submit("SELECT * FROM t1").unwrap();
        drop(svc);
        assert!(matches!(t1.wait(), Err(Error::Cancelled)));
        assert!(matches!(t2.wait(), Err(Error::Cancelled)));
    }

    #[test]
    fn service_counters_flow_into_obs_registry() {
        let svc = QueryService::new(
            engine().with_obs(orv_obs::Obs::enabled()),
            ServiceConfig {
                workers: 1,
                queue_cap: 4,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        svc.execute("SELECT COUNT(*) FROM t1").unwrap();
        let snap = svc.engine().obs().metrics.snapshot();
        assert_eq!(
            snap.counters.get(names::SERVICE_SUBMITTED).copied(),
            Some(1)
        );
        assert_eq!(snap.counters.get(names::SERVICE_ADMITTED).copied(), Some(1));
        assert_eq!(
            snap.counters.get(names::SERVICE_COMPLETED).copied(),
            Some(1)
        );
        assert_eq!(snap.counters.get(names::SERVICE_REJECTED).copied(), None);
    }
}
